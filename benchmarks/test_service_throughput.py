"""Allocation service benchmarks: warm-cache latency and batch dedupe.

Two service-level numbers matter for the ROADMAP's serving story:

* the request rate a warm cache sustains on ``/solve``-equivalent calls
  (the in-process ``AllocationService.solve_request`` path -- no HTTP, so
  the number isolates fingerprint + cache + decode cost), and
* the dedupe ratio of a large batch: 1000 requests over 64 distinct
  problems must cost exactly 64 solves, the rest being cache/dedupe hits.

The snapshots land in ``BENCH_<rev>.json`` via ``benchmarks/conftest.py``.
"""

from __future__ import annotations

from repro.core.problem import AllocationProblem
from repro.platform.presets import aws_f1
from repro.service import AllocationService, ResultStore, SolveRequest, solve_batch
from repro.workloads.alexnet import alexnet_fx16

#: The acceptance scenario of the service PR: 1000 requests, 64 unique.
BATCH_TOTAL = 1000
BATCH_UNIQUE = 64


def _problems(count: int) -> list[AllocationProblem]:
    base = AllocationProblem(
        pipeline=alexnet_fx16(),
        platform=aws_f1(num_fpgas=2, resource_limit_percent=70.0),
    )
    return [base.with_resource_constraint(40.0 + index * 50.0 / count) for index in range(count)]


def test_warm_cache_solve_latency(benchmark):
    """Requests/sec of a warm in-memory cache hit (the /solve hot path)."""
    service = AllocationService()
    request = SolveRequest(problem=_problems(1)[0])
    service.solve_request(request)  # populate the cache

    outcome, meta = benchmark(service.solve_request, request)
    assert meta["cache"] == "memory"
    assert outcome.succeeded
    # Acceptance: a warm memory hit answers in < 1 ms on the container.
    # (stats is None under --benchmark-disable, where nothing is timed.)
    if benchmark.stats is not None:
        assert benchmark.stats["mean"] < 1e-3


def test_batch_dedupe_1000_requests_64_unique(benchmark):
    """Cold batch of 1000 requests with 64 distinct problems: 64 solves."""
    problems = _problems(BATCH_UNIQUE)
    requests = [SolveRequest(problem=problems[index % BATCH_UNIQUE]) for index in range(BATCH_TOTAL)]

    def run():
        store = ResultStore()  # cold store each round: the benchmark measures dedupe + solves
        return solve_batch(requests, store=store)

    outcomes, report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.total == BATCH_TOTAL
    assert report.unique == BATCH_UNIQUE
    assert report.solves == BATCH_UNIQUE
    assert report.duplicates == BATCH_TOTAL - BATCH_UNIQUE
    assert len(outcomes) == BATCH_TOTAL


def test_batch_warm_replay_throughput(benchmark):
    """Warm replay of the same 1000-request batch: zero solves, pure cache."""
    problems = _problems(BATCH_UNIQUE)
    requests = [SolveRequest(problem=problems[index % BATCH_UNIQUE]) for index in range(BATCH_TOTAL)]
    store = ResultStore()
    solve_batch(requests, store=store)  # warm it

    _, report = benchmark(solve_batch, requests, store=store)
    assert report.solves == 0
    assert report.memory_hits == BATCH_UNIQUE
