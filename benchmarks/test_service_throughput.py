"""Allocation service benchmarks: warm-cache latency, batch dedupe, async queue.

Four service-level numbers matter for the ROADMAP's serving story:

* the request rate a warm cache sustains on ``/solve``-equivalent calls
  (the in-process ``AllocationService.solve_request`` path -- no HTTP, so
  the number isolates fingerprint + cache + decode cost);
* the dedupe ratio of a large batch: 1000 requests over 64 distinct
  problems must cost exactly 64 solves, the rest being cache/dedupe hits;
* the async job queue (PR 5): submitting that same 1000-request batch must
  return a job id in well under 5 ms, the drained job must still perform
  exactly 64 solves, and a warm async replay must sustain at least the
  PR 2 warm replay throughput (the queue may not tax the hot path);
* the sharded store must not slow the single-threaded batch path.

The snapshots land in ``BENCH_<rev>.json`` via ``benchmarks/conftest.py``.
"""

from __future__ import annotations

import time

from repro.core.problem import AllocationProblem
from repro.platform.presets import aws_f1
from repro.service import (
    AllocationService,
    ResultStore,
    ShardedResultStore,
    SolveRequest,
    solve_batch,
)
from repro.workloads.alexnet import alexnet_fx16

#: The acceptance scenario of the service PR: 1000 requests, 64 unique.
BATCH_TOTAL = 1000
BATCH_UNIQUE = 64

#: PR 2's recorded warm replay of this batch (``BENCH_0dc01e0.json``,
#: ``test_batch_warm_replay_throughput`` mean): 2.67 ms for 1000 requests,
#: ~375k req/s.  The async queue must sustain at least this rate; the CI
#: gate allows 2x for runner noise (the container measures ~2.0 ms ~490k
#: req/s after the decoded-outcome memo).
PR2_WARM_REPLAY_SECONDS = 0.00267

#: Acceptance bound on the async submit path: the job id must come back in
#: under 5 ms (measured ~0.05 ms -- one lock acquisition plus a queue put).
SUBMIT_LATENCY_BOUND_SECONDS = 0.005


def _problems(count: int) -> list[AllocationProblem]:
    base = AllocationProblem(
        pipeline=alexnet_fx16(),
        platform=aws_f1(num_fpgas=2, resource_limit_percent=70.0),
    )
    return [base.with_resource_constraint(40.0 + index * 50.0 / count) for index in range(count)]


def test_warm_cache_solve_latency(benchmark):
    """Requests/sec of a warm in-memory cache hit (the /solve hot path)."""
    service = AllocationService()
    request = SolveRequest(problem=_problems(1)[0])
    service.solve_request(request)  # populate the cache

    outcome, meta = benchmark(service.solve_request, request)
    assert meta["cache"] == "memory"
    assert outcome.succeeded
    # Acceptance: a warm memory hit answers in < 1 ms on the container.
    # (stats is None under --benchmark-disable, where nothing is timed.)
    if benchmark.stats is not None:
        assert benchmark.stats["mean"] < 1e-3


def test_batch_dedupe_1000_requests_64_unique(benchmark):
    """Cold batch of 1000 requests with 64 distinct problems: 64 solves."""
    problems = _problems(BATCH_UNIQUE)
    requests = [SolveRequest(problem=problems[index % BATCH_UNIQUE]) for index in range(BATCH_TOTAL)]

    def run():
        store = ResultStore()  # cold store each round: the benchmark measures dedupe + solves
        return solve_batch(requests, store=store)

    outcomes, report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.total == BATCH_TOTAL
    assert report.unique == BATCH_UNIQUE
    assert report.solves == BATCH_UNIQUE
    assert report.duplicates == BATCH_TOTAL - BATCH_UNIQUE
    assert len(outcomes) == BATCH_TOTAL


def test_batch_warm_replay_throughput(benchmark):
    """Warm replay of the same 1000-request batch: zero solves, pure cache."""
    problems = _problems(BATCH_UNIQUE)
    requests = [SolveRequest(problem=problems[index % BATCH_UNIQUE]) for index in range(BATCH_TOTAL)]
    store = ResultStore()
    solve_batch(requests, store=store)  # warm it

    _, report = benchmark(solve_batch, requests, store=store)
    assert report.solves == 0
    assert report.memory_hits == BATCH_UNIQUE


def test_batch_warm_replay_sharded_store(benchmark):
    """The same warm replay against a 4-shard store: the routing layer must
    not tax the single-threaded hot path (its win is under contention)."""
    problems = _problems(BATCH_UNIQUE)
    requests = [SolveRequest(problem=problems[index % BATCH_UNIQUE]) for index in range(BATCH_TOTAL)]
    store = ShardedResultStore(num_shards=4)
    solve_batch(requests, store=store)

    _, report = benchmark(solve_batch, requests, store=store)
    assert report.solves == 0
    assert report.memory_hits == BATCH_UNIQUE


def test_async_batch_cold_dedupe_and_submit_latency(benchmark):
    """Async 1000-request/64-unique batch: the job id returns in < 5 ms and
    the drained job performs exactly 64 solves (the acceptance scenario)."""
    problems = _problems(BATCH_UNIQUE)
    requests = [SolveRequest(problem=problems[index % BATCH_UNIQUE]) for index in range(BATCH_TOTAL)]

    def run():
        service = AllocationService(store=ShardedResultStore(num_shards=4), job_workers=2)
        try:
            start = time.perf_counter()
            submitted = service.submit_batch(requests)
            submit_seconds = time.perf_counter() - start
            finished = service.jobs.wait(submitted["job_id"], timeout_seconds=300.0)
            return submitted, submit_seconds, finished
        finally:
            service.close()

    submitted, submit_seconds, finished = benchmark.pedantic(run, rounds=1, iterations=1)
    assert submitted["status"] == "queued"
    assert submit_seconds < SUBMIT_LATENCY_BOUND_SECONDS
    assert finished["status"] == "done"
    assert finished["report"]["total"] == BATCH_TOTAL
    assert finished["report"]["unique"] == BATCH_UNIQUE
    assert finished["report"]["solves"] == BATCH_UNIQUE  # async dedupes identically
    assert len(finished["outcomes"]) == BATCH_TOTAL


def test_async_warm_replay_throughput(benchmark):
    """Warm async replay (submit + drain + poll) of the 1000-request batch:
    zero solves, and the queue sustains the PR 2 warm replay throughput."""
    problems = _problems(BATCH_UNIQUE)
    requests = [SolveRequest(problem=problems[index % BATCH_UNIQUE]) for index in range(BATCH_TOTAL)]
    service = AllocationService(store=ShardedResultStore(num_shards=4), job_workers=2)
    warmup = service.submit_batch(requests)
    service.jobs.wait(warmup["job_id"], timeout_seconds=300.0)

    def replay():
        submitted = service.submit_batch(requests)
        return service.jobs.wait(submitted["job_id"], timeout_seconds=300.0)

    finished = benchmark(replay)
    assert finished["report"]["solves"] == 0
    assert finished["report"]["memory_hits"] == BATCH_UNIQUE
    service.close()
    # >= PR 2 warm replay throughput, with 2x headroom for runner noise.
    # (stats is None under --benchmark-disable, where nothing is timed.)
    if benchmark.stats is not None:
        assert benchmark.stats["mean"] < 2 * PR2_WARM_REPLAY_SECONDS


def test_async_warm_replay_with_wal(benchmark, tmp_path):
    """The durability tax: the same warm async replay with the WAL on.

    Every submit serialises the 1000 request documents (~1.3 MB frame,
    problem documents shared across duplicates), CRC-frames them and pays
    one group-commit fsync before the ack.  The non-durable pinned gate row
    above must stay untouched; this row tracks the absolute WAL cost so a
    regression in framing or fsync batching shows up in the snapshot.
    Measured ~60-110 ms on the container -- the bound below is headroom,
    not a target."""
    problems = _problems(BATCH_UNIQUE)
    requests = [SolveRequest(problem=problems[index % BATCH_UNIQUE]) for index in range(BATCH_TOTAL)]
    service = AllocationService(
        store=ShardedResultStore(num_shards=4), job_workers=2, wal=tmp_path / "wal"
    )
    warmup = service.submit_batch(requests)
    service.jobs.wait(warmup["job_id"], timeout_seconds=300.0)

    def replay():
        submitted = service.submit_batch(requests)
        return service.jobs.wait(submitted["job_id"], timeout_seconds=300.0)

    finished = benchmark(replay)
    assert finished["report"]["solves"] == 0
    assert finished["report"]["memory_hits"] == BATCH_UNIQUE
    wal_stats = service.jobs.wal.stats()
    assert wal_stats["appends"] >= 2  # every replayed submit was journaled
    assert wal_stats["fsyncs"] >= 1
    service.close()
    if benchmark.stats is not None:
        assert benchmark.stats["mean"] < 0.25


def test_async_submit_latency_warm_queue(benchmark):
    """Steady-state submit latency: one lock + one queue put, microseconds."""
    problems = _problems(BATCH_UNIQUE)
    requests = [SolveRequest(problem=problems[index % BATCH_UNIQUE]) for index in range(BATCH_TOTAL)]
    service = AllocationService(store=ShardedResultStore(num_shards=4), job_workers=2)
    warmup = service.submit_batch(requests)
    service.jobs.wait(warmup["job_id"], timeout_seconds=300.0)

    # Bounded rounds: every submission enqueues a real (warm, ~2 ms) batch
    # job, so an unbounded benchmark loop would outpace the drain.
    submitted = benchmark.pedantic(service.submit_batch, args=(requests,), rounds=50, iterations=1)
    assert submitted["status"] == "queued"
    # Jobs drain FIFO: waiting on the last submission drains them all.
    service.jobs.wait(submitted["job_id"], timeout_seconds=300.0)
    service.close()
    if benchmark.stats is not None:
        assert benchmark.stats["mean"] < SUBMIT_LATENCY_BOUND_SECONDS
