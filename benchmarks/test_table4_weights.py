"""Table 4: spreading-function weights used for the three case studies."""

import pytest

from repro.core.objective import PAPER_WEIGHTS
from repro.reporting.experiments import case_study, table4


def test_table4_regeneration(benchmark, save_artifact):
    table = benchmark(table4)
    save_artifact("table4.txt", table.render())
    assert PAPER_WEIGHTS[("alex-16", 2)].beta == pytest.approx(0.7)
    assert PAPER_WEIGHTS[("alex-32", 4)].beta == pytest.approx(6.0)
    assert PAPER_WEIGHTS[("vgg-16", 8)].beta == pytest.approx(50.0)


def test_case_studies_pick_up_table4_weights(benchmark):
    problems = benchmark(
        lambda: [case_study(name) for name in ("alex-16", "alex-32", "vgg-16")]
    )
    betas = [problem.weights.beta for problem in problems]
    assert betas == [0.7, 6.0, 50.0]
    assert [problem.num_fpgas for problem in problems] == [2, 4, 8]
