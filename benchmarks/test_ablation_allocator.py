"""Ablation: Algorithm 1 variants vs a plain first-fit-decreasing allocator.

Compares the criticality-driven allocator (with and without the ordering
portfolio and the repair pass) against a first-fit-decreasing baseline with
no consolidation bias: Algorithm 1 must achieve no worse II and no more
spreading on the paper's case studies.
"""

import pytest

from repro.core.allocator import (
    AllocatorSettings,
    allocate_cus,
    first_fit_decreasing_allocate,
)
from repro.core.discretize import discretize_counts
from repro.core.gp_step import solve_gp_step
from repro.core.solution import AllocationSolution
from repro.reporting.experiments import case_study

CASES = ("alex-16", "alex-32", "vgg-16")


def _totals(problem):
    gp = solve_gp_step(problem)
    return discretize_counts(problem, gp.counts_hat).counts


def _achieved_ii(problem, counts):
    return max(
        problem.wcet[name] / max(1, sum(values)) for name, values in counts.items()
    )


@pytest.mark.parametrize("case", CASES)
def test_algorithm1_runtime(benchmark, case):
    problem = case_study(case, resource_limit_percent=70.0)
    totals = _totals(problem)
    result = benchmark(allocate_cus, problem, totals)
    solution = AllocationSolution(problem=problem, counts=dict(result.counts))
    assert solution.is_feasible()


@pytest.mark.parametrize("case", CASES)
def test_ffd_baseline_runtime(benchmark, case):
    problem = case_study(case, resource_limit_percent=70.0)
    totals = _totals(problem)
    benchmark(first_fit_decreasing_allocate, problem, totals)


@pytest.mark.parametrize("case", CASES)
@pytest.mark.parametrize("constraint", [65.0, 70.0, 80.0])
def test_algorithm1_beats_or_matches_ffd(case, constraint):
    problem = case_study(case, resource_limit_percent=constraint)
    totals = _totals(problem)
    greedy = allocate_cus(problem, totals)
    ffd = first_fit_decreasing_allocate(problem, totals)
    assert _achieved_ii(problem, greedy.counts) <= _achieved_ii(problem, ffd.counts) + 1e-9


@pytest.mark.parametrize("case", ("alex-16", "vgg-16"))
def test_portfolio_and_polish_help_at_tight_constraints(case):
    problem = case_study(case, resource_limit_percent=65.0)
    totals = _totals(problem)
    plain = allocate_cus(problem, totals, AllocatorSettings(portfolio=False, polish=False))
    full = allocate_cus(problem, totals, AllocatorSettings(portfolio=True, polish=True))
    assert _achieved_ii(problem, full.counts) <= _achieved_ii(problem, plain.counts) + 1e-9
