"""Ablation: branch-and-bound discretisation vs naive rounding (Sec. 3.2.2).

The paper discretises the GP result with a floor/ceil branch-and-bound.  The
ablation compares it against the naive ceil-then-trim rounding baseline: the
B&B must never be worse, and the benchmark records how much it costs.
"""

import pytest

from repro.core.discretize import discretize_counts, round_counts
from repro.core.gp_step import solve_gp_step
from repro.reporting.experiments import case_study

CASES = ("alex-16", "alex-32", "vgg-16")


@pytest.mark.parametrize("case", CASES)
def test_bb_discretization_runtime(benchmark, case):
    problem = case_study(case, resource_limit_percent=70.0)
    gp = solve_gp_step(problem)
    result = benchmark(discretize_counts, problem, gp.counts_hat)
    assert result.ii >= gp.ii_hat - 1e-9


@pytest.mark.parametrize("case", CASES)
def test_naive_rounding_runtime(benchmark, case):
    problem = case_study(case, resource_limit_percent=70.0)
    gp = solve_gp_step(problem)
    result = benchmark(round_counts, problem, gp.counts_hat)
    assert result.ii >= gp.ii_hat - 1e-9


@pytest.mark.parametrize("case", CASES)
@pytest.mark.parametrize("constraint", [60.0, 70.0, 80.0])
def test_bb_never_worse_than_rounding(case, constraint):
    problem = case_study(case, resource_limit_percent=constraint)
    gp = solve_gp_step(problem)
    bb = discretize_counts(problem, gp.counts_hat)
    rounded = round_counts(problem, gp.counts_hat)
    assert bb.ii <= rounded.ii + 1e-9
