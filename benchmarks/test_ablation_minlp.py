"""Ablation: exact weighted solver options (incumbent seeding, symmetry breaking).

The MINLP+G branch-and-bound is the expensive reference; the ablation checks
that seeding it with the GP+A incumbent and breaking the FPGA permutation
symmetry never hurts the objective reached within a fixed node budget.
"""

import pytest

from repro.core.exact import ExactSettings, solve_exact_weighted
from repro.reporting.experiments import case_study

NODE_BUDGET = 3
TIME_BUDGET = 60.0


def _settings(seed: bool, symmetry: bool) -> ExactSettings:
    return ExactSettings(
        max_nodes=NODE_BUDGET,
        time_limit_seconds=TIME_BUDGET,
        seed_with_heuristic=seed,
        symmetry_breaking=symmetry,
    )


@pytest.mark.parametrize("seed", [True, False])
def test_seeding_ablation_runtime(benchmark, seed):
    problem = case_study("alex-16", resource_limit_percent=70.0)
    outcome = benchmark.pedantic(
        solve_exact_weighted, args=(problem, _settings(seed, True)), rounds=1, iterations=1
    )
    if seed:
        assert outcome.succeeded


def test_seeding_never_hurts_objective():
    problem = case_study("alex-16", resource_limit_percent=70.0)
    seeded = solve_exact_weighted(problem, _settings(True, True))
    unseeded = solve_exact_weighted(problem, _settings(False, True))
    assert seeded.succeeded
    if unseeded.succeeded:
        assert seeded.objective <= unseeded.objective + 1e-6


def test_symmetry_breaking_keeps_validity():
    problem = case_study("alex-16", resource_limit_percent=75.0)
    with_symmetry = solve_exact_weighted(problem, _settings(True, True))
    without_symmetry = solve_exact_weighted(problem, _settings(True, False))
    assert with_symmetry.succeeded and without_symmetry.succeeded
    # Both are valid feasible solutions of the same problem; their goal values
    # must respect their own lower bounds.
    for outcome in (with_symmetry, without_symmetry):
        assert outcome.objective >= outcome.lower_bound - 1e-6
