"""Ablation: exact weighted solver options (incumbent seeding, symmetry breaking).

The MINLP+G branch-and-bound is the expensive reference; the ablation checks
that seeding it with the GP+A incumbent and breaking the FPGA permutation
symmetry never hurts the objective reached within a fixed node budget.
"""

import pytest

from repro.core.exact import ExactSettings, solve_exact_weighted
from repro.minlp.branch_and_bound import shared_relaxation_caches_clear
from repro.reporting.experiments import case_study

NODE_BUDGET = 3
TIME_BUDGET = 60.0

#: Hard ceiling for LP solves per relaxation node solve, enforced by the
#: ``exact-smoke`` CI job: the incremental-assembly path of PR 3 needs one
#: feasibility LP plus a handful of derivative-bracketed probes (measured
#: 2-6); the pre-PR 3 bisection + golden-section search needed ~62.  A
#: regression in the relaxation assembly or probe bracketing trips this.
MAX_LP_SOLVES_PER_NODE = 12.0


def _settings(seed: bool, symmetry: bool) -> ExactSettings:
    return ExactSettings(
        max_nodes=NODE_BUDGET,
        time_limit_seconds=TIME_BUDGET,
        seed_with_heuristic=seed,
        symmetry_breaking=symmetry,
    )


@pytest.mark.parametrize("seed", [True, False])
def test_seeding_ablation_runtime(benchmark, seed):
    problem = case_study("alex-16", resource_limit_percent=70.0)
    outcome = benchmark.pedantic(
        solve_exact_weighted, args=(problem, _settings(seed, True)), rounds=1, iterations=1
    )
    if seed:
        assert outcome.succeeded


def test_seeding_never_hurts_objective():
    problem = case_study("alex-16", resource_limit_percent=70.0)
    seeded = solve_exact_weighted(problem, _settings(True, True))
    unseeded = solve_exact_weighted(problem, _settings(False, True))
    assert seeded.succeeded
    if unseeded.succeeded:
        assert seeded.objective <= unseeded.objective + 1e-6


def test_lp_solves_per_node_stay_bounded():
    """Relaxation-assembly regressions fail loudly: LPs per node is capped."""
    shared_relaxation_caches_clear()  # measure cold, not earlier tests' hits
    problem = case_study("alex-16", resource_limit_percent=70.0)
    outcome = solve_exact_weighted(problem, _settings(True, True))
    assert outcome.succeeded
    counters = outcome.counters
    assert counters["node_solves"] > 0
    assert counters["lp_solves"] / counters["node_solves"] <= MAX_LP_SOLVES_PER_NODE
    # Every node pays exactly one feasibility LP (no bisection), never more.
    assert counters["feasibility_lps"] <= counters["node_solves"]


def test_symmetry_breaking_keeps_validity():
    problem = case_study("alex-16", resource_limit_percent=75.0)
    with_symmetry = solve_exact_weighted(problem, _settings(True, True))
    without_symmetry = solve_exact_weighted(problem, _settings(True, False))
    assert with_symmetry.succeeded and without_symmetry.succeeded
    # Both are valid feasible solutions of the same problem; their goal values
    # must respect their own lower bounds.
    for outcome in (with_symmetry, without_symmetry):
        assert outcome.objective >= outcome.lower_bound - 1e-6
