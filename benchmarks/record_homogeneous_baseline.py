"""Record the homogeneous reference results used by the heterogeneity refactor.

The heterogeneous-platform refactor must not change anything about the
paper's homogeneous case studies: request fingerprints, allocations and
objectives on the runtime-comparison workloads have to stay byte-identical.
This script snapshots those quantities into
``benchmarks/results/homogeneous_baseline.json``;
``tests/test_homogeneous_baseline.py`` replays the same solves and asserts
equality against the recording.

Regenerate (only when an *intentional* behaviour change is being made)::

    PYTHONPATH=src python benchmarks/record_homogeneous_baseline.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.exact import ExactSettings
from repro.core.solvers import solve
from repro.minlp.binpacking import shared_packing_memos_clear
from repro.minlp.branch_and_bound import shared_relaxation_caches_clear
from repro.reporting.experiments import case_study
from repro.service.canonical import fingerprint

BASELINE_PATH = Path(__file__).resolve().parent / "results" / "homogeneous_baseline.json"

#: The runtime-comparison grid: every case study at a band of constraints.
CASES = ("alex-16", "alex-32", "vgg-16")
CONSTRAINTS = (61.0, 65.0, 70.0, 75.0, 80.0)
METHODS = ("gp+a", "minlp", "minlp+g")

#: Mirrors ``benchmarks/test_runtime_comparison.py``.
EXACT_SETTINGS = ExactSettings(max_nodes=3, time_limit_seconds=120.0)


def record() -> dict:
    shared_packing_memos_clear()
    shared_relaxation_caches_clear()
    entries = []
    for case in CASES:
        for constraint in CONSTRAINTS:
            problem = case_study(case, resource_limit_percent=constraint)
            for method in METHODS:
                outcome = solve(problem, method=method, exact_settings=EXACT_SETTINGS)
                entries.append(
                    {
                        "case": case,
                        "constraint": constraint,
                        "method": method,
                        "fingerprint": fingerprint(
                            problem, method, exact_settings=EXACT_SETTINGS
                        ),
                        "status": outcome.status.value,
                        "objective": outcome.objective if outcome.succeeded else None,
                        "counts": (
                            {
                                name: list(values)
                                for name, values in outcome.solution.counts.items()
                            }
                            if outcome.solution is not None
                            else None
                        ),
                    }
                )
    return {"exact_settings": {"max_nodes": 3, "time_limit_seconds": 120.0}, "entries": entries}


if __name__ == "__main__":
    BASELINE_PATH.write_text(json.dumps(record(), indent=1) + "\n")
    print(f"wrote {BASELINE_PATH}")
