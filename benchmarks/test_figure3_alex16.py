"""Figure 3: Alex-16 on 2 FPGAs -- GP+A vs MINLP vs MINLP+G.

Qualitative shape to reproduce (paper Section 4):
* MINLP (beta = 0) achieves the lowest II at every resource constraint,
* GP+A tracks MINLP closely and catches the extremes,
* the II decreases as the constraint (and the average utilisation) grows,
* II values lie roughly between 1.0 and 1.7 ms.

The MINLP+G branch-and-bound runs with a small node budget (documented in
EXPERIMENTS.md); it is seeded with the GP+A incumbent, as the paper's Couenne
runs were effectively bounded by a wall-clock budget.
"""

from repro.core.exact import ExactSettings
from repro.reporting.experiments import figure3

CONSTRAINTS = (55, 60, 65, 70, 75, 80, 85)
EXACT_SETTINGS = ExactSettings(max_nodes=4, time_limit_seconds=60.0)


def test_figure3_alex16(benchmark, save_artifact):
    result = benchmark.pedantic(
        figure3,
        kwargs={"constraints": CONSTRAINTS, "exact_settings": EXACT_SETTINGS},
        rounds=1, iterations=1,
    )
    save_artifact("figure3a.csv", result.versus_constraint.to_csv())
    save_artifact("figure3b.csv", result.versus_utilization.to_csv())
    save_artifact("figure3a.txt", result.versus_constraint.to_ascii())

    panel_a = result.versus_constraint
    gp = dict(panel_a.get("GP+A").points)
    exact = dict(panel_a.get("MINLP").points)
    weighted = dict(panel_a.get("MINLP+G").points)

    for constraint in CONSTRAINTS:
        x = float(constraint)
        # Exact minimum II is a lower bound for both other methods.
        assert exact[x] <= gp[x] + 1e-9
        assert exact[x] <= weighted[x] + 1e-9
        # GP+A tracks MINLP (paper: good agreement except the very tight end).
        assert gp[x] <= exact[x] * 1.35
        # Paper's y-axis range.
        assert 0.9 <= exact[x] <= 1.8
        assert 0.9 <= gp[x] <= 1.8

    # Both curves are (weakly) decreasing from the tightest to the loosest point.
    assert exact[float(CONSTRAINTS[-1])] <= exact[float(CONSTRAINTS[0])]
    assert gp[float(CONSTRAINTS[-1])] <= gp[float(CONSTRAINTS[0])]
