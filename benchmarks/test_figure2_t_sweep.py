"""Figure 2: effect of the heuristic parameter T on the II (Alex-16, 2 FPGAs).

Paper finding: across a 40-90 % resource-constraint range, the value of T
(0 % to 30 %, delta = 1 %) has little effect on the achieved initiation
interval, which justifies using T = 0 everywhere else.
"""

import math

from repro.reporting.experiments import figure2

#: Constraint grid and T values of the original figure.
CONSTRAINTS = tuple(range(40, 91, 5))
T_VALUES = (0.0, 2.5, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0)


def test_figure2_t_sweep(benchmark, save_artifact):
    figure = benchmark.pedantic(
        figure2, kwargs={"constraints": CONSTRAINTS, "t_values": T_VALUES},
        rounds=1, iterations=1,
    )
    save_artifact("figure2.csv", figure.to_csv())
    save_artifact("figure2.txt", figure.to_ascii())

    t0 = dict(figure.get("T0").points)
    # The II decreases (weakly) as the resource constraint is relaxed.
    finite = [(x, y) for x, y in sorted(t0.items()) if math.isfinite(y)]
    assert finite[-1][1] <= finite[0][1] + 1e-9
    # Paper range check: at high constraints the II approaches ~1 ms.
    assert 0.9 <= finite[-1][1] <= 1.3

    # "Little effect of T": every T curve stays within a modest band of T0 at
    # every feasible constraint point.
    for t_value in T_VALUES[1:]:
        series = dict(figure.get(f"T{t_value:g}").points)
        for x, y0 in t0.items():
            y = series[x]
            if math.isfinite(y0) and math.isfinite(y):
                assert abs(y - y0) <= 0.35 * y0 + 1e-9
