"""Figure 4: Alex-32 on 4 FPGAs -- GP+A vs MINLP vs MINLP+G.

Qualitative shape to reproduce: II between roughly 7 and 9.2 ms; MINLP is the
lower envelope; GP+A matches it at the loose end and may lose up to ~25 % at
the tightest constraint (the consolidation penalty the paper discusses);
GP+A/MINLP+G use less average resource than MINLP at tight constraints.
"""

from repro.core.exact import ExactSettings
from repro.reporting.experiments import figure4

CONSTRAINTS = (65, 67, 70, 72, 75)
EXACT_SETTINGS = ExactSettings(max_nodes=4, time_limit_seconds=60.0)


def test_figure4_alex32(benchmark, save_artifact):
    result = benchmark.pedantic(
        figure4,
        kwargs={"constraints": CONSTRAINTS, "exact_settings": EXACT_SETTINGS},
        rounds=1, iterations=1,
    )
    save_artifact("figure4a.csv", result.versus_constraint.to_csv())
    save_artifact("figure4b.csv", result.versus_utilization.to_csv())
    save_artifact("figure4a.txt", result.versus_constraint.to_ascii())

    panel_a = result.versus_constraint
    gp = dict(panel_a.get("GP+A").points)
    exact = dict(panel_a.get("MINLP").points)

    for constraint in CONSTRAINTS:
        x = float(constraint)
        assert exact[x] <= gp[x] + 1e-9
        # Paper range (7 - 9.2 ms) with a small tolerance.
        assert 6.8 <= exact[x] <= 9.5
        assert 6.8 <= gp[x] <= 9.5
        # Consolidation penalty stays within the ~25-30 % the paper reports.
        assert gp[x] <= exact[x] * 1.30

    # Panel (b): the II-vs-average-utilisation series exist for every method
    # and, as in the paper, the II decreases as the average utilisation grows.
    for label in ("GP+A", "MINLP"):
        series = sorted(result.versus_utilization.get(label).finite_points())
        assert series, f"no finite points for {label}"
        assert series[-1][1] <= series[0][1] + 1e-9
