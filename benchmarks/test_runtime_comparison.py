"""Section 4 runtime comparison: GP+A vs the exact MINLP solvers.

Paper: GP+A takes 0.78 s (Alex-16, 2 FPGAs) to 4.4 s (VGG, 8 FPGAs) while the
MINLP runs take minutes to hours (100x-1000x slower).  Our from-scratch exact
solvers are much faster than Couenne on the small AlexNet instances, so the
ratio there is smaller; the *shape* -- the heuristic wins, and the gap grows
with instance size, being largest for VGG on 8 FPGAs -- is what this
benchmark asserts.
"""

import pytest

from repro.core.exact import ExactSettings
from repro.core.solvers import solve
from repro.explore.runtime import runtime_comparison, speedups
from repro.reporting.experiments import case_study, runtime_table

EXACT_SETTINGS = ExactSettings(max_nodes=3, time_limit_seconds=120.0)


def test_runtime_table(benchmark, save_artifact):
    table = benchmark.pedantic(
        runtime_table,
        kwargs={
            "cases": ("alex-16", "alex-32", "vgg-16"),
            "methods": ("gp+a", "minlp", "minlp+g"),
            "resource_constraint": 70.0,
            "repetitions": 1,
            "exact_settings": EXACT_SETTINGS,
        },
        rounds=1, iterations=1,
    )
    save_artifact("runtime_comparison.txt", table.render())


def test_gp_a_runtime_within_paper_budget(benchmark):
    """GP+A solves the largest case (VGG on 8 FPGAs) well inside 4.4 s."""
    problem = case_study("vgg-16", resource_limit_percent=70.0)
    outcome = benchmark(lambda: solve(problem, method="gp+a"))
    assert outcome.succeeded
    assert outcome.runtime_seconds < 4.4


def test_heuristic_speedup_grows_with_instance_size(benchmark):
    measurements = benchmark.pedantic(
        runtime_comparison,
        kwargs={
            "cases": [
                ("alex-16", case_study("alex-16", 70.0)),
                ("vgg-16", case_study("vgg-16", 70.0)),
            ],
            "methods": ("gp+a", "minlp"),
            "repetitions": 1,
        },
        rounds=1, iterations=1,
    )
    ratios = speedups(measurements, baseline_method="gp+a")
    assert ratios["vgg-16"]["minlp"] > 1.0
    # The exact/heuristic runtime ratio is larger on VGG than on Alex-16.
    assert ratios["vgg-16"]["minlp"] > ratios["alex-16"]["minlp"]
