"""Section 4 runtime comparison: GP+A vs the exact MINLP solvers.

Paper: GP+A takes 0.78 s (Alex-16, 2 FPGAs) to 4.4 s (VGG, 8 FPGAs) while the
MINLP runs take minutes to hours (100x-1000x slower).  Our from-scratch exact
solvers were always much faster than Couenne, and PR 3 (incremental LP
relaxations, derivative-bracketed II probing, counting-bound packing proofs)
made the exact path comparable to the heuristic on these instances -- the
whole exact side of the table now solves in well under a second where the
seed needed ~5 s.  What this benchmark asserts is therefore (i) the paper's
absolute heuristic budget, and (ii) the exact path's work counters: LP solves
per branch-and-bound node and packer search nodes must stay an order of
magnitude below their pre-PR-3 baselines, so a relaxation-assembly or
packing-bound regression fails loudly here (and in the ``exact-smoke`` CI
job, which runs this module under a wall-clock budget).
"""

import time

from repro.core.exact import ExactSettings
from repro.core.solvers import solve
from repro.minlp.binpacking import shared_packing_memos_clear
from repro.minlp.branch_and_bound import shared_relaxation_caches_clear
from repro.reporting.experiments import case_study, runtime_table

EXACT_SETTINGS = ExactSettings(max_nodes=3, time_limit_seconds=120.0)

#: Ceilings for the exact-path work counters, set ~2x above the measured
#: PR 3 values and far below the pre-PR 3 baselines noted inline.
MAX_LP_SOLVES_PER_NODE = 12.0  # seed: ~62 (60-step bisection + golden section)
MAX_PACKER_SEARCH_NODES = 25_000  # seed: ~400k on the vgg-16 runtime row


def test_runtime_table(benchmark, save_artifact):
    table = benchmark.pedantic(
        runtime_table,
        kwargs={
            "cases": ("alex-16", "alex-32", "vgg-16"),
            "methods": ("gp+a", "minlp", "minlp+g"),
            "resource_constraint": 70.0,
            "repetitions": 1,
            "exact_settings": EXACT_SETTINGS,
        },
        rounds=1, iterations=1,
    )
    save_artifact("runtime_comparison.txt", table.render())


def test_gp_a_runtime_within_paper_budget(benchmark):
    """GP+A solves the largest case (VGG on 8 FPGAs) well inside 4.4 s."""
    problem = case_study("vgg-16", resource_limit_percent=70.0)
    outcome = benchmark(lambda: solve(problem, method="gp+a"))
    assert outcome.succeeded
    assert outcome.runtime_seconds < 4.4


def test_exact_path_wall_clock_budget(benchmark):
    """The whole exact side of the runtime table solves in well under the
    ~5 s the seed needed (cold caches; generous 2.5 s CI budget)."""
    def exact_rows():
        shared_relaxation_caches_clear()
        shared_packing_memos_clear()
        start = time.perf_counter()
        for case in ("alex-16", "alex-32", "vgg-16"):
            problem = case_study(case, resource_limit_percent=70.0)
            assert solve(problem, method="minlp", exact_settings=EXACT_SETTINGS).succeeded
            assert solve(
                problem.with_paper_weights(), method="minlp+g", exact_settings=EXACT_SETTINGS
            ).succeeded
        return time.perf_counter() - start

    elapsed = benchmark.pedantic(exact_rows, rounds=1, iterations=1)
    assert elapsed < 2.5


def test_exact_path_work_counters():
    """LP solves per node and packer search nodes stay far below the pre-PR 3
    baselines (~62 LPs/node, ~400k packer nodes on the vgg-16 row)."""
    shared_relaxation_caches_clear()
    shared_packing_memos_clear()
    problem = case_study("vgg-16", resource_limit_percent=70.0)

    exact = solve(problem, method="minlp", exact_settings=EXACT_SETTINGS)
    assert exact.succeeded
    counters = exact.counters
    assert counters["packs"] > 0
    # The slot-counting bound proves the hard probes infeasible at the root;
    # before PR 3 each of them burned the full 200k-node backtracking budget.
    assert counters["packer_search_nodes"] <= MAX_PACKER_SEARCH_NODES

    weighted = solve(
        problem.with_paper_weights(), method="minlp+g", exact_settings=EXACT_SETTINGS
    )
    assert weighted.succeeded
    counters = weighted.counters
    assert counters["node_solves"] > 0
    assert counters["lp_solves"] / counters["node_solves"] <= MAX_LP_SOLVES_PER_NODE


def test_warm_exact_replay_is_cached():
    """Re-solving the same exact instances hits the shared memo tiers."""
    problem = case_study("alex-16", resource_limit_percent=70.0)
    first = solve(problem, method="minlp", exact_settings=EXACT_SETTINGS)
    again = solve(problem, method="minlp", exact_settings=EXACT_SETTINGS)
    assert again.counters["packing_memo_hits"] == again.counters["packs"]
    assert again.counters["packer_search_nodes"] == 0
    assert first.objective == again.objective
