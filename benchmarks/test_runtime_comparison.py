"""Section 4 runtime comparison: GP+A vs the exact MINLP solvers.

Paper: GP+A takes 0.78 s (Alex-16, 2 FPGAs) to 4.4 s (VGG, 8 FPGAs) while the
MINLP runs take minutes to hours (100x-1000x slower).  Our from-scratch exact
solvers were always much faster than Couenne, and PR 3 (incremental LP
relaxations, derivative-bracketed II probing, counting-bound packing proofs)
made the exact path comparable to the heuristic on these instances.  PR 6
(bin-completion packing, GP-step/allocation memos shared with the exact
seeds, batched sweep LPs) retired the last slow rows: the whole nine-row
table runs in ~50 ms cold on the single-core reference container.  What this
benchmark asserts is (i) the paper's absolute heuristic budget, and (ii) the
exact path's work counters: packer search nodes (0 at PR 6 -- completion
decides every table packing at the root), LP solves per branch-and-bound
node, and the batched sweep-seeding LPs, so a relaxation-assembly or
packing-bound regression fails loudly here (and in the ``exact-smoke`` CI
job, which runs this module under a wall-clock budget).
"""

import time

from repro.core.discretize import discretization_cache_clear
from repro.core.exact import ExactSettings
from repro.core.gp_step import gp_step_cache_clear
from repro.core.heuristic import allocation_cache_clear
from repro.core.solvers import solve
from repro.explore.sweep import resource_constraint_sweep
from repro.minlp.binpacking import shared_packing_memos_clear
from repro.minlp.branch_and_bound import shared_relaxation_caches_clear
from repro.reporting.experiments import case_study, runtime_table

EXACT_SETTINGS = ExactSettings(max_nodes=3, time_limit_seconds=120.0)

#: Ceilings for the exact-path work counters.  The bin-completion packer
#: (PR 6) decides every runtime-table packing at the root, so the node
#: ceiling drops from the branching packer's 25k to 100 (measured: 0 search
#: nodes on all three cases; the PR 3 branching packer needed ~2.9k on
#: alex-16 and the seed ~400k on vgg-16).  The LP ceiling is just above the
#: measured cold 11.4 LPs/node on vgg-16 (seed: ~62).
MAX_LP_SOLVES_PER_NODE = 12.0
MAX_PACKER_SEARCH_NODES = 100

#: Batched sweep seeding solves at most the goal + feasibility LP pair per
#: sweep point on the shared skeleton (measured: exactly 2).
MAX_BATCHED_LPS_PER_POINT = 4


def cold_caches() -> None:
    """Drop every cross-call memo tier the solvers share."""
    shared_relaxation_caches_clear()
    shared_packing_memos_clear()
    discretization_cache_clear()
    gp_step_cache_clear()
    allocation_cache_clear()


def test_runtime_table(benchmark, save_artifact):
    table = benchmark.pedantic(
        runtime_table,
        kwargs={
            "cases": ("alex-16", "alex-32", "vgg-16"),
            "methods": ("gp+a", "minlp", "minlp+g"),
            "resource_constraint": 70.0,
            "repetitions": 1,
            "exact_settings": EXACT_SETTINGS,
        },
        rounds=1, iterations=1,
    )
    save_artifact("runtime_comparison.txt", table.render())


def test_gp_a_runtime_within_paper_budget(benchmark):
    """GP+A solves the largest case (VGG on 8 FPGAs) well inside 4.4 s."""
    problem = case_study("vgg-16", resource_limit_percent=70.0)
    outcome = benchmark(lambda: solve(problem, method="gp+a"))
    assert outcome.succeeded
    assert outcome.runtime_seconds < 4.4


def test_exact_path_wall_clock_budget(benchmark):
    """The whole exact side of the runtime table solves in well under the
    ~5 s the seed needed (cold caches; generous 2.5 s CI budget)."""
    def exact_rows():
        cold_caches()
        start = time.perf_counter()
        for case in ("alex-16", "alex-32", "vgg-16"):
            problem = case_study(case, resource_limit_percent=70.0)
            assert solve(problem, method="minlp", exact_settings=EXACT_SETTINGS).succeeded
            assert solve(
                problem.with_paper_weights(), method="minlp+g", exact_settings=EXACT_SETTINGS
            ).succeeded
        return time.perf_counter() - start

    elapsed = benchmark.pedantic(exact_rows, rounds=1, iterations=1)
    assert elapsed < 1.0


def test_exact_path_work_counters():
    """Packer search nodes and LP solves per node stay at their PR 6 levels
    (0 search nodes: bin-completion decides every table packing at the root;
    ~11 LPs/node cold).  Pre-PR 3 baselines were ~62 LPs/node and ~400k
    packer nodes on the vgg-16 row; the PR 3-5 branching packer still burned
    ~2.9k nodes on alex-16."""
    for case in ("alex-16", "vgg-16"):
        cold_caches()
        problem = case_study(case, resource_limit_percent=70.0)

        exact = solve(problem, method="minlp", exact_settings=EXACT_SETTINGS)
        assert exact.succeeded
        counters = exact.counters
        assert counters["packs"] > 0
        assert counters["packer_search_nodes"] <= MAX_PACKER_SEARCH_NODES

        weighted = solve(
            problem.with_paper_weights(), method="minlp+g", exact_settings=EXACT_SETTINGS
        )
        assert weighted.succeeded
        counters = weighted.counters
        assert counters["node_solves"] > 0
        assert counters["lp_solves"] / counters["node_solves"] <= MAX_LP_SOLVES_PER_NODE


def test_sweep_batched_lp_counters():
    """A minlp+g sweep seeds its root relaxations on one shared LP skeleton:
    every point reports the work as ``lp_batched_solves``, bounded by the
    goal + feasibility pair the batch solves per point."""
    cold_caches()
    points = resource_constraint_sweep(
        case_study("alex-16"),
        [50.0, 60.0, 70.0, 80.0],
        methods=("minlp+g",),
        exact_settings=EXACT_SETTINGS,
    )
    assert len(points) == 4
    for point in points:
        batched = point.outcome.counters.get("lp_batched_solves", 0)
        assert 1 <= batched <= MAX_BATCHED_LPS_PER_POINT


def test_warm_exact_replay_is_cached():
    """Re-solving the same exact instances hits the shared memo tiers."""
    problem = case_study("alex-16", resource_limit_percent=70.0)
    first = solve(problem, method="minlp", exact_settings=EXACT_SETTINGS)
    again = solve(problem, method="minlp", exact_settings=EXACT_SETTINGS)
    assert again.counters["packing_memo_hits"] == again.counters["packs"]
    assert again.counters["packer_search_nodes"] == 0
    assert first.objective == again.objective
