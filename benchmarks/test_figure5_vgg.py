"""Figure 5: VGG-16 on 8 FPGAs -- GP+A vs MINLP vs MINLP+G.

Qualitative shape to reproduce: II between roughly 10 and 24 ms, decreasing
as the resource constraint is relaxed; MINLP is the lower envelope and GP+A
tracks it closely; this is also the case where the runtime gap between the
heuristic and the exact methods is largest.
"""

from repro.core.exact import ExactSettings
from repro.reporting.experiments import figure5

CONSTRAINTS = (55, 61, 65, 70, 75, 80)
EXACT_SETTINGS = ExactSettings(max_nodes=2, time_limit_seconds=90.0)


def test_figure5_vgg(benchmark, save_artifact):
    result = benchmark.pedantic(
        figure5,
        kwargs={"constraints": CONSTRAINTS, "exact_settings": EXACT_SETTINGS},
        rounds=1, iterations=1,
    )
    save_artifact("figure5a.csv", result.versus_constraint.to_csv())
    save_artifact("figure5b.csv", result.versus_utilization.to_csv())
    save_artifact("figure5a.txt", result.versus_constraint.to_ascii())

    panel_a = result.versus_constraint
    gp = dict(panel_a.get("GP+A").points)
    exact = dict(panel_a.get("MINLP").points)

    for constraint in CONSTRAINTS:
        x = float(constraint)
        assert exact[x] <= gp[x] + 1e-9
        assert 9.0 <= exact[x] <= 25.0
        assert 9.0 <= gp[x] <= 25.0
        assert gp[x] <= exact[x] * 1.35

    assert exact[80.0] < exact[55.0]
    assert gp[80.0] < gp[55.0]

    # Runtime shape: the heuristic stays faster than the exact method on the
    # largest case study (the paper reports 100x-1000x against Couenne; our
    # from-scratch exact path closed most of that gap in PR 3 -- incremental
    # LP relaxations and counting-bound packing proofs -- so only the sign of
    # the gap, not its magnitude, is a stable property of this repository).
    assert result.speedup["minlp"]["geomean"] > 1.0
