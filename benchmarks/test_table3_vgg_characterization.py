"""Table 3: VGG-16 kernel characterisation (16-bit fixed point)."""

import pytest

from repro.reporting.experiments import table3
from repro.workloads.vgg import VGG16_EXPECTED_SUM, vgg16_fx16


def test_table3_regeneration(benchmark, save_artifact):
    table = benchmark(table3)
    save_artifact("table3.txt", table.render())

    pipeline = vgg16_fx16()
    assert len(pipeline) == 17
    assert pipeline.total_resources().bram == pytest.approx(VGG16_EXPECTED_SUM["bram"], abs=0.01)
    assert pipeline.total_resources().dsp == pytest.approx(VGG16_EXPECTED_SUM["dsp"], abs=0.01)
    assert pipeline.total_bandwidth() == pytest.approx(VGG16_EXPECTED_SUM["bw"], abs=0.15)
    # The paper rounds the WCET sum to 0.4 s.
    assert pipeline.total_wcet_ms() == pytest.approx(426.6, abs=0.5)
    # Multi-FPGA motivation: the whole network exceeds one device's DSPs.
    assert pipeline.total_resources().dsp > 100.0
