"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Besides the
pytest-benchmark timing, the artefact itself (rendered table or CSV series)
is written under ``benchmarks/results/`` and echoed to stdout so a run with
``pytest benchmarks/ --benchmark-only -s`` shows the reproduced data.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where reproduced tables/figures are written."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_artifact(results_dir):
    """Return a helper that writes an artefact and echoes a short preview."""

    def _save(name: str, content: str, preview_lines: int = 30) -> Path:
        path = results_dir / name
        path.write_text(content + "\n")
        preview = "\n".join(content.splitlines()[:preview_lines])
        print(f"\n--- {name} ---\n{preview}\n--- (written to {path}) ---")
        return path

    return _save
