"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Besides the
pytest-benchmark timing, the artefact itself (rendered table or CSV series)
is written under ``benchmarks/results/`` and echoed to stdout so a run with
``pytest benchmarks/ --benchmark-only -s`` shows the reproduced data.

Each session that ran benchmarks also writes a compact perf snapshot to
``benchmarks/results/BENCH_<rev>.json`` (see ``benchmarks/export_bench.py``)
so successive PRs can track the performance trajectory; compare two
snapshots with ``python benchmarks/export_bench.py compare A.json B.json``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from export_bench import snapshot_from_benchmarks, write_snapshot  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_sessionfinish(session, exitstatus):
    """Write the ``BENCH_<rev>.json`` snapshot after a benchmark run.

    pytest-benchmark finalises its stats in a hook *wrapper*, which runs
    before plain implementations like this one, so the numbers are complete
    here.  Skipped silently when no benchmark ran (e.g. unit-test-only
    invocations) or the plugin is absent.
    """
    benchmark_session = getattr(session.config, "_benchmarksession", None)
    if benchmark_session is None or not benchmark_session.benchmarks:
        return
    try:
        write_snapshot(snapshot_from_benchmarks(benchmark_session.benchmarks))
    except Exception:  # pragma: no cover - snapshots must never fail a run
        pass


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where reproduced tables/figures are written."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_artifact(results_dir):
    """Return a helper that writes an artefact and echoes a short preview."""

    def _save(name: str, content: str, preview_lines: int = 30) -> Path:
        path = results_dir / name
        path.write_text(content + "\n")
        preview = "\n".join(content.splitlines()[:preview_lines])
        print(f"\n--- {name} ---\n{preview}\n--- (written to {path}) ---")
        return path

    return _save
