"""Figure 6: per-FPGA resource distribution of VGG kernels at a 61 % constraint.

Qualitative shape to reproduce: GP+A and MINLP+G concentrate each kernel's
CUs on few FPGAs (simple host code, one buffer per kernel pair), while the
pure II-minimising MINLP spreads kernels across several FPGAs; every FPGA
respects the 61 % cap (SLACK >= 39 %).
"""

from repro.core.exact import ExactSettings
from repro.core.solvers import solve
from repro.reporting.experiments import case_study, figure6

EXACT_SETTINGS = ExactSettings(max_nodes=2, time_limit_seconds=90.0)
CONSTRAINT = 61.0


def fpgas_per_kernel(solution) -> float:
    return sum(
        sum(1 for count in per_fpga if count > 0) for per_fpga in solution.counts.values()
    ) / len(solution.counts)


def test_figure6_distribution(benchmark, save_artifact):
    tables = benchmark.pedantic(
        figure6,
        kwargs={"resource_constraint": CONSTRAINT, "exact_settings": EXACT_SETTINGS},
        rounds=1, iterations=1,
    )
    rendered = "\n\n".join(table.render() for table in tables.values())
    save_artifact("figure6.txt", rendered, preview_lines=50)

    problem = case_study("vgg-16", resource_limit_percent=CONSTRAINT)
    gp_a = solve(problem, method="gp+a")
    exact = solve(problem, method="minlp")

    # The 61 % cap (SLACK >= 39 %) holds on every FPGA for both allocations.
    for outcome in (gp_a, exact):
        solution = outcome.solution
        for f in range(problem.num_fpgas):
            assert solution.fpga_resource_usage(f).max_component() <= CONSTRAINT + 1e-6

    # Consolidation contrast: GP+A touches no more FPGAs per kernel than MINLP
    # and has no higher spreading.
    assert fpgas_per_kernel(gp_a.solution) <= fpgas_per_kernel(exact.solution) + 1e-9
    assert gp_a.solution.spreading <= exact.solution.spreading + 1e-9

    # Both reach (nearly) the same II at this constraint, as in the paper.
    assert gp_a.initiation_interval <= exact.initiation_interval * 1.35
