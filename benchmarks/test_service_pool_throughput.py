"""Multi-process pool benchmarks: the router + shard-group worker topology.

The single-process service saturates one interpreter: the GIL serialises
request parsing, cache lookups and the solver itself.  The worker pool
(PR 9) shards the keyspace across OS processes behind a consistent-hashing
router, so the same 1000-request/64-unique acceptance batch is the yardstick
again, now over real HTTP against real processes:

* the warm async replay rate through a 4-worker pool (the pinned gate row:
  submit + drain + poll of the full batch with every answer cached);
* the 4-worker vs 1-worker warm replay speedup -- the tentpole's scaling
  claim, asserted only where the container actually has >= 4 cores;
* the async submit (ack) latency through the router vs the single-process
  server -- the fan-out and the per-group WAL fsyncs may tax the ack by at
  most 1.5x.

Numbers land in ``BENCH_<rev>.json`` via ``benchmarks/conftest.py``; the
warm replay row is pinned in ``export_bench.PINNED_BENCHMARKS`` at the
standard 1.3x gate.
"""

from __future__ import annotations

import os
import statistics
import time

import pytest

from repro.core.problem import AllocationProblem
from repro.platform.presets import aws_f1
from repro.service import (
    AllocationService,
    RetryPolicy,
    ServiceClient,
    ShardedResultStore,
    SolveRequest,
    WorkerPool,
    WorkerSpec,
    start_server,
)
from repro.service.router import RouterService, start_router
from repro.workloads.alexnet import alexnet_fx16

#: The acceptance scenario shared with ``test_service_throughput.py``.
BATCH_TOTAL = 1000
BATCH_UNIQUE = 64

#: Scaling asserts only run where the pool can actually run in parallel.
PARALLEL_CAPABLE = (os.cpu_count() or 1) >= 4

#: The tentpole's scaling claim on a >= 4-core runner.
SCALING_FLOOR = 2.5

#: The router ack (fan-out + per-group WAL fsync) vs the single-process ack.
SUBMIT_LATENCY_RATIO_BOUND = 1.5


def _requests() -> list[SolveRequest]:
    base = AllocationProblem(
        pipeline=alexnet_fx16(),
        platform=aws_f1(num_fpgas=2, resource_limit_percent=70.0),
    )
    problems = [
        base.with_resource_constraint(40.0 + index * 50.0 / BATCH_UNIQUE)
        for index in range(BATCH_UNIQUE)
    ]
    return [
        SolveRequest(problem=problems[index % BATCH_UNIQUE])
        for index in range(BATCH_TOTAL)
    ]


def _topology(root, num_groups: int):
    spec = WorkerSpec(group=0, data_dir=str(root))
    pool = WorkerPool(num_groups, str(root), spec=spec)
    pool.start()
    router = RouterService(pool)
    server, thread = start_router(router, "127.0.0.1", 0)
    client = ServiceClient(
        f"http://127.0.0.1:{server.server_address[1]}",
        timeout_seconds=120.0,
        retry_policy=RetryPolicy(retries=8, backoff_base_seconds=0.1),
    )
    return pool, router, server, thread, client


def _teardown(router, server, thread) -> None:
    server.shutdown()
    thread.join(timeout=30.0)
    server.server_close()
    router.close()


def _warm_replay_seconds(client: ServiceClient, requests, rounds: int = 3) -> float:
    """Mean wall time of a warm async replay (submit + drain + poll)."""
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        submitted = client.solve_batch_async(requests)
        finished = client.wait_for_job(submitted["job_id"], timeout_seconds=300.0)
        samples.append(time.perf_counter() - start)
        assert finished["status"] == "done"
        assert finished["report"]["solves"] == 0
    return statistics.fmean(samples)


def test_pool_warm_async_replay_throughput(benchmark, tmp_path):
    """Warm async replay of the acceptance batch through a 4-worker pool.

    The pinned gate row: submit over HTTP, split by ring ownership, drain
    in four processes, merge in request order -- with zero solves.
    """
    requests = _requests()
    pool, router, server, thread, client = _topology(tmp_path, num_groups=4)
    try:
        cold = client.solve_batch_async(requests)
        finished = client.wait_for_job(cold["job_id"], timeout_seconds=300.0)
        assert finished["status"] == "done"
        assert finished["report"]["total"] == BATCH_TOTAL
        assert finished["report"]["unique"] == BATCH_UNIQUE
        assert finished["report"]["solves"] == BATCH_UNIQUE

        def replay():
            submitted = client.solve_batch_async(requests)
            return client.wait_for_job(submitted["job_id"], timeout_seconds=300.0)

        finished = benchmark.pedantic(replay, rounds=3, iterations=1)
        assert finished["report"]["solves"] == 0
        assert finished["report"]["memory_hits"] == BATCH_UNIQUE
        assert len(finished["outcomes"]) == BATCH_TOTAL
        # The batch genuinely fanned out across all four groups.
        stats = client.stats()
        assert stats["router"]["num_groups"] == 4
        assert all(row["healthy"] for row in stats["pool"])
    finally:
        _teardown(router, server, thread)


@pytest.mark.skipif(
    not PARALLEL_CAPABLE,
    reason="scaling floor only holds with >= 4 cores (pool workers share "
    "cores otherwise)",
)
def test_pool_scaling_warm_async_replay_4_vs_1(tmp_path):
    """The tentpole claim: 4 workers sustain >= 2.5x the warm async replay
    rate of 1 worker on a >= 4-core container."""
    requests = _requests()

    pool, router, server, thread, client = _topology(tmp_path / "one", num_groups=1)
    try:
        cold = client.solve_batch_async(requests)
        assert (
            client.wait_for_job(cold["job_id"], timeout_seconds=600.0)["status"]
            == "done"
        )
        single = _warm_replay_seconds(client, requests)
    finally:
        _teardown(router, server, thread)

    pool, router, server, thread, client = _topology(tmp_path / "four", num_groups=4)
    try:
        cold = client.solve_batch_async(requests)
        assert (
            client.wait_for_job(cold["job_id"], timeout_seconds=600.0)["status"]
            == "done"
        )
        pooled = _warm_replay_seconds(client, requests)
    finally:
        _teardown(router, server, thread)

    speedup = single / pooled
    print(
        f"\nwarm async replay: 1 worker {single * 1000:.1f} ms, "
        f"4 workers {pooled * 1000:.1f} ms, speedup {speedup:.2f}x"
    )
    assert speedup >= SCALING_FLOOR


def test_pool_submit_latency_vs_single_process(benchmark, tmp_path):
    """The router's async ack (parse + ring split + per-group journaled
    submits, fanned out) vs the single-process server's ack, both over
    HTTP on warm stores.  The pool may tax the ack by at most 1.5x --
    asserted where the cores exist to absorb the fan-out."""
    requests = _requests()
    submits = 10

    def ack_latency(client: ServiceClient) -> float:
        samples = []
        ids = []
        for _ in range(submits):
            start = time.perf_counter()
            submitted = client.solve_batch_async(requests)
            samples.append(time.perf_counter() - start)
            ids.append(submitted["job_id"])
        for job_id in ids:  # drain so close() is quick
            client.wait_for_job(job_id, timeout_seconds=300.0)
        return statistics.median(samples)

    service = AllocationService(
        store=ShardedResultStore(num_shards=4),
        job_workers=1,
        wal=tmp_path / "single-wal",
    )
    single_server, single_thread = start_server(service, port=0)
    try:
        single_client = ServiceClient(
            single_server.url,
            timeout_seconds=120.0,
            retry_policy=RetryPolicy(retries=8, backoff_base_seconds=0.1),
        )
        warm = single_client.solve_batch_async(requests)
        single_client.wait_for_job(warm["job_id"], timeout_seconds=600.0)
        single_ack = ack_latency(single_client)
    finally:
        single_server.shutdown()
        single_thread.join(timeout=30.0)
        single_server.server_close()
        service.close()

    pool, router, server, thread, client = _topology(tmp_path / "pool", num_groups=4)
    try:
        warm = client.solve_batch_async(requests)
        client.wait_for_job(warm["job_id"], timeout_seconds=600.0)

        def measure():
            return ack_latency(client)

        pool_ack = benchmark.pedantic(measure, rounds=1, iterations=1)
    finally:
        _teardown(router, server, thread)

    ratio = pool_ack / single_ack
    print(
        f"\nasync submit ack: single-process {single_ack * 1000:.2f} ms, "
        f"4-worker pool {pool_ack * 1000:.2f} ms, ratio {ratio:.2f}x"
    )
    if PARALLEL_CAPABLE:
        assert ratio <= SUBMIT_LATENCY_RATIO_BOUND
