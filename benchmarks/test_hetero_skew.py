"""Heterogeneous class-skew sweep: exact vs heuristic on a mixed fleet.

The paper's Figures 3-5 sweep a *uniform* resource constraint and show the
GP+A heuristic tracking the exact MINLP solutions with occasional gaps where
packing gets tight.  This benchmark sweeps a *class skew* instead -- the
paper's alex-16 two-FPGA platform with the second die derated by 0-25
points -- and asserts the same qualitative relationship on heterogeneous
instances: both paths solve and validate at every point, the exact II is
never worse than the heuristic II, and the curves genuinely diverge at some
skew (the heuristic pays for the uneven fleet exactly as it pays for tight
homogeneous constraints).

Runs inside the ``hetero-smoke`` CI job under a wall-clock budget.
"""

import time

from repro.core.problem import AllocationProblem
from repro.core.objective import default_weights
from repro.core.solvers import solve
from repro.core.validate import validate_solution
from repro.minlp.binpacking import shared_packing_memos_clear
from repro.reporting.experiments import hetero_skew, skew_platform
from repro.workloads.alexnet import alexnet_fx16

SKEWS = (0.0, 5.0, 10.0, 15.0, 20.0, 25.0)


def test_hetero_skew_sweep(benchmark, save_artifact):
    figure = benchmark.pedantic(
        hetero_skew, kwargs={"skews": SKEWS}, rounds=1, iterations=1
    )
    save_artifact("hetero_skew.csv", figure.to_csv())
    save_artifact("hetero_skew.txt", figure.to_ascii())

    heuristic = dict(figure.get("gp+a").points)
    exact = dict(figure.get("minlp").points)
    assert set(heuristic) == set(exact) == set(SKEWS)

    # The exact optimum is never worse than the heuristic, at every skew.
    for skew in SKEWS:
        assert exact[skew] <= heuristic[skew] + 1e-9

    # Shrinking the derated die only degrades the achievable II.
    exact_curve = [exact[skew] for skew in SKEWS]
    assert exact_curve == sorted(exact_curve)

    # The solvers genuinely diverge on heterogeneous instances: at some skew
    # the heuristic strictly trails the exact optimum.
    assert any(heuristic[skew] > exact[skew] + 1e-6 for skew in SKEWS)


def test_hetero_points_solve_and_validate():
    """Every sweep point solves through gp+a AND minlp with validate passing,
    and the exact answers are proven (no packer-budget exhaustion)."""
    pipeline = alexnet_fx16()
    for skew in SKEWS:
        problem = AllocationProblem(
            pipeline=pipeline,
            platform=skew_platform(skew),
            weights=default_weights(pipeline.name, 2),
        )
        for method in ("gp+a", "minlp"):
            outcome = solve(problem, method=method)
            assert outcome.succeeded, (skew, method, outcome.details)
            report = validate_solution(outcome.solution)
            assert report.feasible, (skew, method, report.violations)
            if method == "minlp":
                assert outcome.status.value == "optimal"


def test_hetero_sweep_wall_clock_budget():
    """The whole cold-cache sweep fits in a tight CI budget."""
    shared_packing_memos_clear()
    start = time.perf_counter()
    hetero_skew(skews=SKEWS)
    assert time.perf_counter() - start < 10.0
