"""Scaling benchmark: GP+A on synthetic pipelines of growing size.

The paper motivates the heuristic with design-space exploration: the VGG
case (20 kernels, 8 FPGAs, 160 integer variables) is already prohibitive for
MINLP.  This benchmark measures how the heuristic scales as the pipeline
grows well beyond the paper's networks.
"""

import pytest

from repro.core.solvers import solve
from repro.core.problem import AllocationProblem
from repro.platform.presets import aws_f1
from repro.workloads.synthetic import cnn_like_pipeline


@pytest.mark.parametrize("num_conv", [8, 16, 24, 32])
def test_gp_a_scaling(benchmark, num_conv):
    pipeline = cnn_like_pipeline(num_conv=num_conv, num_pool=max(1, num_conv // 4), seed=11)
    problem = AllocationProblem(
        pipeline=pipeline,
        platform=aws_f1(num_fpgas=8, resource_limit_percent=85.0),
    )
    outcome = benchmark(lambda: solve(problem, method="gp+a"))
    if outcome.succeeded:
        assert outcome.solution.is_feasible()
        assert outcome.initiation_interval >= outcome.lower_bound - 1e-9


def test_exact_min_ii_on_medium_synthetic(benchmark):
    pipeline = cnn_like_pipeline(num_conv=8, num_pool=2, seed=11)
    problem = AllocationProblem(
        pipeline=pipeline,
        platform=aws_f1(num_fpgas=4, resource_limit_percent=85.0),
    )
    outcome = benchmark.pedantic(
        lambda: solve(problem, method="minlp"), rounds=1, iterations=1
    )
    heuristic = solve(problem, method="gp+a")
    if outcome.succeeded and heuristic.succeeded:
        assert outcome.initiation_interval <= heuristic.initiation_interval + 1e-9
