"""Performance-snapshot helper for the benchmark suite.

Every benchmark session writes a compact ``BENCH_<rev>.json`` snapshot under
``benchmarks/results/`` (wired up in ``benchmarks/conftest.py``), so the
performance trajectory of the repository can be tracked commit over commit.

Standalone usage::

    python benchmarks/export_bench.py run            # run benchmarks, snapshot
    python benchmarks/export_bench.py run -k vgg     # extra pytest args pass through
    python benchmarks/export_bench.py compare BENCH_a.json BENCH_b.json
    python benchmarks/export_bench.py gate           # CI perf-regression gate

``compare`` prints a per-benchmark new/old runtime ratio table (values below
1.0 mean the second snapshot is faster).  ``gate`` compares the current
revision's snapshot against the newest checked-in snapshot and fails (exit
1) when any pinned headline row regressed by more than
``GATE_THRESHOLD``x.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Iterable

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Stats kept per benchmark in the snapshot (seconds, except ``rounds``).
SNAPSHOT_STATS = ("min", "mean", "median", "stddev", "rounds")

#: Headline rows pinned by the CI perf gate (``gate`` subcommand): the
#: runtime table, the exact-path wall clock, the paper's heuristic budget,
#: the warm service replay and the warm replay through the worker pool.
#: Everything else is tracked but not gated -- micro-benchmarks are too
#: noisy on shared runners for a hard ratio check.
PINNED_BENCHMARKS = (
    "benchmarks/test_runtime_comparison.py::test_runtime_table",
    "benchmarks/test_runtime_comparison.py::test_exact_path_wall_clock_budget",
    "benchmarks/test_runtime_comparison.py::test_gp_a_runtime_within_paper_budget",
    "benchmarks/test_service_throughput.py::test_async_warm_replay_throughput",
    "benchmarks/test_service_pool_throughput.py::test_pool_warm_async_replay_throughput",
)

#: Maximum tolerated new/old mean-runtime ratio on a pinned row.
GATE_THRESHOLD = 1.3


def git_revision(short: bool = True) -> str:
    """Current git revision, or ``"unknown"`` outside a repository."""
    try:
        argument = ["rev-parse", "--short", "HEAD"] if short else ["rev-parse", "HEAD"]
        return (
            subprocess.run(
                ["git", *argument],
                cwd=REPO_ROOT,
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def snapshot_from_benchmarks(benchmarks: Iterable[Any], revision: str | None = None) -> dict:
    """Compact snapshot from pytest-benchmark metadata objects."""
    revision = revision or git_revision()
    entries: dict[str, dict[str, float]] = {}
    for benchmark in benchmarks:
        if getattr(benchmark, "has_error", False):
            continue
        data = benchmark.as_dict()
        stats = data.get("stats") or {}
        entries[data["fullname"]] = {
            key: stats[key] for key in SNAPSHOT_STATS if key in stats
        }
    return {
        "revision": revision,
        "unix_time": time.time(),
        "benchmarks": entries,
    }


def snapshot_path(revision: str | None = None) -> Path:
    return RESULTS_DIR / f"BENCH_{revision or git_revision()}.json"


def write_snapshot(snapshot: dict, path: Path | None = None) -> Path:
    """Write a snapshot to ``benchmarks/results/BENCH_<rev>.json``."""
    path = path or snapshot_path(snapshot.get("revision"))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return path


def load_snapshot(path: Path) -> dict:
    return json.loads(Path(path).read_text())


def compare_snapshots(old: dict, new: dict) -> list[tuple[str, float, float, float]]:
    """Per-benchmark (name, old mean, new mean, new/old ratio) rows."""
    rows: list[tuple[str, float, float, float]] = []
    old_benchmarks = old.get("benchmarks", {})
    for name, stats in sorted(new.get("benchmarks", {}).items()):
        base = old_benchmarks.get(name)
        if not base or "mean" not in base or "mean" not in stats:
            continue
        if base["mean"] <= 0:
            continue
        rows.append((name, base["mean"], stats["mean"], stats["mean"] / base["mean"]))
    return rows


def render_comparison(rows: list[tuple[str, float, float, float]]) -> str:
    if not rows:
        return "no common benchmarks between the two snapshots"
    width = max(len(name) for name, *_ in rows)
    lines = [f"{'benchmark':<{width}}  {'old (s)':>12}  {'new (s)':>12}  {'new/old':>8}"]
    for name, old_mean, new_mean, ratio in rows:
        lines.append(f"{name:<{width}}  {old_mean:>12.6f}  {new_mean:>12.6f}  {ratio:>8.3f}")
    return "\n".join(lines)


def previous_snapshot_path(current: Path | None = None) -> Path | None:
    """The newest snapshot on disk other than ``current`` (by recorded time).

    Ordering uses the ``unix_time`` stamped inside each snapshot, not file
    mtimes -- a fresh ``git clone`` resets every mtime to checkout time.
    """
    current = (current or snapshot_path()).resolve()
    newest: tuple[float, Path] | None = None
    for path in RESULTS_DIR.glob("BENCH_*.json"):
        if path.resolve() == current:
            continue
        try:
            stamp = float(load_snapshot(path).get("unix_time", 0.0))
        except (OSError, json.JSONDecodeError, TypeError, ValueError):
            continue
        if newest is None or stamp > newest[0]:
            newest = (stamp, path)
    return newest[1] if newest else None


def gate_snapshots(
    old: dict,
    new: dict,
    threshold: float = GATE_THRESHOLD,
    pins: Iterable[str] = PINNED_BENCHMARKS,
) -> tuple[list[tuple[str, float, float, float]], list[tuple[str, float, float, float]]]:
    """Split the pinned comparison rows into (checked, regressed)."""
    pinned = set(pins)
    checked = [row for row in compare_snapshots(old, new) if row[0] in pinned]
    regressed = [row for row in checked if row[3] > threshold]
    return checked, regressed


def _gate(new_path: Path | None, old_path: Path | None, threshold: float) -> int:
    new_path = new_path or snapshot_path()
    if not new_path.exists():
        print(f"gate: no snapshot for the current revision at {new_path}", file=sys.stderr)
        print("gate: run the benchmark suite first (export_bench.py run)", file=sys.stderr)
        return 2
    old_path = old_path or previous_snapshot_path(new_path)
    if old_path is None:
        print("gate: no previous snapshot to compare against; passing")
        return 0
    try:
        old, new = load_snapshot(old_path), load_snapshot(new_path)
    except (OSError, json.JSONDecodeError) as error:
        print(f"gate: cannot read snapshot: {error}", file=sys.stderr)
        return 2
    checked, regressed = gate_snapshots(old, new, threshold)
    if not checked:
        print(f"gate: no pinned rows shared with {old_path.name}; passing")
        return 0
    print(f"gate: {new_path.name} vs {old_path.name} (threshold {threshold:.2f}x)")
    print(render_comparison(checked))
    if regressed:
        names = ", ".join(name for name, *_ in regressed)
        print(f"gate: FAIL -- pinned rows regressed beyond {threshold:.2f}x: {names}")
        return 1
    print("gate: OK")
    return 0


def _run(extra_args: list[str]) -> int:
    """Run the benchmark suite and leave the snapshot writing to conftest."""
    command = [
        sys.executable,
        "-m",
        "pytest",
        str(Path(__file__).parent),
        "--benchmark-only",
        "-q",
        *extra_args,
    ]
    completed = subprocess.run(command, cwd=REPO_ROOT)
    if completed.returncode == 0:
        print(f"snapshot: {snapshot_path()}")
    return completed.returncode


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("run", help="run the benchmark suite and write a snapshot")
    compare_parser = commands.add_parser("compare", help="compare two snapshots")
    compare_parser.add_argument("old", type=Path)
    compare_parser.add_argument("new", type=Path)
    gate_parser = commands.add_parser(
        "gate", help="fail when a pinned row regressed vs the previous snapshot"
    )
    gate_parser.add_argument("--new", type=Path, default=None)
    gate_parser.add_argument("--old", type=Path, default=None)
    gate_parser.add_argument("--threshold", type=float, default=GATE_THRESHOLD)
    # parse_known_args so pytest flags (-k, -x, ...) pass through untouched;
    # argparse.REMAINDER cannot capture leading optionals inside subparsers.
    args, passthrough = parser.parse_known_args(argv)
    if args.command == "run":
        return _run(passthrough)
    if args.command == "gate":
        if passthrough:
            parser.error(f"unrecognized arguments: {' '.join(passthrough)}")
        return _gate(args.new, args.old, args.threshold)
    if passthrough:
        parser.error(f"unrecognized arguments: {' '.join(passthrough)}")
    try:
        old, new = load_snapshot(args.old), load_snapshot(args.new)
    except (OSError, json.JSONDecodeError) as error:
        print(f"cannot read snapshot: {error}", file=sys.stderr)
        return 2
    print(render_comparison(compare_snapshots(old, new)))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # output piped into head/less and closed early
        sys.exit(0)
