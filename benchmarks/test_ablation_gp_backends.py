"""Ablation: GP-step backends (exact bisection vs SLSQP vs barrier IPM).

DESIGN.md calls out the choice of GP backend as a design decision worth
ablating: all three must return the same relaxed optimum, and the bisection
specialisation should be the fastest (it is the heuristic's default).
"""

import pytest

from repro.core.gp_step import solve_gp_step
from repro.reporting.experiments import case_study

CASES = ("alex-16", "alex-32", "vgg-16")


@pytest.mark.parametrize("backend", ["bisection", "slsqp", "interior-point"])
@pytest.mark.parametrize("case", CASES)
def test_gp_backend_runtime(benchmark, case, backend):
    problem = case_study(case, resource_limit_percent=70.0)
    result = benchmark(solve_gp_step, problem, backend)
    reference = solve_gp_step(problem, backend="bisection")
    assert result.ii_hat == pytest.approx(reference.ii_hat, rel=1e-3)


def test_backends_agree_across_constraints():
    for case in CASES:
        for constraint in (60.0, 75.0, 90.0):
            problem = case_study(case, resource_limit_percent=constraint)
            bisection = solve_gp_step(problem, backend="bisection")
            slsqp = solve_gp_step(problem, backend="slsqp")
            assert bisection.ii_hat == pytest.approx(slsqp.ii_hat, rel=1e-3)
