"""Table 2: AlexNet kernel characterisation (Alex-32 and Alex-16).

The paper's Table 2 is input data measured on AWS F1; the benchmark checks
that the built-in workloads regenerate it exactly (it is the instance every
other experiment consumes) and also exercises the analytic HLS cost model
that substitutes for the hardware characterisation runs.
"""

import pytest

from repro.hls import FIXED16, characterize_alexnet
from repro.reporting.experiments import table2
from repro.workloads.alexnet import ALEX16_EXPECTED_SUM, ALEX32_EXPECTED_SUM, alexnet_fp32, alexnet_fx16


def test_table2_regeneration(benchmark, save_artifact):
    table = benchmark(table2)
    save_artifact("table2.txt", table.render())

    alex32, alex16 = alexnet_fp32(), alexnet_fx16()
    assert alex32.total_resources().dsp == pytest.approx(ALEX32_EXPECTED_SUM["dsp"], abs=0.01)
    assert alex32.total_resources().bram == pytest.approx(ALEX32_EXPECTED_SUM["bram"], abs=0.01)
    assert alex16.total_resources().dsp == pytest.approx(ALEX16_EXPECTED_SUM["dsp"], abs=0.01)
    assert alex16.total_wcet_ms() == pytest.approx(ALEX16_EXPECTED_SUM["wcet"], abs=0.01)


def test_table2_synthetic_characterization(benchmark, save_artifact):
    """The HLS cost model's synthetic Table 2 equivalent (shape, not values)."""
    pipeline = benchmark(characterize_alexnet, FIXED16)
    save_artifact("table2_modeled.txt", pipeline.describe())
    # Same structural properties as the measured table: conv layers dominate
    # DSP, pooling uses none, and the total exceeds no single FPGA.
    assert pipeline["POOL1"].resources.dsp == 0.0
    conv_dsp = sum(pipeline[name].resources.dsp for name in pipeline.kernel_names if name.startswith("CONV"))
    assert conv_dsp > 0.9 * pipeline.total_resources().dsp
