"""SLSQP backend for geometric programs.

Solves the log-space convex program with :func:`scipy.optimize.minimize`
(SLSQP), providing analytic gradients for both objective and constraints.
Because the log-space problem is convex, any KKT point SLSQP finds is a
global optimum of the original GP.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from .errors import InfeasibleError, SolverError
from .logspace import LogSpaceProgram
from .model import GPModel, GPSolution, SolveStatus
from .logspace import compile_to_logspace

#: Slack added to constraint functions handed to SLSQP; keeps the active set
#: numerically well behaved without changing the optimum materially.
_CONSTRAINT_TOLERANCE = 1e-9


def _find_feasible_start(program: LogSpaceProgram, max_rounds: int = 60) -> np.ndarray:
    """Find a point with all constraints <= 0 via a phase-I minimisation.

    Minimises ``max_i f_i(y)`` (smoothed by a softmax-weighted gradient step
    through SLSQP on an epigraph formulation).  The allocation GPs used in
    this package are always strictly feasible when the aggregate resources
    suffice for one CU per kernel, so this usually converges in a handful of
    iterations.
    """
    n = program.num_variables
    y0 = np.zeros(n)
    if program.is_feasible(y0):
        return y0

    # Epigraph phase-I problem: minimise t subject to f_i(y) <= t.
    # t is bounded below at a comfortably negative value and the log-space
    # variables are boxed so the search cannot run off to infinity (any point
    # with t < 0 is already strictly feasible, which is all we need).
    def objective(z: np.ndarray) -> float:
        return z[-1]

    def objective_grad(z: np.ndarray) -> np.ndarray:
        grad = np.zeros(n + 1)
        grad[-1] = 1.0
        return grad

    constraints = []
    for function in program.constraints:
        def make(fun):
            return {
                "type": "ineq",
                "fun": lambda z, f=fun: z[-1] - f.value(z[:n]),
                "jac": lambda z, f=fun: np.concatenate([-f.gradient(z[:n]), [1.0]]),
            }

        constraints.append(make(function))

    z0 = np.concatenate([y0, [program.max_constraint_value(y0) + 1.0]])
    bounds = [(-40.0, 40.0)] * n + [(-1.0, None)]
    result = optimize.minimize(
        objective,
        z0,
        jac=objective_grad,
        constraints=constraints,
        bounds=bounds,
        method="SLSQP",
        options={"maxiter": 200 * max(1, max_rounds // 10), "ftol": 1e-12},
    )
    candidate = result.x[:n]
    if program.max_constraint_value(candidate) <= 1e-7:
        return candidate
    raise InfeasibleError("phase-I could not find a feasible point for the GP")


def solve_slsqp(
    model: GPModel,
    initial_values: dict[str, float] | None = None,
    max_iterations: int = 500,
    tolerance: float = 1e-10,
) -> GPSolution:
    """Solve a GP with scipy's SLSQP on the log-space convex program.

    Parameters
    ----------
    model:
        The geometric program to solve.
    initial_values:
        Optional starting point (positive variable values).  If omitted or
        infeasible, a phase-I search provides the starting point.
    max_iterations:
        SLSQP iteration cap.
    tolerance:
        SLSQP ``ftol``.
    """
    program = compile_to_logspace(model)
    n = program.num_variables

    if initial_values is not None:
        try:
            y0 = program.point_from_values(initial_values)
        except (KeyError, ValueError):
            y0 = np.zeros(n)
    else:
        y0 = np.zeros(n)
    if not program.is_feasible(y0, tolerance=1e-6):
        try:
            y0 = _find_feasible_start(program)
        except InfeasibleError:
            return GPSolution(
                status=SolveStatus.INFEASIBLE,
                objective=float("inf"),
                values={},
                backend="slsqp",
            )

    constraints = [
        {
            "type": "ineq",
            "fun": lambda y, f=function: -(f.value(y)) + _CONSTRAINT_TOLERANCE,
            "jac": lambda y, f=function: -f.gradient(y),
        }
        for function in program.constraints
    ]

    result = optimize.minimize(
        lambda y: program.objective.value(y),
        y0,
        jac=lambda y: program.objective.gradient(y),
        constraints=constraints,
        method="SLSQP",
        options={"maxiter": max_iterations, "ftol": tolerance},
    )

    y = result.x
    # SLSQP can wander slightly infeasible; nudge back by checking the result.
    if program.max_constraint_value(y) > 1e-5:
        if program.is_feasible(y0, tolerance=1e-7):
            y = y0
        else:
            raise SolverError(f"SLSQP returned an infeasible point for model {model.name!r}")

    values = program.values_from_point(y)
    objective = model.objective.evaluate(values)
    return GPSolution(
        status=SolveStatus.OPTIMAL,
        objective=float(objective),
        values=values,
        iterations=int(result.get("nit", 0)) if isinstance(result, dict) else int(result.nit),
        backend="slsqp",
    )
