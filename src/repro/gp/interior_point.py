"""Custom log-barrier interior-point backend for geometric programs.

This is a from-scratch implementation of the standard barrier method for the
log-space convex form of a GP:

    minimize  t * f0(y) - sum_i log(-f_i(y))

for an increasing sequence of ``t``, each centering step solved by damped
Newton with analytic gradients and Hessians of the log-sum-exp functions.
It exists both as an independent cross-check of the SLSQP backend and as the
"efficient GP solver" substrate that the paper links its allocator to
(GPkit + a commercial solver in the original work).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import InfeasibleError, SolverError
from .logspace import LogSpaceProgram, compile_to_logspace
from .model import GPModel, GPSolution, SolveStatus
from .slsqp_backend import _find_feasible_start


@dataclass(frozen=True)
class BarrierSettings:
    """Tuning knobs of the barrier method."""

    initial_t: float = 1.0
    mu: float = 12.0
    barrier_tolerance: float = 1e-8
    newton_tolerance: float = 1e-9
    max_newton_steps: int = 80
    max_outer_iterations: int = 60
    line_search_beta: float = 0.5
    line_search_alpha: float = 0.25


def _barrier_value(program: LogSpaceProgram, y: np.ndarray, t: float) -> float:
    value = t * program.objective.value(y)
    for constraint in program.constraints:
        fy = constraint.value(y)
        if fy >= 0:
            return np.inf
        value -= np.log(-fy)
    return value


def _barrier_derivatives(
    program: LogSpaceProgram, y: np.ndarray, t: float
) -> tuple[np.ndarray, np.ndarray]:
    gradient = t * program.objective.gradient(y)
    hessian = t * program.objective.hessian(y)
    for constraint in program.constraints:
        fy = constraint.value(y)
        gy = constraint.gradient(y)
        hy = constraint.hessian(y)
        gradient += gy / (-fy)
        hessian += hy / (-fy) + np.outer(gy, gy) / (fy * fy)
    return gradient, hessian


def _newton_centering(
    program: LogSpaceProgram, y: np.ndarray, t: float, settings: BarrierSettings
) -> tuple[np.ndarray, int]:
    """Damped Newton minimisation of the barrier-augmented objective."""
    iterations = 0
    for _ in range(settings.max_newton_steps):
        iterations += 1
        gradient, hessian = _barrier_derivatives(program, y, t)
        # Regularise mildly: the LSE Hessians are PSD but can be singular.
        regularized = hessian + 1e-10 * np.eye(len(y))
        try:
            step = np.linalg.solve(regularized, -gradient)
        except np.linalg.LinAlgError:
            step = -gradient
        decrement = float(-gradient @ step)
        if decrement / 2.0 <= settings.newton_tolerance:
            break
        # Backtracking line search keeping strict feasibility.
        step_size = 1.0
        current = _barrier_value(program, y, t)
        while step_size > 1e-12:
            candidate = y + step_size * step
            value = _barrier_value(program, candidate, t)
            if value < current + settings.line_search_alpha * step_size * (gradient @ step):
                y = candidate
                break
            step_size *= settings.line_search_beta
        else:
            break
    return y, iterations


def solve_interior_point(
    model: GPModel,
    initial_values: dict[str, float] | None = None,
    settings: BarrierSettings = BarrierSettings(),
) -> GPSolution:
    """Solve a GP with the custom barrier interior-point method."""
    program = compile_to_logspace(model)
    n = program.num_variables

    if initial_values is not None:
        try:
            y = program.point_from_values(initial_values)
        except (KeyError, ValueError):
            y = np.zeros(n)
    else:
        y = np.zeros(n)
    if program.max_constraint_value(y) >= -1e-12:
        try:
            y = _find_feasible_start(program)
        except InfeasibleError:
            return GPSolution(
                status=SolveStatus.INFEASIBLE,
                objective=float("inf"),
                values={},
                backend="interior-point",
            )
        # The barrier needs *strict* feasibility; pull slightly inside if needed.
        if program.max_constraint_value(y) > -1e-10:
            y = _pull_strictly_inside(program, y)

    t = settings.initial_t
    total_newton = 0
    num_constraints = max(1, len(program.constraints))
    for _ in range(settings.max_outer_iterations):
        y, steps = _newton_centering(program, y, t, settings)
        total_newton += steps
        if num_constraints / t < settings.barrier_tolerance:
            break
        t *= settings.mu

    if not program.is_feasible(y, tolerance=1e-6):
        raise SolverError("interior-point method left the feasible region")

    values = program.values_from_point(y)
    objective = model.objective.evaluate(values)
    return GPSolution(
        status=SolveStatus.OPTIMAL,
        objective=float(objective),
        values=values,
        iterations=total_newton,
        backend="interior-point",
    )


def _pull_strictly_inside(program: LogSpaceProgram, y: np.ndarray, shrink: float = 1e-6) -> np.ndarray:
    """Nudge a boundary-feasible point strictly inside the feasible region.

    Moves along the negative gradient of the most violated (closest-to-zero)
    constraint; for the allocation GPs this is always possible because the
    constraints have non-trivial slack directions (increase II, decrease N).
    """
    candidate = y.copy()
    for _ in range(50):
        worst_value = -np.inf
        worst_grad = None
        for constraint in program.constraints:
            value = constraint.value(candidate)
            if value > worst_value:
                worst_value = value
                worst_grad = constraint.gradient(candidate)
        if worst_value < -1e-9:
            return candidate
        if worst_grad is None or np.allclose(worst_grad, 0.0):
            raise InfeasibleError("cannot find a strictly feasible point")
        candidate = candidate - shrink * worst_grad / max(np.linalg.norm(worst_grad), 1e-12)
        shrink *= 2.0
    raise InfeasibleError("cannot find a strictly feasible point")
