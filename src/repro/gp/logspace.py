"""Log-space convexification of geometric programs.

With the change of variables ``y = log x`` a posynomial
``g(x) = sum_i c_i * prod_j x_j^{a_ij}`` becomes
``log g = logsumexp(A y + b)`` with ``b_i = log c_i``, which is convex in
``y``.  A GP in standard form therefore becomes the convex problem

    minimize    logsumexp(A0 y + b0)
    subject to  logsumexp(Ai y + bi) <= 0      for every constraint i.

This module compiles a :class:`~repro.gp.model.GPModel` into a vectorised
representation with value / gradient / Hessian callbacks that both solver
backends share.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .expressions import Posynomial
from .model import GPModel


@dataclass(frozen=True)
class LogSumExpFunction:
    """The convex function ``y -> logsumexp(A y + b)`` with derivatives."""

    matrix: np.ndarray  # shape (terms, variables)
    offset: np.ndarray  # shape (terms,)

    def value(self, y: np.ndarray) -> float:
        z = self.matrix @ y + self.offset
        zmax = float(np.max(z))
        return zmax + float(np.log(np.sum(np.exp(z - zmax))))

    def softmax(self, y: np.ndarray) -> np.ndarray:
        z = self.matrix @ y + self.offset
        z = z - np.max(z)
        weights = np.exp(z)
        return weights / np.sum(weights)

    def gradient(self, y: np.ndarray) -> np.ndarray:
        sigma = self.softmax(y)
        return self.matrix.T @ sigma

    def hessian(self, y: np.ndarray) -> np.ndarray:
        sigma = self.softmax(y)
        weighted = self.matrix * sigma[:, None]
        mean = self.matrix.T @ sigma
        return self.matrix.T @ weighted - np.outer(mean, mean)


@dataclass(frozen=True)
class LogSpaceProgram:
    """A GP compiled to log-space: objective + inequality functions <= 0."""

    variable_names: tuple[str, ...]
    objective: LogSumExpFunction
    constraints: tuple[LogSumExpFunction, ...]

    @property
    def num_variables(self) -> int:
        return len(self.variable_names)

    def point_from_values(self, values: dict[str, float]) -> np.ndarray:
        """Convert a ``{name: x}`` mapping to a log-space vector ``y``."""
        missing = [name for name in self.variable_names if name not in values]
        if missing:
            raise KeyError(f"missing values for variables: {missing}")
        return np.array([np.log(values[name]) for name in self.variable_names])

    def values_from_point(self, y: np.ndarray) -> dict[str, float]:
        """Convert a log-space vector back to positive variable values."""
        return {name: float(np.exp(y[i])) for i, name in enumerate(self.variable_names)}

    def max_constraint_value(self, y: np.ndarray) -> float:
        """Largest constraint value at ``y`` (<= 0 means feasible)."""
        if not self.constraints:
            return -np.inf
        return max(constraint.value(y) for constraint in self.constraints)

    def is_feasible(self, y: np.ndarray, tolerance: float = 1e-7) -> bool:
        return self.max_constraint_value(y) <= tolerance


def _compile_posynomial(posynomial: Posynomial, names: tuple[str, ...]) -> LogSumExpFunction:
    index = {name: i for i, name in enumerate(names)}
    matrix = np.zeros((len(posynomial.monomials), len(names)))
    offset = np.zeros(len(posynomial.monomials))
    for row, monomial in enumerate(posynomial.monomials):
        offset[row] = np.log(monomial.coefficient)
        for name, power in monomial.exponents.items():
            matrix[row, index[name]] = power
    return LogSumExpFunction(matrix=matrix, offset=offset)


def compile_to_logspace(model: GPModel) -> LogSpaceProgram:
    """Compile a validated GP model into its log-space convex form."""
    model.validate()
    names = model.variable_names
    objective = _compile_posynomial(model.objective, names)
    constraints = tuple(
        _compile_posynomial(constraint.normalized, names) for constraint in model.constraints
    )
    return LogSpaceProgram(variable_names=names, objective=objective, constraints=constraints)
