"""Geometric programming substrate.

The paper's heuristic links its allocator to "an existing efficient GP
solver" (GPkit).  No GP library is available offline, so this package is a
self-contained replacement: a monomial/posynomial modelling layer, log-space
convexification, two solver backends (scipy SLSQP and a from-scratch barrier
interior-point method), and an exact bisection solver specialised for the
min-max-latency GPs produced by the allocation problem.
"""

from .errors import GPError, InfeasibleError, ModelError, NotMonomialError, SolverError
from .expressions import (
    Monomial,
    Posynomial,
    PosynomialConstraint,
    Variable,
    as_monomial,
    as_posynomial,
)
from .interior_point import BarrierSettings, solve_interior_point
from .logspace import LogSpaceProgram, LogSumExpFunction, compile_to_logspace
from .minmax import CapacityConstraint, MinMaxLatencyProblem, VectorizedMinMaxProblem
from .model import GPModel, GPSolution, SolveStatus
from .slsqp_backend import solve_slsqp

#: Registry of general-purpose GP backends by name.
BACKENDS = {
    "slsqp": solve_slsqp,
    "interior-point": solve_interior_point,
}


def solve(model: GPModel, backend: str = "slsqp", **kwargs) -> GPSolution:
    """Solve a geometric program with the named backend.

    Parameters
    ----------
    model:
        The GP to solve.
    backend:
        ``"slsqp"`` (default) or ``"interior-point"``.
    kwargs:
        Passed through to the backend (e.g. ``initial_values``).
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown GP backend {backend!r}; options: {sorted(BACKENDS)}")
    return BACKENDS[backend](model, **kwargs)


__all__ = [
    "BACKENDS",
    "BarrierSettings",
    "CapacityConstraint",
    "GPError",
    "GPModel",
    "GPSolution",
    "InfeasibleError",
    "LogSpaceProgram",
    "LogSumExpFunction",
    "MinMaxLatencyProblem",
    "VectorizedMinMaxProblem",
    "ModelError",
    "Monomial",
    "NotMonomialError",
    "Posynomial",
    "PosynomialConstraint",
    "SolveStatus",
    "SolverError",
    "Variable",
    "as_monomial",
    "as_posynomial",
    "compile_to_logspace",
    "solve",
    "solve_interior_point",
    "solve_slsqp",
]
