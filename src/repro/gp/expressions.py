"""Monomial / posynomial expression algebra for geometric programming.

A *monomial* is ``c * x1^a1 * x2^a2 * ...`` with ``c > 0`` and real exponents.
A *posynomial* is a sum of monomials.  Geometric programs minimise a
posynomial subject to posynomial <= monomial constraints; after the
variable change ``y = log x`` they become convex.

The algebra here supports the natural Python operators so that models read
like the paper's equations, e.g.::

    ii, n = Variable("II"), Variable("N_conv1")
    constraint = wcet / n <= ii          # eq. (15)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Union

from .errors import NotMonomialError

Number = Union[int, float]


@dataclass(frozen=True)
class Variable:
    """A strictly positive decision variable of a geometric program."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")

    # Any arithmetic on a Variable promotes it to a Monomial first.
    def _as_monomial(self) -> "Monomial":
        return Monomial(1.0, {self.name: 1.0})

    def __mul__(self, other: "ExpressionLike") -> "Monomial | Posynomial":
        return self._as_monomial() * other

    __rmul__ = __mul__

    def __truediv__(self, other: "ExpressionLike") -> "Monomial":
        return self._as_monomial() / other

    def __rtruediv__(self, other: "ExpressionLike") -> "Monomial | Posynomial":
        return as_posynomial(other) / self._as_monomial()

    def __pow__(self, power: Number) -> "Monomial":
        return self._as_monomial() ** power

    def __add__(self, other: "ExpressionLike") -> "Posynomial":
        return self._as_monomial() + other

    __radd__ = __add__

    def __le__(self, other: "ExpressionLike") -> "PosynomialConstraint":
        return self._as_monomial() <= other

    def __ge__(self, other: "ExpressionLike") -> "PosynomialConstraint":
        return self._as_monomial() >= other

    def __hash__(self) -> int:
        return hash(("Variable", self.name))

    def __str__(self) -> str:
        return self.name


class Monomial:
    """A positive coefficient times a product of variable powers."""

    __slots__ = ("coefficient", "exponents")

    def __init__(self, coefficient: Number, exponents: Mapping[str, float] | None = None):
        coefficient = float(coefficient)
        if not math.isfinite(coefficient) or coefficient <= 0:
            raise ValueError(f"monomial coefficient must be finite and > 0, got {coefficient}")
        cleaned = {
            name: float(power)
            for name, power in (exponents or {}).items()
            if abs(power) > 0.0
        }
        object.__setattr__(self, "coefficient", coefficient)
        object.__setattr__(self, "exponents", cleaned)

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover - immutability guard
        raise AttributeError("Monomial is immutable")

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def variables(self) -> frozenset[str]:
        return frozenset(self.exponents)

    def is_constant(self) -> bool:
        return not self.exponents

    def evaluate(self, values: Mapping[str, float]) -> float:
        """Evaluate at the given (positive) variable values."""
        result = self.coefficient
        for name, power in self.exponents.items():
            value = values[name]
            if value <= 0:
                raise ValueError(f"variable {name!r} must be positive, got {value}")
            result *= value**power
        return result

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    def __mul__(self, other: "ExpressionLike") -> "Monomial | Posynomial":
        if isinstance(other, Variable):
            other = other._as_monomial()
        if isinstance(other, (int, float)):
            return Monomial(self.coefficient * other, self.exponents)
        if isinstance(other, Monomial):
            exponents = dict(self.exponents)
            for name, power in other.exponents.items():
                exponents[name] = exponents.get(name, 0.0) + power
            return Monomial(self.coefficient * other.coefficient, exponents)
        if isinstance(other, Posynomial):
            return other * self
        return NotImplemented

    __rmul__ = __mul__

    def __truediv__(self, other: "ExpressionLike") -> "Monomial":
        if isinstance(other, Variable):
            other = other._as_monomial()
        if isinstance(other, (int, float)):
            return Monomial(self.coefficient / other, self.exponents)
        if isinstance(other, Monomial):
            return self * other**-1
        raise NotMonomialError("can only divide a monomial by a monomial or a scalar")

    def __rtruediv__(self, other: "ExpressionLike") -> "Monomial | Posynomial":
        return as_posynomial(other) / self

    def __pow__(self, power: Number) -> "Monomial":
        power = float(power)
        return Monomial(
            self.coefficient**power,
            {name: exponent * power for name, exponent in self.exponents.items()},
        )

    def __add__(self, other: "ExpressionLike") -> "Posynomial":
        return Posynomial((self,)) + other

    __radd__ = __add__

    def __le__(self, other: "ExpressionLike") -> "PosynomialConstraint":
        return PosynomialConstraint(as_posynomial(self), as_monomial(other))

    def __ge__(self, other: "ExpressionLike") -> "PosynomialConstraint":
        return PosynomialConstraint(as_posynomial(other), as_monomial(self))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Monomial):
            return NotImplemented
        return (
            math.isclose(self.coefficient, other.coefficient, rel_tol=1e-12, abs_tol=1e-12)
            and self.exponents == other.exponents
        )

    def __hash__(self) -> int:
        return hash((round(self.coefficient, 12), tuple(sorted(self.exponents.items()))))

    def __str__(self) -> str:
        parts = [f"{self.coefficient:g}"]
        for name, power in sorted(self.exponents.items()):
            if power == 1:
                parts.append(name)
            else:
                parts.append(f"{name}^{power:g}")
        return "*".join(parts)

    def __repr__(self) -> str:
        return f"Monomial({self})"


class Posynomial:
    """A sum of monomials."""

    __slots__ = ("monomials",)

    def __init__(self, monomials: Iterable[Monomial]):
        collected = tuple(monomials)
        if not collected:
            raise ValueError("a posynomial needs at least one monomial")
        if not all(isinstance(m, Monomial) for m in collected):
            raise TypeError("all terms of a posynomial must be monomials")
        object.__setattr__(self, "monomials", _merge_terms(collected))

    def __setattr__(self, name: str, value: object) -> None:  # pragma: no cover - immutability guard
        raise AttributeError("Posynomial is immutable")

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def variables(self) -> frozenset[str]:
        names: set[str] = set()
        for monomial in self.monomials:
            names |= monomial.variables
        return frozenset(names)

    def is_monomial(self) -> bool:
        return len(self.monomials) == 1

    def as_monomial(self) -> Monomial:
        if not self.is_monomial():
            raise NotMonomialError(f"{self} is not a monomial")
        return self.monomials[0]

    def evaluate(self, values: Mapping[str, float]) -> float:
        return sum(monomial.evaluate(values) for monomial in self.monomials)

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    def __add__(self, other: "ExpressionLike") -> "Posynomial":
        other_posy = as_posynomial(other)
        return Posynomial(self.monomials + other_posy.monomials)

    __radd__ = __add__

    def __mul__(self, other: "ExpressionLike") -> "Posynomial":
        if isinstance(other, Variable):
            other = other._as_monomial()
        if isinstance(other, (int, float)):
            other = Monomial(other)
        if isinstance(other, Monomial):
            return Posynomial(tuple(m * other for m in self.monomials))
        if isinstance(other, Posynomial):
            return Posynomial(tuple(a * b for a in self.monomials for b in other.monomials))
        return NotImplemented

    __rmul__ = __mul__

    def __truediv__(self, other: "ExpressionLike") -> "Posynomial":
        divisor = as_monomial(other)
        return Posynomial(tuple(m / divisor for m in self.monomials))

    def __le__(self, other: "ExpressionLike") -> "PosynomialConstraint":
        return PosynomialConstraint(self, as_monomial(other))

    def __ge__(self, other: "ExpressionLike") -> "PosynomialConstraint":
        return PosynomialConstraint(as_posynomial(other), self.as_monomial())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Posynomial):
            return NotImplemented
        return set(self.monomials) == set(other.monomials)

    def __hash__(self) -> int:
        return hash(frozenset(self.monomials))

    def __str__(self) -> str:
        return " + ".join(str(m) for m in self.monomials)

    def __repr__(self) -> str:
        return f"Posynomial({self})"


@dataclass(frozen=True)
class PosynomialConstraint:
    """A GP-compatible constraint ``posynomial <= monomial``.

    Stored in the normalised form ``posynomial / monomial <= 1``.
    """

    lhs: Posynomial
    rhs: Monomial

    @property
    def normalized(self) -> Posynomial:
        """Return ``lhs / rhs``, i.e. the posynomial that must be <= 1."""
        return self.lhs / self.rhs

    def is_satisfied(self, values: Mapping[str, float], tolerance: float = 1e-6) -> bool:
        """Check the constraint at a point (with relative tolerance)."""
        return self.normalized.evaluate(values) <= 1.0 + tolerance

    def violation(self, values: Mapping[str, float]) -> float:
        """Amount by which the normalised constraint exceeds 1 (0 if satisfied)."""
        return max(0.0, self.normalized.evaluate(values) - 1.0)

    def __str__(self) -> str:
        return f"{self.lhs} <= {self.rhs}"


ExpressionLike = Union[Number, Variable, Monomial, Posynomial]


def as_monomial(value: ExpressionLike) -> Monomial:
    """Coerce a number, variable or single-term posynomial to a Monomial."""
    if isinstance(value, Monomial):
        return value
    if isinstance(value, Variable):
        return value._as_monomial()
    if isinstance(value, (int, float)):
        return Monomial(value)
    if isinstance(value, Posynomial):
        return value.as_monomial()
    raise TypeError(f"cannot interpret {value!r} as a monomial")


def as_posynomial(value: ExpressionLike) -> Posynomial:
    """Coerce a number, variable or monomial to a Posynomial."""
    if isinstance(value, Posynomial):
        return value
    if isinstance(value, (int, float, Variable, Monomial)):
        return Posynomial((as_monomial(value),))
    raise TypeError(f"cannot interpret {value!r} as a posynomial")


def _merge_terms(monomials: tuple[Monomial, ...]) -> tuple[Monomial, ...]:
    """Combine monomials with identical exponents by summing coefficients."""
    merged: dict[tuple[tuple[str, float], ...], float] = {}
    order: list[tuple[tuple[str, float], ...]] = []
    for monomial in monomials:
        key = tuple(sorted(monomial.exponents.items()))
        if key not in merged:
            merged[key] = 0.0
            order.append(key)
        merged[key] += monomial.coefficient
    return tuple(Monomial(merged[key], dict(key)) for key in order)
