"""Exceptions raised by the geometric programming package."""

from __future__ import annotations


class GPError(Exception):
    """Base class for all geometric-programming errors."""


class NotMonomialError(GPError):
    """Raised when a monomial was required but a general posynomial was given."""


class ModelError(GPError):
    """Raised when a model is structurally invalid (e.g. no objective)."""


class InfeasibleError(GPError):
    """Raised when the solver proves (or strongly suspects) infeasibility."""


class SolverError(GPError):
    """Raised when a backend fails to converge for numerical reasons."""
