"""Geometric program model and solution containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping

from .errors import ModelError
from .expressions import (
    ExpressionLike,
    Monomial,
    Posynomial,
    PosynomialConstraint,
    Variable,
    as_monomial,
    as_posynomial,
)


class SolveStatus(Enum):
    """Outcome of a GP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    FAILED = "failed"


@dataclass(frozen=True)
class GPSolution:
    """Result of solving a geometric program.

    Attributes
    ----------
    status:
        Solve outcome.
    objective:
        Optimal objective value (``float('inf')`` if not optimal).
    values:
        Optimal variable values keyed by variable name.
    iterations:
        Backend iteration count (0 if unknown).
    backend:
        Name of the backend that produced the solution.
    """

    status: SolveStatus
    objective: float
    values: Mapping[str, float]
    iterations: int = 0
    backend: str = ""

    @property
    def is_optimal(self) -> bool:
        return self.status is SolveStatus.OPTIMAL

    def __getitem__(self, name: str) -> float:
        return self.values[name]


@dataclass
class GPModel:
    """A geometric program in standard form.

    ``minimize f0(x)`` subject to ``fi(x) <= gi(x)`` where ``f`` are
    posynomials and ``g`` are monomials, all variables strictly positive.

    Example
    -------
    >>> ii = Variable("II")
    >>> n = Variable("N")
    >>> model = GPModel(name="toy")
    >>> model.set_objective(ii)
    >>> _ = model.add_constraint(10.0 / n <= ii)
    >>> _ = model.add_constraint(0.2 * n <= 1.0)
    """

    name: str = "gp"
    _objective: Posynomial | None = field(default=None, repr=False)
    _constraints: list[PosynomialConstraint] = field(default_factory=list, repr=False)
    _variables: dict[str, Variable] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------ #
    # Building
    # ------------------------------------------------------------------ #
    def new_variable(self, name: str) -> Variable:
        """Create (or return the existing) variable with the given name."""
        if name not in self._variables:
            self._variables[name] = Variable(name)
        return self._variables[name]

    def set_objective(self, objective: ExpressionLike) -> None:
        """Set the posynomial objective to minimise."""
        posy = as_posynomial(objective)
        self._objective = posy
        self._register(posy.variables)

    def add_constraint(self, constraint: PosynomialConstraint) -> PosynomialConstraint:
        """Add a ``posynomial <= monomial`` constraint."""
        if not isinstance(constraint, PosynomialConstraint):
            raise TypeError(
                "add_constraint expects a PosynomialConstraint (use '<=' between expressions)"
            )
        self._constraints.append(constraint)
        self._register(constraint.lhs.variables | constraint.rhs.variables)
        return constraint

    def add_leq(self, lhs: ExpressionLike, rhs: ExpressionLike) -> PosynomialConstraint:
        """Convenience wrapper: add ``lhs <= rhs``."""
        return self.add_constraint(as_posynomial(lhs) <= as_monomial(rhs))

    def add_lower_bound(self, variable: Variable | str, bound: float) -> PosynomialConstraint:
        """Add ``variable >= bound`` (GP form: ``bound / variable <= 1``)."""
        if bound <= 0:
            raise ValueError("GP variable bounds must be positive")
        name = variable.name if isinstance(variable, Variable) else variable
        var = self.new_variable(name)
        return self.add_constraint(Monomial(bound) / var <= 1.0)

    def add_upper_bound(self, variable: Variable | str, bound: float) -> PosynomialConstraint:
        """Add ``variable <= bound``."""
        if bound <= 0:
            raise ValueError("GP variable bounds must be positive")
        name = variable.name if isinstance(variable, Variable) else variable
        var = self.new_variable(name)
        return self.add_constraint(as_posynomial(var) <= Monomial(bound))

    def _register(self, names: frozenset[str] | set[str]) -> None:
        for name in names:
            self._variables.setdefault(name, Variable(name))

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def objective(self) -> Posynomial:
        if self._objective is None:
            raise ModelError("the model has no objective")
        return self._objective

    @property
    def constraints(self) -> tuple[PosynomialConstraint, ...]:
        return tuple(self._constraints)

    @property
    def variable_names(self) -> tuple[str, ...]:
        """All variable names, sorted for deterministic vector ordering."""
        return tuple(sorted(self._variables))

    def validate(self) -> None:
        """Raise :class:`ModelError` if the model is not a well-formed GP."""
        if self._objective is None:
            raise ModelError("the model has no objective")
        if not self._variables:
            raise ModelError("the model has no variables")

    def check_feasible(self, values: Mapping[str, float], tolerance: float = 1e-6) -> bool:
        """Return True if all constraints hold at ``values`` (within tolerance)."""
        return all(constraint.is_satisfied(values, tolerance) for constraint in self._constraints)

    def total_violation(self, values: Mapping[str, float]) -> float:
        """Sum of constraint violations at ``values``."""
        return sum(constraint.violation(values) for constraint in self._constraints)

    def __str__(self) -> str:
        lines = [f"GPModel {self.name!r}:"]
        if self._objective is not None:
            lines.append(f"  minimize {self._objective}")
        for constraint in self._constraints:
            lines.append(f"  s.t. {constraint}")
        return "\n".join(lines)
