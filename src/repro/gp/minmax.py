"""Exact bisection solver for min-max-latency geometric programs.

The relaxed allocation problem of the paper (eqs. 14-18) has a special
structure: minimise ``II`` subject to

    N_k >= WCET_k / II           (latency coverage, eq. 15)
    N_k >= 1                     (at least one CU, eq. 16)
    sum_k N_k * w_{k,d} <= C_d   (one linear capacity constraint per
                                  resource kind and for bandwidth, eqs. 17-18)

For a fixed ``II`` the cheapest choice is ``N_k = max(1, WCET_k / II)``, and
the capacity usage is non-increasing in ``II``; hence feasibility is monotone
in ``II`` and the optimum can be found by bisection to machine precision.
This provides an *exact* reference optimum used to validate the general GP
backends, and a very fast default path for the heuristic's first step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from .errors import InfeasibleError


@dataclass(frozen=True)
class CapacityConstraint:
    """One linear capacity constraint ``sum_k N_k * weight_k <= capacity``."""

    name: str
    weights: Mapping[str, float]
    capacity: float

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError("capacity must be non-negative")
        if any(weight < 0 for weight in self.weights.values()):
            raise ValueError("capacity weights must be non-negative")

    def usage(self, counts: Mapping[str, float]) -> float:
        """Capacity consumed by the given CU counts."""
        return sum(self.weights.get(name, 0.0) * counts.get(name, 0.0) for name in self.weights)

    def is_satisfied(self, counts: Mapping[str, float], tolerance: float = 1e-9) -> bool:
        return self.usage(counts) <= self.capacity + tolerance


@dataclass(frozen=True)
class MinMaxLatencyProblem:
    """The min-max latency problem solved by the GP step of the heuristic."""

    wcet: Mapping[str, float]
    min_counts: Mapping[str, float]
    capacities: Sequence[CapacityConstraint]
    max_counts: Mapping[str, float] | None = None

    def __post_init__(self) -> None:
        if not self.wcet:
            raise ValueError("the problem needs at least one kernel")
        for name, value in self.wcet.items():
            if value <= 0:
                raise ValueError(f"WCET of {name!r} must be positive")
        for name in self.wcet:
            if self.min_counts.get(name, 1.0) <= 0:
                raise ValueError(f"minimum CU count of {name!r} must be positive")

    # ------------------------------------------------------------------ #
    # Core relations
    # ------------------------------------------------------------------ #
    def counts_for_ii(self, ii: float) -> dict[str, float]:
        """Cheapest fractional CU counts meeting a target initiation interval."""
        if ii <= 0:
            raise ValueError("II must be positive")
        counts: dict[str, float] = {}
        for name, wcet in self.wcet.items():
            count = max(self.min_counts.get(name, 1.0), wcet / ii)
            if self.max_counts is not None and name in self.max_counts:
                count = min(count, self.max_counts[name])
            counts[name] = count
        return counts

    def is_feasible_ii(self, ii: float, tolerance: float = 1e-9) -> bool:
        """Whether the cheapest counts for ``ii`` satisfy all capacities."""
        counts = self.counts_for_ii(ii)
        if self.max_counts is not None:
            for name, wcet in self.wcet.items():
                if wcet / counts[name] > ii * (1 + 1e-12) + tolerance:
                    return False
        return all(constraint.is_satisfied(counts, tolerance) for constraint in self.capacities)

    def achieved_ii(self, counts: Mapping[str, float]) -> float:
        """Initiation interval achieved by a given CU-count assignment."""
        return max(self.wcet[name] / counts[name] for name in self.wcet)

    # ------------------------------------------------------------------ #
    # Bounds
    # ------------------------------------------------------------------ #
    def lower_bound(self) -> float:
        """A valid lower bound on the optimal II (work-conservation bound)."""
        bound = 0.0
        for constraint in self.capacities:
            if constraint.capacity <= 0:
                continue
            work = sum(
                self.wcet[name] * constraint.weights.get(name, 0.0) for name in self.wcet
            )
            if work > 0:
                bound = max(bound, work / constraint.capacity)
        return bound

    def upper_bound_start(self) -> float:
        """An II that is feasible whenever the problem is feasible at all.

        With ``N_k`` at their minimum (typically 1 per kernel), the II equals
        ``max_k WCET_k / min_count_k``; no smaller capacity usage is possible,
        so if this is infeasible the whole problem is infeasible.
        """
        return max(
            self.wcet[name] / self.min_counts.get(name, 1.0) for name in self.wcet
        )

    # ------------------------------------------------------------------ #
    # Solve
    # ------------------------------------------------------------------ #
    def solve(self, tolerance: float = 1e-10, max_iterations: int = 200) -> tuple[float, dict[str, float]]:
        """Return the optimal ``(II, counts)`` pair by bisection.

        Raises
        ------
        InfeasibleError
            If even the minimum CU counts violate a capacity constraint.
        """
        high = self.upper_bound_start()
        if not self.is_feasible_ii(high):
            raise InfeasibleError(
                "minimum CU counts already exceed the platform capacity; "
                "the relaxed allocation problem is infeasible"
            )
        low = max(self.lower_bound(), 1e-12)
        if low > high:
            low = high
        # Shrink the interval; feasibility is monotone non-decreasing in II.
        for _ in range(max_iterations):
            if high - low <= tolerance * max(1.0, high):
                break
            mid = 0.5 * (low + high)
            if self.is_feasible_ii(mid):
                high = mid
            else:
                low = mid
        counts = self.counts_for_ii(high)
        return self.achieved_ii(counts), counts
