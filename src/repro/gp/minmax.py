"""Exact bisection solver for min-max-latency geometric programs.

The relaxed allocation problem of the paper (eqs. 14-18) has a special
structure: minimise ``II`` subject to

    N_k >= WCET_k / II           (latency coverage, eq. 15)
    N_k >= 1                     (at least one CU, eq. 16)
    sum_k N_k * w_{k,d} <= C_d   (one linear capacity constraint per
                                  resource kind and for bandwidth, eqs. 17-18)

For a fixed ``II`` the cheapest choice is ``N_k = max(1, WCET_k / II)``, and
the capacity usage is non-increasing in ``II``; hence feasibility is monotone
in ``II`` and the optimum can be found by bisection to machine precision.
This provides an *exact* reference optimum used to validate the general GP
backends, and a very fast default path for the heuristic's first step.

Two implementations share that algorithm:

* :class:`MinMaxLatencyProblem` -- the original name-keyed scalar solver,
  kept as the cross-check reference backend;
* :class:`VectorizedMinMaxProblem` -- the kernel-indexed NumPy form used by
  the hot paths (GP step, discretisation branch-and-bound).  It runs the
  *same* bisection with the same bracket and update sequence, so the two
  agree to the bisection tolerance, and it accepts a ``lower_hint`` so a
  branch-and-bound child node can warm-start from its parent's optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .errors import InfeasibleError


@dataclass(frozen=True)
class CapacityConstraint:
    """One linear capacity constraint ``sum_k N_k * weight_k <= capacity``."""

    name: str
    weights: Mapping[str, float]
    capacity: float

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError("capacity must be non-negative")
        if any(weight < 0 for weight in self.weights.values()):
            raise ValueError("capacity weights must be non-negative")

    def usage(self, counts: Mapping[str, float]) -> float:
        """Capacity consumed by the given CU counts."""
        return sum(self.weights.get(name, 0.0) * counts.get(name, 0.0) for name in self.weights)

    def is_satisfied(self, counts: Mapping[str, float], tolerance: float = 1e-9) -> bool:
        return self.usage(counts) <= self.capacity + tolerance


@dataclass(frozen=True)
class MinMaxLatencyProblem:
    """The min-max latency problem solved by the GP step of the heuristic."""

    wcet: Mapping[str, float]
    min_counts: Mapping[str, float]
    capacities: Sequence[CapacityConstraint]
    max_counts: Mapping[str, float] | None = None

    def __post_init__(self) -> None:
        if not self.wcet:
            raise ValueError("the problem needs at least one kernel")
        for name, value in self.wcet.items():
            if value <= 0:
                raise ValueError(f"WCET of {name!r} must be positive")
        for name in self.wcet:
            if self.min_counts.get(name, 1.0) <= 0:
                raise ValueError(f"minimum CU count of {name!r} must be positive")

    # ------------------------------------------------------------------ #
    # Core relations
    # ------------------------------------------------------------------ #
    def counts_for_ii(self, ii: float) -> dict[str, float]:
        """Cheapest fractional CU counts meeting a target initiation interval."""
        if ii <= 0:
            raise ValueError("II must be positive")
        counts: dict[str, float] = {}
        for name, wcet in self.wcet.items():
            count = max(self.min_counts.get(name, 1.0), wcet / ii)
            if self.max_counts is not None and name in self.max_counts:
                count = min(count, self.max_counts[name])
            counts[name] = count
        return counts

    def is_feasible_ii(self, ii: float, tolerance: float = 1e-9) -> bool:
        """Whether the cheapest counts for ``ii`` satisfy all capacities."""
        counts = self.counts_for_ii(ii)
        if self.max_counts is not None:
            for name, wcet in self.wcet.items():
                if wcet / counts[name] > ii * (1 + 1e-12) + tolerance:
                    return False
        return all(constraint.is_satisfied(counts, tolerance) for constraint in self.capacities)

    def achieved_ii(self, counts: Mapping[str, float]) -> float:
        """Initiation interval achieved by a given CU-count assignment."""
        return max(self.wcet[name] / counts[name] for name in self.wcet)

    # ------------------------------------------------------------------ #
    # Bounds
    # ------------------------------------------------------------------ #
    def lower_bound(self) -> float:
        """A valid lower bound on the optimal II (work-conservation bound)."""
        bound = 0.0
        for constraint in self.capacities:
            if constraint.capacity <= 0:
                continue
            work = sum(
                self.wcet[name] * constraint.weights.get(name, 0.0) for name in self.wcet
            )
            if work > 0:
                bound = max(bound, work / constraint.capacity)
        return bound

    def upper_bound_start(self) -> float:
        """An II that is feasible whenever the problem is feasible at all.

        With ``N_k`` at their minimum (typically 1 per kernel), the II equals
        ``max_k WCET_k / min_count_k``; no smaller capacity usage is possible,
        so if this is infeasible the whole problem is infeasible.
        """
        return max(
            self.wcet[name] / self.min_counts.get(name, 1.0) for name in self.wcet
        )

    # ------------------------------------------------------------------ #
    # Solve
    # ------------------------------------------------------------------ #
    def solve(self, tolerance: float = 1e-10, max_iterations: int = 200) -> tuple[float, dict[str, float]]:
        """Return the optimal ``(II, counts)`` pair by bisection.

        Raises
        ------
        InfeasibleError
            If even the minimum CU counts violate a capacity constraint.
        """
        high = self.upper_bound_start()
        if not self.is_feasible_ii(high):
            raise InfeasibleError(
                "minimum CU counts already exceed the platform capacity; "
                "the relaxed allocation problem is infeasible"
            )
        low = max(self.lower_bound(), 1e-12)
        if low > high:
            low = high
        # Shrink the interval; feasibility is monotone non-decreasing in II.
        for _ in range(max_iterations):
            if high - low <= tolerance * max(1.0, high):
                break
            mid = 0.5 * (low + high)
            if self.is_feasible_ii(mid):
                high = mid
            else:
                low = mid
        counts = self.counts_for_ii(high)
        return self.achieved_ii(counts), counts


class VectorizedMinMaxProblem:
    """Array form of :class:`MinMaxLatencyProblem` over a fixed kernel order.

    Built once per allocation problem (or per discretisation run) and then
    solved many times with different box bounds: each branch-and-bound node
    only supplies new ``min_counts`` / ``max_counts`` vectors while the WCET
    vector, the ``(D, K)`` weight matrix and the capacity vector are reused.
    """

    def __init__(
        self,
        names: Sequence[str],
        wcet: np.ndarray,
        weights: np.ndarray,
        capacity: np.ndarray,
    ):
        self.names = tuple(names)
        self.wcet = np.asarray(wcet, dtype=np.float64)
        self.weights = np.asarray(weights, dtype=np.float64).reshape(-1, len(self.names))
        self.capacity = np.asarray(capacity, dtype=np.float64)
        if self.wcet.size == 0:
            raise ValueError("the problem needs at least one kernel")
        if np.any(self.wcet <= 0):
            raise ValueError("every WCET must be positive")
        if np.any(self.capacity < 0):
            raise ValueError("capacities must be non-negative")
        if np.any(self.weights < 0):
            raise ValueError("capacity weights must be non-negative")
        # Work-conservation numerators (sum_k WCET_k * w_{k,d}) are constant
        # across solves, so the per-node lower bound is a single division.
        self._work = self.weights @ self.wcet

    @classmethod
    def from_scalar(cls, problem: MinMaxLatencyProblem) -> "VectorizedMinMaxProblem":
        """Array view of a scalar problem (kernel order = WCET mapping order)."""
        names = tuple(problem.wcet)
        wcet = np.asarray([problem.wcet[name] for name in names], dtype=np.float64)
        weights = np.asarray(
            [[constraint.weights.get(name, 0.0) for name in names] for constraint in problem.capacities],
            dtype=np.float64,
        ).reshape(len(problem.capacities), len(names))
        capacity = np.asarray(
            [constraint.capacity for constraint in problem.capacities], dtype=np.float64
        )
        return cls(names=names, wcet=wcet, weights=weights, capacity=capacity)

    # ------------------------------------------------------------------ #
    # Core relations (mirroring the scalar implementation exactly)
    # ------------------------------------------------------------------ #
    def counts_for_ii(
        self, ii: float, min_counts: np.ndarray, max_counts: np.ndarray | None
    ) -> np.ndarray:
        """Cheapest fractional CU counts meeting a target initiation interval."""
        if ii <= 0:
            raise ValueError("II must be positive")
        counts = np.maximum(min_counts, self.wcet / ii)
        if max_counts is not None:
            counts = np.minimum(counts, max_counts)
        return counts

    def is_feasible_ii(
        self,
        ii: float,
        min_counts: np.ndarray,
        max_counts: np.ndarray | None,
        tolerance: float = 1e-9,
    ) -> bool:
        """Whether the cheapest counts for ``ii`` satisfy all capacities."""
        counts = self.counts_for_ii(ii, min_counts, max_counts)
        if max_counts is not None:
            if np.any(self.wcet / counts > ii * (1 + 1e-12) + tolerance):
                return False
        return bool(np.all(self.weights @ counts <= self.capacity + tolerance))

    def lower_bound(self) -> float:
        """A valid lower bound on the optimal II (work-conservation bound)."""
        positive = self.capacity > 0
        if not np.any(positive):
            return 0.0
        return float(max(0.0, np.max(self._work[positive] / self.capacity[positive])))

    # ------------------------------------------------------------------ #
    # Solve
    # ------------------------------------------------------------------ #
    def solve(
        self,
        min_counts: np.ndarray | None = None,
        max_counts: np.ndarray | None = None,
        lower_hint: float | None = None,
        tolerance: float = 1e-10,
        max_iterations: int = 200,
    ) -> tuple[float, np.ndarray]:
        """Return the optimal ``(II, counts)`` pair by bisection.

        ``lower_hint`` tightens the initial bracket with an externally known
        lower bound on the optimum (a branch-and-bound parent's objective:
        shrinking the box can only worsen the optimum), which cuts the number
        of bisection iterations without changing what the solver converges
        to.

        Raises
        ------
        InfeasibleError
            If even the minimum CU counts violate a capacity constraint.
        """
        if min_counts is None:
            min_counts = np.ones_like(self.wcet)
        if np.any(min_counts <= 0):
            raise ValueError("minimum CU counts must be positive")
        high = float(np.max(self.wcet / min_counts))
        if not self.is_feasible_ii(high, min_counts, max_counts):
            raise InfeasibleError(
                "minimum CU counts already exceed the platform capacity; "
                "the relaxed allocation problem is infeasible"
            )
        low = max(self.lower_bound(), 1e-12)
        if lower_hint is not None and lower_hint > low:
            # Back off one ulp-scale step so a hint equal to the optimum
            # (up to the parent's bisection tolerance) stays a lower bound.
            low = min(high, lower_hint * (1.0 - 1e-9))
            # The optimum usually sits at (or just above) the hint -- a
            # branch-and-bound child most often inherits its parent's II.
            # Probe geometrically outward from the hint before bisecting:
            # a feasible probe pulls ``high`` next to ``low`` immediately,
            # an infeasible one is a proven lower bound.
            for factor in (1e-9, 1e-4, 1e-2, 0.25):
                probe = lower_hint * (1.0 + factor)
                if probe >= high:
                    break
                if self.is_feasible_ii(probe, min_counts, max_counts):
                    high = probe
                    break
                low = probe
        if low > high:
            low = high
        for _ in range(max_iterations):
            if high - low <= tolerance * max(1.0, high):
                break
            mid = 0.5 * (low + high)
            if self.is_feasible_ii(mid, min_counts, max_counts):
                high = mid
            else:
                low = mid
        counts = self.counts_for_ii(high, min_counts, max_counts)
        return float(np.max(self.wcet / counts)), counts

    def solve_exact(
        self,
        min_counts: np.ndarray | None = None,
        max_counts: np.ndarray | None = None,
        tolerance: float = 1e-9,
    ) -> tuple[float, np.ndarray]:
        """Closed-form optimum via the piecewise-linear breakpoint structure.

        In ``t = 1/II`` the cheapest counts are ``clip(WCET_k * t, min_k,
        max_k)``, so every capacity usage is piecewise linear and
        non-decreasing in ``t`` with kinks only where a kernel starts growing
        (``t = min_k / WCET_k``) or saturates (``t = max_k / WCET_k``).  The
        largest feasible ``t`` per dimension is found by evaluating the usage
        at every kink and interpolating the crossing segment -- no iteration,
        a handful of small matrix operations per call.  Used by the
        branch-and-bound node relaxations; agrees with :meth:`solve` to the
        bisection tolerance (the bisection accepts capacities up to the same
        ``tolerance`` slack, which is mirrored here).

        Raises
        ------
        InfeasibleError
            If even the minimum CU counts violate a capacity constraint.
        """
        if min_counts is None:
            min_counts = np.ones_like(self.wcet)
        if np.any(min_counts <= 0):
            raise ValueError("minimum CU counts must be positive")
        capacity_slack = self.capacity + tolerance
        base_usage = self.weights @ min_counts
        if np.any(base_usage > capacity_slack):
            raise InfeasibleError(
                "minimum CU counts already exceed the platform capacity; "
                "the relaxed allocation problem is infeasible"
            )
        # Mirror the bisection's numerical floor (low = 1e-12): never report
        # an II below it even when the problem is effectively unconstrained.
        t_limit = 1e12
        if max_counts is not None:
            finite = np.isfinite(max_counts)
            if np.any(finite):
                t_limit = min(t_limit, float(np.min(max_counts[finite] / self.wcet[finite])))
        t_starts = min_counts / self.wcet
        kinks = [t_starts]
        if max_counts is not None:
            ends = max_counts / self.wcet
            kinks.append(ends[np.isfinite(ends)])
        ts = np.unique(np.concatenate(kinks))
        ts = ts[ts <= t_limit]
        if ts.size == 0 or ts[-1] < t_limit:
            ts = np.append(ts, t_limit)
        counts_at = np.outer(ts, self.wcet)
        np.maximum(counts_at, min_counts, out=counts_at)
        if max_counts is not None:
            np.minimum(counts_at, max_counts, out=counts_at)
        usage_at = counts_at @ self.weights.T  # (T, D)
        t_best = t_limit
        for dimension in range(self.capacity.size):
            column = usage_at[:, dimension]
            exceeding = np.nonzero(column > capacity_slack[dimension])[0]
            if exceeding.size == 0:
                continue
            first = int(exceeding[0])
            if first == 0:
                # Usage already above capacity at the smallest kink; the
                # curve is constant (= base usage <= capacity) below it, so
                # the crossing sits exactly at that kink.
                t_best = min(t_best, float(ts[0]))
                continue
            run = column[first] - column[first - 1]
            rise = capacity_slack[dimension] - column[first - 1]
            t_cross = ts[first - 1] + (ts[first] - ts[first - 1]) * rise / run
            t_best = min(t_best, float(t_cross))
        ii = 1.0 / t_best
        counts = self.counts_for_ii(ii, min_counts, max_counts)
        return float(np.max(self.wcet / counts)), counts

    def solve_dict(
        self,
        min_counts: Mapping[str, float] | None = None,
        max_counts: Mapping[str, float] | None = None,
        **kwargs: float,
    ) -> tuple[float, dict[str, float]]:
        """Name-keyed convenience wrapper around :meth:`solve`."""
        min_vector = (
            np.asarray([min_counts.get(name, 1.0) for name in self.names], dtype=np.float64)
            if min_counts is not None
            else None
        )
        max_vector = (
            np.asarray([max_counts.get(name, np.inf) for name in self.names], dtype=np.float64)
            if max_counts is not None
            else None
        )
        ii, counts = self.solve(min_counts=min_vector, max_counts=max_vector, **kwargs)
        return ii, {name: float(value) for name, value in zip(self.names, counts)}
