"""Reporting for the allocation service: cache and batch counters as tables.

The service's ``/stats`` endpoint and :class:`~repro.service.store.CacheStats`
carry raw counters; these helpers render them in the same plain-text table
format as the paper's experiment drivers, so CLI output, logs and CI smoke
jobs all read the same way.
"""

from __future__ import annotations

from typing import Any, Mapping

from .tables import TextTable


def cache_stats_table(stats: Mapping[str, Any], title: str = "Result cache") -> TextTable:
    """Render cache tier counters (``CacheStats.as_dict()`` or ``/stats['cache']``)."""
    table = TextTable(headers=["counter", "value"], title=title)
    for counter in (
        "memory_hits",
        "disk_hits",
        "misses",
        "puts",
        "evictions",
        "disk_evictions",
        "ttl_evictions",
        "rebalances",
        "lookups",
    ):
        if counter in stats:
            table.add_row(counter, int(stats[counter]))
    if "hit_rate" in stats:
        table.add_row("hit_rate", f"{100.0 * float(stats['hit_rate']):.1f}%")
    return table


def jobs_table(stats: Mapping[str, Any], title: str = "Async jobs") -> TextTable:
    """Render the job-queue counters (``/stats['jobs']``)."""
    table = TextTable(headers=["counter", "value"], title=title)
    for counter in (
        "workers",
        "submitted",
        "completed",
        "failed",
        "pruned",
        "retained",
        "queued",
        "running",
        "done",
    ):
        if counter in stats:
            table.add_row(counter, int(stats[counter]))
    return table


#: Solver work counters rendered by :func:`solver_stats_table`, in display
#: order: the exact-path instrumentation of PR 3 (LP solves and probes of the
#: node relaxations, branch-and-bound nodes, bin-packer search nodes and the
#: feasibility/relaxation memo tiers).
SOLVER_COUNTERS = (
    "lp_solves",
    "lp_batched_solves",
    "feasibility_lps",
    "probe_lps",
    "node_solves",
    "bb_nodes",
    "ii_cache_hits",
    "ii_cache_misses",
    "relaxation_cache_hits",
    "relaxation_cache_misses",
    "packs",
    "packer_search_nodes",
    "packer_completion_nodes",
    "packer_exact_searches",
    "packing_memo_hits",
    "packing_memo_misses",
    "candidates_considered",
)


def solver_stats_table(
    counters: Mapping[str, Any], title: str = "Solver work counters"
) -> TextTable:
    """Render solver work counters (``/stats['solver']``, outcome counters or
    a batch report's ``solver_counters``)."""
    table = TextTable(headers=["counter", "value"], title=title)
    for counter in SOLVER_COUNTERS:
        if counter in counters:
            table.add_row(counter, int(counters[counter]))
    for counter in sorted(set(counters) - set(SOLVER_COUNTERS)):
        table.add_row(counter, int(counters[counter]))
    return table


def service_stats_table(stats: Mapping[str, Any]) -> TextTable:
    """Render a full ``/stats`` document (service + cache + jobs + solver)."""
    table = TextTable(headers=["counter", "value"], title="Allocation service")
    service = stats.get("service", {})
    for counter in ("requests", "batches", "solves"):
        if counter in service:
            table.add_row(counter, int(service[counter]))
    if "uptime_seconds" in service:
        table.add_row("uptime_seconds", f"{float(service['uptime_seconds']):.1f}")
    if "cache_shards" in stats:
        table.add_row("cache_shards", int(stats["cache_shards"]))
    for tier, size in stats.get("cache_sizes", {}).items():
        table.add_row(f"{tier}_entries", int(size))
    for tier, size in stats.get("cache_bytes", {}).items():
        table.add_row(f"{tier}_bytes", int(size))
    cache = stats.get("cache", {})
    for counter in ("evictions", "disk_evictions", "ttl_evictions"):
        if cache.get(counter):
            table.add_row(f"cache_{counter}", int(cache[counter]))
    jobs = stats.get("jobs", {})
    for counter in ("submitted", "completed", "failed", "queued", "running"):
        if jobs.get(counter):
            table.add_row(f"jobs_{counter}", int(jobs[counter]))
    for counter, value in stats.get("solver", {}).items():
        table.add_row(f"solver_{counter}", int(value))
    return table


def batch_report_table(report: Mapping[str, Any]) -> TextTable:
    """Render a ``BatchReport.as_dict()`` (or ``/solve_batch['report']``)."""
    table = TextTable(headers=["counter", "value"], title="Batch solve report")
    for counter in ("total", "unique", "duplicates", "memory_hits", "disk_hits", "solves", "groups"):
        if counter in report:
            table.add_row(counter, int(report[counter]))
    if "runtime_seconds" in report:
        table.add_row("runtime_seconds", f"{float(report['runtime_seconds']):.3f}")
    return table
