"""Per-experiment drivers: one function per table / figure of the paper.

Every driver returns plain data (a :class:`~repro.reporting.tables.TextTable`
or :class:`~repro.reporting.series.FigureData`) so it can be reused by the
benchmark harness, the CLI and the tests.  The drivers accept the knobs that
control runtime (constraint grids, branch-and-bound limits) so the benchmark
suite can run a faithful-but-bounded configuration and record it in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.exact import ExactSettings
from ..core.heuristic import HeuristicSettings
from ..core.objective import PAPER_WEIGHTS, default_weights
from ..core.problem import AllocationProblem
from ..core.solution import SolveOutcome
from ..core.solvers import solve
from ..explore.compare import ComparisonSettings, compare_methods_over, speedup_summary
from ..explore.executor import SweepExecutor
from ..explore.runtime import runtime_comparison, speedups
from ..explore.sweep import t_parameter_sweep
from ..platform.multi_fpga import DeviceClass, MultiFPGAPlatform
from ..platform.presets import XCVU9P, aws_f1
from ..platform.resources import ResourceVector
from ..workloads.alexnet import ALEX16_TABLE, ALEX32_TABLE, alexnet_fp32, alexnet_fx16
from ..workloads.vgg import VGG16_TABLE, vgg16_fx16
from .series import FigureData, Series
from .tables import TextTable

#: The three case studies of Section 4, keyed by short name.
CASE_STUDIES: dict[str, tuple[str, int]] = {
    "alex-16": ("alex-16", 2),
    "alex-32": ("alex-32", 4),
    "vgg-16": ("vgg-16", 8),
}


def case_study(name: str, resource_limit_percent: float = 100.0) -> AllocationProblem:
    """Build one of the paper's three case studies with its Table 4 weights."""
    if name == "alex-16":
        pipeline, fpgas = alexnet_fx16(), 2
    elif name == "alex-32":
        pipeline, fpgas = alexnet_fp32(), 4
    elif name == "vgg-16":
        pipeline, fpgas = vgg16_fx16(), 8
    else:
        raise ValueError(f"unknown case study {name!r}; options: {sorted(CASE_STUDIES)}")
    return AllocationProblem(
        pipeline=pipeline,
        platform=aws_f1(num_fpgas=fpgas, resource_limit_percent=resource_limit_percent),
        weights=default_weights(pipeline.name, fpgas),
    )


# --------------------------------------------------------------------------- #
# Tables 2-4
# --------------------------------------------------------------------------- #
def table2() -> TextTable:
    """Table 2: characterisation of the Alex-32 and Alex-16 kernels."""
    table = TextTable(
        headers=[
            "Kernel",
            "A32 BRAM%", "A32 DSP%", "A32 BW%", "A32 WCET(ms)",
            "A16 BRAM%", "A16 DSP%", "A16 BW%", "A16 WCET(ms)",
        ],
        title="Table 2: AlexNet kernel characterisation (per single CU)",
    )
    a16 = {row[0]: row[1:] for row in ALEX16_TABLE}
    for name, bram, dsp, bw, wcet in ALEX32_TABLE:
        bram16, dsp16, bw16, wcet16 = a16[name]
        table.add_row(name, bram, dsp, bw, wcet, bram16, dsp16, bw16, wcet16)
    alex32, alex16 = alexnet_fp32(), alexnet_fx16()
    table.add_row(
        "SUM",
        alex32.total_resources().bram, alex32.total_resources().dsp,
        alex32.total_bandwidth(), alex32.total_wcet_ms(),
        alex16.total_resources().bram, alex16.total_resources().dsp,
        alex16.total_bandwidth(), alex16.total_wcet_ms(),
    )
    return table


def table3() -> TextTable:
    """Table 3: characterisation of the VGG-16 kernels."""
    table = TextTable(
        headers=["Kernels", "BRAM%", "DSP%", "BW%", "WCET(ms)"],
        title="Table 3: VGG kernel characterisation (per single CU)",
    )
    for names, bram, dsp, bw, wcet in VGG16_TABLE:
        table.add_row(", ".join(names), bram, dsp, bw, wcet)
    vgg = vgg16_fx16()
    table.add_row(
        "SUM", vgg.total_resources().bram, vgg.total_resources().dsp,
        vgg.total_bandwidth(), vgg.total_wcet_ms(),
    )
    return table


def table4() -> TextTable:
    """Table 4: spreading-function weights per case study."""
    table = TextTable(
        headers=["Application", "FPGAs", "alpha", "beta"],
        title="Table 4: parameters for the spreading function",
    )
    for (application, fpgas), weights in sorted(PAPER_WEIGHTS.items()):
        table.add_row(application, fpgas, weights.alpha, weights.beta)
    return table


# --------------------------------------------------------------------------- #
# Figure 2: T-parameter sweep for Alex-16 on 2 FPGAs
# --------------------------------------------------------------------------- #
def figure2(
    constraints: Sequence[float] = tuple(range(40, 91, 5)),
    t_values: Sequence[float] = (0.0, 2.5, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0),
    executor: SweepExecutor | None = None,
) -> FigureData:
    """Figure 2: Alex-16 on 2 FPGAs, II vs resource constraint for several T."""
    problem = case_study("alex-16")
    figure = FigureData(
        name="figure2",
        x_label="resource constraint (%)",
        y_label="initiation interval (ms)",
        caption="Alex-16 on 2 FPGAs; GP+A heuristic with varying T (delta = 1%)",
    )
    sweeps = t_parameter_sweep(problem, constraints, t_values=t_values, executor=executor)
    for t_value, points in sweeps.items():
        xs = [p.resource_constraint for p in points]
        ys = [p.initiation_interval for p in points]
        figure.add_series(Series.from_xy(f"T{t_value:g}", xs, ys))
    return figure


# --------------------------------------------------------------------------- #
# Figures 3-5: GP+A vs MINLP vs MINLP+G
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class MethodComparisonFigure:
    """The (a) and (b) panels of one of Figures 3-5 plus the raw outcomes."""

    name: str
    versus_constraint: FigureData
    versus_utilization: FigureData
    speedup: Mapping[str, Mapping[str, float]]


def _comparison_figure(
    figure_name: str,
    case: str,
    constraints: Sequence[float],
    exact_settings: ExactSettings,
    methods: Sequence[str] = ("gp+a", "minlp", "minlp+g"),
    executor: SweepExecutor | None = None,
) -> MethodComparisonFigure:
    problem = case_study(case)
    settings = ComparisonSettings(
        methods=tuple(methods),
        heuristic=HeuristicSettings(),
        exact=exact_settings,
    )
    points = compare_methods_over(problem, constraints, settings, executor=executor)

    panel_a = FigureData(
        name=f"{figure_name}a",
        x_label="resource constraint (%)",
        y_label="initiation interval (ms)",
        caption=f"{case} -- II vs per-FPGA resource constraint",
    )
    panel_b = FigureData(
        name=f"{figure_name}b",
        x_label="average resource (%)",
        y_label="initiation interval (ms)",
        caption=f"{case} -- II vs average FPGA utilisation",
    )
    for method in methods:
        xs_a, ys_a, xs_b, ys_b = [], [], [], []
        for point in points:
            outcome = point.outcomes[method]
            if not outcome.succeeded:
                continue
            xs_a.append(point.resource_constraint)
            ys_a.append(outcome.initiation_interval)
            xs_b.append(point.average_utilization(method))
            ys_b.append(outcome.initiation_interval)
        label = {"gp+a": "GP+A", "minlp": "MINLP", "minlp+g": "MINLP+G"}.get(method, method)
        panel_a.add_series(Series.from_xy(label, xs_a, ys_a))
        panel_b.add_series(Series.from_xy(label, xs_b, ys_b))

    speedup = {
        "minlp": speedup_summary(points, baseline="gp+a", reference="minlp"),
        "minlp+g": speedup_summary(points, baseline="gp+a", reference="minlp+g"),
    }
    return MethodComparisonFigure(
        name=figure_name,
        versus_constraint=panel_a,
        versus_utilization=panel_b,
        speedup=speedup,
    )


def figure3(
    constraints: Sequence[float] = (55, 60, 65, 70, 75, 80, 85),
    exact_settings: ExactSettings = ExactSettings(max_nodes=8, time_limit_seconds=60.0),
    methods: Sequence[str] = ("gp+a", "minlp", "minlp+g"),
    executor: SweepExecutor | None = None,
) -> MethodComparisonFigure:
    """Figure 3: AlexNet 16-bit fixed point on 2 FPGAs."""
    return _comparison_figure("figure3", "alex-16", constraints, exact_settings, methods, executor=executor)


def figure4(
    constraints: Sequence[float] = (65, 67, 70, 72, 75),
    exact_settings: ExactSettings = ExactSettings(max_nodes=8, time_limit_seconds=60.0),
    methods: Sequence[str] = ("gp+a", "minlp", "minlp+g"),
    executor: SweepExecutor | None = None,
) -> MethodComparisonFigure:
    """Figure 4: AlexNet 32-bit floating point on 4 FPGAs."""
    return _comparison_figure("figure4", "alex-32", constraints, exact_settings, methods, executor=executor)


def figure5(
    constraints: Sequence[float] = (55, 61, 65, 70, 75, 80),
    exact_settings: ExactSettings = ExactSettings(max_nodes=4, time_limit_seconds=90.0),
    methods: Sequence[str] = ("gp+a", "minlp", "minlp+g"),
    executor: SweepExecutor | None = None,
) -> MethodComparisonFigure:
    """Figure 5: VGG 16-bit fixed point on 8 FPGAs."""
    return _comparison_figure("figure5", "vgg-16", constraints, exact_settings, methods, executor=executor)


# --------------------------------------------------------------------------- #
# Figure 6: per-FPGA resource distribution for VGG at 61 %
# --------------------------------------------------------------------------- #
def skew_platform(
    skew_percent: float,
    base_constraint: float = 70.0,
    num_full: int = 1,
    num_derated: int = 1,
) -> MultiFPGAPlatform:
    """A two-class platform whose second class is derated by ``skew_percent``.

    At zero skew the two classes share one capacity (the homogeneous case,
    canonicalising to the plain ``aws_f1`` platform); growing skew widens the
    gap between the full-capacity and the derated FPGAs while keeping the
    aggregate capacity shrinking linearly -- the knob of the hetero-skew
    benchmark.
    """
    if skew_percent < 0 or skew_percent >= base_constraint:
        raise ValueError("skew must be in [0, base_constraint)")
    classes = (
        DeviceClass(XCVU9P, num_full, ResourceVector.full(base_constraint), 100.0),
        DeviceClass(
            XCVU9P, num_derated, ResourceVector.full(base_constraint - skew_percent), 100.0
        ),
    )
    return MultiFPGAPlatform.from_classes(classes, name=f"skew-{skew_percent:g}")


def hetero_skew(
    skews: Sequence[float] = (0.0, 5.0, 10.0, 15.0, 20.0, 25.0),
    methods: Sequence[str] = ("gp+a", "minlp"),
    base_constraint: float = 70.0,
    executor: SweepExecutor | None = None,
) -> FigureData:
    """Class-skew sweep: Alex-16 on a full + derated two-FPGA fleet.

    Sweeps the capacity gap between the two device classes (the paper's
    alex-16 platform with one die derated by the skew) and solves every
    point with the heuristic and the exact method; the emerging gap between
    the curves shows the solvers diverging on heterogeneous instances
    exactly as they do on the paper's homogeneous resource-constraint
    sweeps (Figs. 3-5).
    """
    from ..explore.executor import DEFAULT_EXECUTOR, SolveTask, run_solve_task

    executor = executor or DEFAULT_EXECUTOR
    pipeline = alexnet_fx16()
    figure = FigureData(
        name="hetero-skew",
        x_label="class skew (%)",
        y_label="initiation interval (ms)",
        caption=(
            f"Alex-16 on 1 full + 1 derated FPGA (R={base_constraint:g}%); "
            "derated class at R - skew"
        ),
    )
    tasks = [
        SolveTask(
            problem=AllocationProblem(
                pipeline=pipeline,
                platform=skew_platform(skew, base_constraint=base_constraint),
                weights=default_weights(pipeline.name, 2),
            ),
            method=method,
            tag=(method, skew),
        )
        for method in methods
        for skew in skews
    ]
    outcomes = executor.map(run_solve_task, tasks)
    for method in methods:
        xs, ys = [], []
        for task, outcome in zip(tasks, outcomes):
            if task.tag[0] != method:
                continue
            xs.append(task.tag[1])
            ys.append(outcome.initiation_interval)
        figure.add_series(Series.from_xy(method, xs, ys))
    return figure


def figure6(
    resource_constraint: float = 61.0,
    exact_settings: ExactSettings = ExactSettings(max_nodes=4, time_limit_seconds=90.0),
    methods: Sequence[str] = ("gp+a", "minlp", "minlp+g"),
) -> dict[str, TextTable]:
    """Figure 6: how VGG kernels occupy the 8 FPGAs at a 61 % constraint.

    Returns one table per method; rows are kernels (plus SLACK), columns are
    the FPGAs, cells are the percentage of the binding (DSP) resource used.
    """
    problem = case_study("vgg-16", resource_limit_percent=resource_constraint)
    tables: dict[str, TextTable] = {}
    for method in methods:
        outcome = solve(problem, method=method, exact_settings=exact_settings)
        label = {"gp+a": "GP+A", "minlp": "MINLP", "minlp+g": "MINLP+G"}.get(method, method)
        table = TextTable(
            headers=["Kernel"] + [f"F{f + 1}" for f in range(problem.num_fpgas)],
            title=f"Figure 6 ({label}): VGG DSP utilisation per FPGA at R={resource_constraint:g}%",
        )
        if not outcome.succeeded or outcome.solution is None:
            table.add_row("(infeasible)", *["-"] * problem.num_fpgas)
            tables[method] = table
            continue
        solution = outcome.solution
        for name in problem.kernel_names:
            row = [
                problem.resource_of(name).dsp * solution.counts[name][f]
                for f in range(problem.num_fpgas)
            ]
            table.add_row(name, *row)
        slack = [
            max(0.0, 100.0 - solution.fpga_resource_usage(f).dsp)
            for f in range(problem.num_fpgas)
        ]
        table.add_row("SLACK", *slack)
        tables[method] = table
    return tables


# --------------------------------------------------------------------------- #
# Runtime comparison (Section 4, text)
# --------------------------------------------------------------------------- #
def runtime_table(
    cases: Sequence[str] = ("alex-16", "alex-32", "vgg-16"),
    methods: Sequence[str] = ("gp+a", "minlp", "minlp+g"),
    resource_constraint: float = 70.0,
    repetitions: int = 1,
    exact_settings: ExactSettings = ExactSettings(max_nodes=8, time_limit_seconds=120.0),
    executor: SweepExecutor | None = None,
) -> TextTable:
    """CPU-time comparison of the three methods on the three case studies."""
    problems = [
        (case, case_study(case, resource_limit_percent=resource_constraint)) for case in cases
    ]
    measurements = runtime_comparison(
        problems, methods=methods, repetitions=repetitions, exact_settings=exact_settings,
        executor=executor,
    )
    by_case_speedup = speedups(measurements, baseline_method="gp+a")
    table = TextTable(
        headers=["Case", "Method", "Runtime (s)", "Speedup of GP+A"],
        title=f"Solver CPU time at R={resource_constraint:g}% (paper: GP+A 0.78-4.4 s, MINLP 1 min-hours)",
    )
    for measurement in measurements:
        speedup = ""
        if measurement.method != "gp+a":
            value = by_case_speedup.get(measurement.case, {}).get(measurement.method)
            speedup = f"{value:.1f}x" if value else ""
        table.add_row(measurement.case, measurement.method, measurement.median_seconds, speedup)
    return table


def summarize_outcome(outcome: SolveOutcome) -> str:
    """One-line summary used by the CLI."""
    return outcome.summary()
