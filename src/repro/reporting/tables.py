"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class TextTable:
    """A small, dependency-free text table builder.

    Cells are stored as strings; numeric helpers format floats consistently.
    """

    headers: Sequence[str]
    rows: list[list[str]] = field(default_factory=list)
    title: str = ""

    def add_row(self, *cells: object) -> None:
        """Append a row; cells are converted with :func:`format_cell`."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([format_cell(cell) for cell in cells])

    def render(self) -> str:
        """Render the table with aligned columns."""
        widths = [len(str(header)) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells: Iterable[str]) -> str:
            return " | ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(cells))

        parts = []
        if self.title:
            parts.append(self.title)
        parts.append(line(self.headers))
        parts.append("-+-".join("-" * width for width in widths))
        parts.extend(line(row) for row in self.rows)
        return "\n".join(parts)

    def to_csv(self) -> str:
        """Render the table as CSV text."""
        def escape(cell: str) -> str:
            if "," in cell or '"' in cell:
                return '"' + cell.replace('"', '""') + '"'
            return cell

        lines = [",".join(escape(str(h)) for h in self.headers)]
        lines.extend(",".join(escape(cell) for cell in row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def format_cell(value: object) -> str:
    """Format one cell: floats get 3 decimals, everything else ``str``."""
    if isinstance(value, float):
        if value != value:  # NaN
            return "n/a"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        return f"{value:.3f}"
    return str(value)


def percentage(value: float, decimals: int = 1) -> str:
    """Format a percentage value."""
    return f"{value:.{decimals}f}%"
