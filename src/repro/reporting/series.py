"""Data series containers and ASCII plotting for figure reproduction.

Figures are reproduced as *data*: every figure driver returns one or more
named (x, y) series.  This module holds the series container, CSV export and
a small ASCII scatter/line plotter so results can be inspected directly in a
terminal without matplotlib.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence


@dataclass(frozen=True)
class Series:
    """A named sequence of (x, y) points."""

    name: str
    points: tuple[tuple[float, float], ...]

    @classmethod
    def from_xy(cls, name: str, xs: Sequence[float], ys: Sequence[float]) -> "Series":
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have the same length")
        return cls(name=name, points=tuple(zip(map(float, xs), map(float, ys))))

    @property
    def xs(self) -> tuple[float, ...]:
        return tuple(x for x, _ in self.points)

    @property
    def ys(self) -> tuple[float, ...]:
        return tuple(y for _, y in self.points)

    def finite_points(self) -> tuple[tuple[float, float], ...]:
        """Points with finite y (infeasible sweep points are infinite)."""
        return tuple((x, y) for x, y in self.points if math.isfinite(y))

    def __len__(self) -> int:
        return len(self.points)


@dataclass
class FigureData:
    """A figure reproduced as data: axis labels plus a set of series."""

    name: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    caption: str = ""

    def add_series(self, series: Series) -> None:
        self.series.append(series)

    def get(self, name: str) -> Series:
        for series in self.series:
            if series.name == name:
                return series
        raise KeyError(name)

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def to_csv(self) -> str:
        """Long-format CSV: series,x,y."""
        lines = [f"series,{self.x_label},{self.y_label}"]
        for series in self.series:
            for x, y in series.points:
                lines.append(f"{series.name},{x:g},{y:g}")
        return "\n".join(lines)

    def to_ascii(self, width: int = 72, height: int = 20) -> str:
        """Render the figure as an ASCII scatter plot."""
        markers = "ox+*#@%&"
        finite = [
            (x, y)
            for series in self.series
            for x, y in series.finite_points()
        ]
        if not finite:
            return f"[{self.name}] (no finite data points)"
        xs = [x for x, _ in finite]
        ys = [y for _, y in finite]
        x_min, x_max = min(xs), max(xs)
        y_min, y_max = min(ys), max(ys)
        x_span = (x_max - x_min) or 1.0
        y_span = (y_max - y_min) or 1.0

        grid = [[" "] * width for _ in range(height)]
        for series_index, series in enumerate(self.series):
            marker = markers[series_index % len(markers)]
            for x, y in series.finite_points():
                col = int(round((x - x_min) / x_span * (width - 1)))
                row = int(round((y - y_min) / y_span * (height - 1)))
                grid[height - 1 - row][col] = marker

        lines = [f"{self.name}   ({self.y_label} vs {self.x_label})"]
        if self.caption:
            lines.append(self.caption)
        lines.append(f"y: [{y_min:.3f}, {y_max:.3f}]")
        lines.extend("  |" + "".join(row) for row in grid)
        lines.append("  +" + "-" * width)
        lines.append(f"   x: [{x_min:.3f}, {x_max:.3f}]")
        legend = "   legend: " + ", ".join(
            f"{markers[i % len(markers)]}={series.name}" for i, series in enumerate(self.series)
        )
        lines.append(legend)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_ascii()
