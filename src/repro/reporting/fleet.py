"""Reporting for multi-tenant fleet allocations.

Renders :class:`~repro.fleet.allocator.FleetOutcome` objects in the same
plain-text table format as the paper's experiment drivers: a per-tenant
allocation table (shares, objectives, weighted objectives), a fairness
summary (worst/best weighted objective and Jain's index), and a
heuristic-vs-exact quality comparison used by the ``repro fleet`` CLI and
the ``fleet-smoke`` CI job.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from .tables import TextTable


def _fmt(value: float) -> str:
    return "inf" if math.isinf(value) else f"{value:.4f}"


def fleet_allocation_table(outcome: Any, title: str | None = None) -> TextTable:
    """Per-tenant table of one :class:`FleetOutcome`."""
    table = TextTable(
        headers=["tenant", "weight", "share", "devices", "objective", "weighted"],
        title=title or f"Fleet allocation ({outcome.mode})",
    )
    for allocation in outcome.allocations:
        table.add_row(
            allocation.tenant_id,
            f"{allocation.weight:g}",
            "+".join(str(count) for count in allocation.share),
            allocation.devices,
            _fmt(allocation.outcome.objective),
            _fmt(allocation.weighted_objective),
        )
    table.add_row(
        "fleet",
        "",
        "",
        sum(allocation.devices for allocation in outcome.allocations),
        "",
        _fmt(outcome.objective),
    )
    return table


def fairness_summary(outcome: Any) -> dict[str, float]:
    """Fairness statistics of one allocation's weighted objectives.

    ``jain`` is Jain's fairness index over the *inverse* weighted
    objectives (higher objective = worse service, so the index is computed
    on per-tenant "goodness" ``1/weighted``): 1.0 means perfectly even
    weighted service, ``1/n`` means one tenant gets everything.
    Infeasible tenants drive ``worst`` to ``inf`` and ``jain`` to 0.0.
    """
    weighted = [allocation.weighted_objective for allocation in outcome.allocations]
    worst = max(weighted) if weighted else math.inf
    best = min(weighted) if weighted else math.inf
    if not weighted or any(math.isinf(value) or value <= 0.0 for value in weighted):
        jain = 0.0
    else:
        goodness = [1.0 / value for value in weighted]
        jain = sum(goodness) ** 2 / (len(goodness) * sum(g * g for g in goodness))
    return {
        "worst_weighted": worst,
        "best_weighted": best,
        "spread": worst / best if best > 0 and math.isfinite(worst) else math.inf,
        "jain": jain,
    }


def fairness_table(outcome: Any, title: str = "Fairness") -> TextTable:
    table = TextTable(headers=["metric", "value"], title=title)
    summary = fairness_summary(outcome)
    table.add_row("worst weighted objective", _fmt(summary["worst_weighted"]))
    table.add_row("best weighted objective", _fmt(summary["best_weighted"]))
    table.add_row("spread (worst/best)", _fmt(summary["spread"]))
    table.add_row("jain index", f"{summary['jain']:.3f}")
    return table


def fleet_comparison_table(
    heuristic: Any, exact: Any, title: str = "Heuristic vs exact"
) -> TextTable:
    """Quality/effort comparison of the two allocation modes on one fleet.

    The gap row reports ``heuristic / exact`` on the fleet objective (1.00
    = the heuristic found an optimal partition); the bound row reports the
    exact objective against the GP fleet lower bound.
    """
    table = TextTable(
        headers=["metric", "heuristic", "exact"],
        title=title,
    )
    table.add_row(
        "fleet objective", _fmt(heuristic.objective), _fmt(exact.objective)
    )
    table.add_row(
        "lower bound", _fmt(heuristic.lower_bound), _fmt(exact.lower_bound)
    )
    table.add_row(
        "runtime [s]",
        f"{heuristic.runtime_seconds:.3f}",
        f"{exact.runtime_seconds:.3f}",
    )
    table.add_row("tenant solves", heuristic.tenant_solves, exact.tenant_solves)
    table.add_row("nodes explored", heuristic.nodes_explored, exact.nodes_explored)
    if (
        math.isfinite(heuristic.objective)
        and math.isfinite(exact.objective)
        and exact.objective > 0.0
    ):
        table.add_row(
            "gap (heuristic/exact)", f"{heuristic.objective / exact.objective:.3f}", ""
        )
    return table


def fleet_stats_table(stats: Mapping[str, Any], title: str = "Fleet") -> TextTable:
    """Render the service's ``/stats['fleet']`` section."""
    table = TextTable(headers=["counter", "value"], title=title)
    for counter in (
        "tenants",
        "devices",
        "allocations",
        "heuristic_allocations",
        "exact_allocations",
        "arrivals",
        "departures",
        "tenant_solves",
        "memo_hits",
    ):
        if counter in stats:
            table.add_row(counter, int(stats[counter]))
    return table
