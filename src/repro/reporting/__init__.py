"""Reporting: text tables, figure data series and per-experiment drivers."""

from .experiments import (
    CASE_STUDIES,
    MethodComparisonFigure,
    case_study,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    runtime_table,
    table2,
    table3,
    table4,
)
from .fleet import (
    fairness_summary,
    fairness_table,
    fleet_allocation_table,
    fleet_comparison_table,
    fleet_stats_table,
)
from .series import FigureData, Series
from .service import (
    batch_report_table,
    cache_stats_table,
    service_stats_table,
    solver_stats_table,
)
from .tables import TextTable, format_cell, percentage
from .trace import span_breakdown_table, traced_runtime_rows, traced_runtime_table

__all__ = [
    "CASE_STUDIES",
    "FigureData",
    "MethodComparisonFigure",
    "Series",
    "TextTable",
    "batch_report_table",
    "cache_stats_table",
    "service_stats_table",
    "solver_stats_table",
    "case_study",
    "fairness_summary",
    "fairness_table",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "fleet_allocation_table",
    "fleet_comparison_table",
    "fleet_stats_table",
    "format_cell",
    "percentage",
    "runtime_table",
    "span_breakdown_table",
    "traced_runtime_rows",
    "traced_runtime_table",
    "table2",
    "table3",
    "table4",
]
