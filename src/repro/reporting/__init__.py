"""Reporting: text tables, figure data series and per-experiment drivers."""

from .experiments import (
    CASE_STUDIES,
    MethodComparisonFigure,
    case_study,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    runtime_table,
    table2,
    table3,
    table4,
)
from .series import FigureData, Series
from .tables import TextTable, format_cell, percentage

__all__ = [
    "CASE_STUDIES",
    "FigureData",
    "MethodComparisonFigure",
    "Series",
    "TextTable",
    "case_study",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "format_cell",
    "percentage",
    "runtime_table",
    "table2",
    "table3",
    "table4",
]
