"""Reporting for recorded solve traces: per-phase breakdown tables.

The tracing subsystem (:mod:`repro.obs.trace`) answers "where did the
wall clock go" for one solve; this module turns that answer into the
same plain-text tables the paper's experiment drivers emit.  The
``repro-fpga trace`` CLI drives :func:`traced_runtime_rows` -- the nine
(case, method) rows of the runtime table, each solved cold under a
trace -- and renders one :func:`span_breakdown_table` per row plus the
:func:`traced_runtime_table` summary.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ..core.discretize import discretization_cache_clear
from ..core.exact import ExactSettings
from ..core.gp_step import gp_step_cache_clear
from ..core.heuristic import allocation_cache_clear
from ..core.solvers import solve
from ..minlp.binpacking import shared_packing_memos_clear
from ..minlp.branch_and_bound import shared_relaxation_caches_clear
from ..obs.trace import SolveTrace, start_trace
from .experiments import case_study
from .tables import TextTable

#: The runtime-table grid (Section V of the paper): three case studies,
#: three methods, R = 70%.
RUNTIME_CASES = ("alex-16", "alex-32", "vgg-16")
RUNTIME_METHODS = ("gp+a", "minlp", "minlp+g")


def cold_solver_caches() -> None:
    """Drop every cross-call memo tier the solvers share.

    Traced rows are solved cold so the spans measure real work, not memo
    lookups (mirroring the perf-gate benchmark's cache discipline).
    """
    shared_relaxation_caches_clear()
    shared_packing_memos_clear()
    discretization_cache_clear()
    gp_step_cache_clear()
    allocation_cache_clear()


def traced_runtime_rows(
    cases: Sequence[str] = RUNTIME_CASES,
    methods: Sequence[str] = RUNTIME_METHODS,
    resource_constraint: float = 70.0,
    exact_settings: ExactSettings = ExactSettings(max_nodes=8, time_limit_seconds=120.0),
) -> list[dict[str, Any]]:
    """Solve every (case, method) row cold under a trace.

    Returns ``[{"case", "method", "trace", "wall_seconds"}, ...]`` with
    the :class:`~repro.obs.trace.SolveTrace` objects still live (callers
    serialise via ``trace.as_dict()`` / ``traces_to_jsonl``).
    """
    rows: list[dict[str, Any]] = []
    for case in cases:
        problem = case_study(case, resource_limit_percent=resource_constraint)
        for method in methods:
            cold_solver_caches()
            with start_trace("solve", case=case, method=method) as trace:
                solve(problem, method=method, exact_settings=exact_settings)
            rows.append(
                {
                    "case": case,
                    "method": method,
                    "trace": trace,
                    "wall_seconds": trace.duration_seconds,
                }
            )
    return rows


def span_breakdown_table(
    trace: "SolveTrace | Mapping[str, Any]", title: str | None = None
) -> TextTable:
    """Per-phase breakdown of one trace (direct children of the root).

    Accepts a live :class:`SolveTrace` or its ``as_dict`` payload (the
    document served by ``GET /trace/<fingerprint>``).
    """
    if not isinstance(trace, SolveTrace):
        trace = SolveTrace.from_dict(trace)
    wall = trace.duration_seconds
    table = TextTable(
        headers=["Phase", "Count", "Seconds", "% of wall"],
        title=title or f"Trace: {trace.name}",
    )
    for phase, entry in sorted(
        trace.breakdown().items(), key=lambda item: -item[1]["seconds"]
    ):
        share = 100.0 * entry["seconds"] / wall if wall > 0 else 0.0
        table.add_row(phase, int(entry["count"]), f"{entry['seconds']:.4f}", f"{share:.1f}%")
    table.add_row("(wall clock)", "", f"{wall:.4f}", f"{100.0 * trace.coverage():.1f}% covered")
    return table


def _top_phases(trace: SolveTrace, limit: int = 3) -> str:
    wall = trace.duration_seconds
    parts = []
    for phase, entry in sorted(
        trace.breakdown().items(), key=lambda item: -item[1]["seconds"]
    )[:limit]:
        share = 100.0 * entry["seconds"] / wall if wall > 0 else 0.0
        parts.append(f"{phase} {share:.0f}%")
    return ", ".join(parts)


def traced_runtime_table(rows: Sequence[Mapping[str, Any]]) -> TextTable:
    """Summary of :func:`traced_runtime_rows`: wall, coverage, top phases."""
    table = TextTable(
        headers=["Case", "Method", "Wall (s)", "Coverage", "Top phases"],
        title="Traced runtime table (cold caches, per-phase spans)",
    )
    for row in rows:
        trace = row["trace"]
        if not isinstance(trace, SolveTrace):
            trace = SolveTrace.from_dict(trace)
        table.add_row(
            row["case"],
            row["method"],
            f"{trace.duration_seconds:.3f}",
            f"{100.0 * trace.coverage():.1f}%",
            _top_phases(trace),
        )
    return table
