"""Counters, gauges and latency histograms with Prometheus text export.

Stdlib-only.  Each instrument family owns one lock ("lock per shard"):
observations touch only their family's lock, never a registry-wide one,
so concurrent request handlers contend only when they update the same
instrument.  Histograms use fixed log-spaced bucket bounds
(:func:`log_buckets`), which keeps ``observe()`` to a ``bisect`` plus
two adds and renders directly as Prometheus cumulative ``_bucket``
samples.

The registry is an instance, not module state: every
``AllocationService`` builds its own, so tests and embedded servers
never fight over metric names.  :func:`validate_prometheus_text` is the
shared exposition-format checker used by the tests and the CI obs-smoke
load generator.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Any, Iterable, Mapping, Sequence

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def log_buckets(start: float = 1e-5, factor: float = 2.0, count: int = 24) -> tuple[float, ...]:
    """Log-spaced histogram bounds: ``start * factor**i`` for i < count.

    The default spans 10 us .. ~84 s at 2x resolution -- wide enough for
    a 35 us warm cache hit and a two-minute exact solve in one family.
    """
    if start <= 0 or factor <= 1.0 or count <= 0:
        raise ValueError("log_buckets needs start > 0, factor > 1, count > 0")
    return tuple(start * factor**i for i in range(count))


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _render_labels(names: Sequence[str], values: Sequence[str], extra: str = "") -> str:
    parts = [f'{name}="{_escape_label_value(value)}"' for name, value in zip(names, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Family:
    """Base for instrument families: name, help text, label names, children."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, label_names: Sequence[str] = ()):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name: {label!r}")
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Any] = {}

    def labels(self, **label_values: Any):
        """The child instrument for one label-value combination."""
        if set(label_values) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, got {tuple(label_values)}"
            )
        key = tuple(str(label_values[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def _child_items(self) -> list[tuple[tuple[str, ...], Any]]:
        with self._lock:
            return sorted(self._children.items())

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def _default_child(self):
        """The unlabelled child (only valid when the family has no labels)."""
        if self.label_names:
            raise ValueError(f"{self.name} is labelled; call .labels(...) first")
        with self._lock:
            child = self._children.get(())
            if child is None:
                child = self._make_child()
                self._children[()] = child
            return child

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for key, child in self._child_items():
            lines.extend(child.render_samples(self.name, self.label_names, key))
        return lines


class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def render_samples(self, name: str, label_names, label_values) -> list[str]:
        labels = _render_labels(label_names, label_values)
        return [f"{name}{labels} {_format_value(self.value)}"]


class Counter(_Family):
    """Monotone counter family (optionally labelled)."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return self._default_child().value


class _GaugeChild:
    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def render_samples(self, name: str, label_names, label_values) -> list[str]:
        labels = _render_labels(label_names, label_values)
        return [f"{name}{labels} {_format_value(self.value)}"]


class Gauge(_Family):
    """Settable gauge family (optionally labelled)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    @property
    def value(self) -> float:
        return self._default_child().value


class _HistogramChild:
    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: tuple[float, ...]):
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> tuple[list[int], float, int]:
        with self._lock:
            return list(self._counts), self._sum, self._count

    def render_samples(self, name: str, label_names, label_values) -> list[str]:
        counts, total, count = self.snapshot()
        lines: list[str] = []
        cumulative = 0
        for bound, bucket_count in zip(self._bounds, counts):
            cumulative += bucket_count
            labels = _render_labels(label_names, label_values, f'le="{_format_value(bound)}"')
            lines.append(f"{name}_bucket{labels} {cumulative}")
        labels = _render_labels(label_names, label_values, 'le="+Inf"')
        lines.append(f"{name}_bucket{labels} {count}")
        plain = _render_labels(label_names, label_values)
        lines.append(f"{name}_sum{plain} {repr(float(total))}")
        lines.append(f"{name}_count{plain} {count}")
        return lines


class Histogram(_Family):
    """Latency histogram family with fixed (log-spaced) bucket bounds."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] | None = None,
        label_names: Sequence[str] = (),
    ):
        super().__init__(name, help_text, label_names)
        bounds = tuple(float(b) for b in (buckets if buckets is not None else log_buckets()))
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must be non-empty and strictly increasing")
        self.bounds = bounds

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.bounds)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    @property
    def count(self) -> int:
        return self._default_child().snapshot()[2]

    @property
    def sum(self) -> float:
        return self._default_child().snapshot()[1]


class MetricsRegistry:
    """Named instruments plus the Prometheus text renderer.

    ``counter``/``gauge``/``histogram`` are get-or-create: registering an
    existing name returns the existing family (and raises if the kind or
    labels disagree), so instrumentation sites can declare their
    instruments idempotently.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _register(self, family: _Family) -> _Family:
        with self._lock:
            existing = self._families.get(family.name)
            if existing is not None:
                if type(existing) is not type(family) or existing.label_names != family.label_names:
                    raise ValueError(
                        f"metric {family.name!r} already registered with a different "
                        f"kind or label set"
                    )
                return existing
            self._families[family.name] = family
            return family

    def counter(self, name: str, help_text: str, label_names: Sequence[str] = ()) -> Counter:
        return self._register(Counter(name, help_text, label_names))  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str, label_names: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge(name, help_text, label_names))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] | None = None,
        label_names: Sequence[str] = (),
    ) -> Histogram:
        return self._register(Histogram(name, help_text, buckets, label_names))  # type: ignore[return-value]

    def get(self, name: str) -> _Family | None:
        with self._lock:
            return self._families.get(name)

    def families(self) -> list[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def render_prometheus(self) -> str:
        """The registry as Prometheus text exposition format 0.0.4."""
        lines: list[str] = []
        for family in self.families():
            lines.extend(family.render())
        return "\n".join(lines) + ("\n" if lines else "")


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?\s+"
    r"(?P<value>[^\s]+)(?:\s+\d+)?$"
)
_LE_RE = re.compile(r'le="([^"]*)"')


def _parse_sample_value(raw: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    return float(raw)


def _label_signature(labels: str | None) -> str:
    """Canonical label key for a sample, ignoring the histogram ``le``."""
    if not labels:
        return ""
    body = labels.strip("{}")
    parts = [part for part in body.split(",") if part and not part.startswith("le=")]
    return ",".join(sorted(parts))


def validate_prometheus_text(text: str) -> list[str]:
    """Check Prometheus text exposition; returns a list of problems.

    Validates what dashboards actually depend on: every sample belongs to
    a family announced by ``# HELP`` + ``# TYPE`` lines (in that order),
    TYPE values are legal, histogram ``le`` bounds ascend with cumulative
    non-decreasing bucket counts, the ``+Inf`` bucket exists and equals
    ``_count``.  An empty return value means the exposition is valid.
    """
    problems: list[str] = []
    helped: set[str] = set()
    typed: dict[str, str] = {}
    # histogram family -> base-label-signature -> [(le, cumulative count)]
    buckets: dict[str, dict[str, list[tuple[float, float]]]] = {}
    counts: dict[str, dict[str, float]] = {}

    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                problems.append(f"line {line_number}: malformed HELP line")
                continue
            helped.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                problems.append(f"line {line_number}: malformed TYPE line")
                continue
            _, _, name, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                problems.append(f"line {line_number}: unknown metric type {kind!r}")
            if name in typed:
                problems.append(f"line {line_number}: duplicate TYPE for {name}")
            if name not in helped:
                problems.append(f"line {line_number}: TYPE for {name} precedes its HELP")
            typed[name] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            problems.append(f"line {line_number}: unparsable sample {line!r}")
            continue
        name, labels, raw_value = match.group("name", "labels", "value")
        try:
            value = _parse_sample_value(raw_value)
        except ValueError:
            problems.append(f"line {line_number}: bad sample value {raw_value!r}")
            continue
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            stripped = name[: -len(suffix)] if name.endswith(suffix) else None
            if stripped and typed.get(stripped) == "histogram":
                base = stripped
                break
        if base not in typed:
            problems.append(f"line {line_number}: sample {name} has no TYPE line")
            continue
        if typed[base] == "histogram" and name.endswith("_bucket"):
            le_match = _LE_RE.search(labels or "")
            if not le_match:
                problems.append(f"line {line_number}: histogram bucket without le label")
                continue
            signature = _label_signature(labels)
            try:
                bound = _parse_sample_value(le_match.group(1))
            except ValueError:
                problems.append(f"line {line_number}: bad le bound {le_match.group(1)!r}")
                continue
            buckets.setdefault(base, {}).setdefault(signature, []).append((bound, value))
        elif typed[base] == "histogram" and name.endswith("_count"):
            counts.setdefault(base, {})[_label_signature(labels)] = value

    for family, by_signature in buckets.items():
        for signature, series in by_signature.items():
            bounds = [bound for bound, _ in series]
            values = [count for _, count in series]
            if bounds != sorted(bounds):
                problems.append(f"{family}: bucket le bounds not ascending")
            if any(b < a for a, b in zip(values, values[1:])):
                problems.append(f"{family}: bucket counts not cumulative (decrease)")
            if not bounds or bounds[-1] != math.inf:
                problems.append(f"{family}: missing +Inf bucket")
            elif family in counts and counts[family].get(signature) not in (None, values[-1]):
                problems.append(f"{family}: _count disagrees with +Inf bucket")

    for name in typed:
        if name not in helped:
            problems.append(f"{name}: TYPE without HELP")
    return problems
