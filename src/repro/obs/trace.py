"""Nested-span tracing for the solve path.

A :class:`SolveTrace` records a tree of :class:`Span` objects -- one per
instrumented phase (``gp_step``, ``bb_node``, ``bin_pack``, ...) -- with
start offsets, durations and free-form attributes.  The active trace is
held in a :class:`contextvars.ContextVar`, so traces are isolated per
thread (each ``ThreadingHTTPServer`` request handler gets its own) and
never leak into process-pool workers (where the var is unset and every
``span()`` is a no-op).

Cost model: with no active trace, ``span()`` performs exactly one
``ContextVar.get()`` and returns a shared no-op context-manager
singleton -- no allocation, no clock read.  That is the disabled
overhead the perf gate holds the runtime table to.  With a trace active,
each span costs two ``perf_counter()`` reads and one small object.

Enabling is a caller decision: ``start_trace()`` always records;
:func:`tracing_enabled` just reports the ``REPRO_TRACE`` environment
default so entry points (CLI, ``repro serve``) know whether to start
traces without each inventing its own flag parsing.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterable, Iterator, Mapping


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() not in ("", "0", "false", "no", "off")


def tracing_enabled() -> bool:
    """Whether ``REPRO_TRACE`` asks entry points to record traces."""
    return _env_flag("REPRO_TRACE")


class Span:
    """One timed phase: name, offset from trace start, duration, children."""

    __slots__ = ("name", "start_seconds", "duration_seconds", "attributes", "children")

    def __init__(self, name: str, start_seconds: float, attributes: dict[str, Any] | None = None):
        self.name = name
        self.start_seconds = start_seconds
        self.duration_seconds = 0.0
        self.attributes: dict[str, Any] = attributes or {}
        self.children: list[Span] = []

    def as_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "name": self.name,
            "start_seconds": self.start_seconds,
            "duration_seconds": self.duration_seconds,
        }
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        if self.children:
            payload["children"] = [child.as_dict() for child in self.children]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Span":
        span = cls(
            str(payload["name"]),
            float(payload.get("start_seconds", 0.0)),
            dict(payload.get("attributes", {})),
        )
        span.duration_seconds = float(payload.get("duration_seconds", 0.0))
        span.children = [cls.from_dict(child) for child in payload.get("children", [])]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration_seconds * 1e3:.3f} ms, children={len(self.children)})"


class _ActiveSpan:
    """Context manager closing one span on a specific trace's stack."""

    __slots__ = ("_trace", "_span", "_start")

    def __init__(self, trace: "SolveTrace", span: Span, start: float):
        self._trace = trace
        self._span = span
        self._start = start

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._span.duration_seconds = time.perf_counter() - self._start
        if exc_type is not None:
            self._span.attributes.setdefault("error", exc_type.__name__)
        stack = self._trace._stack
        if stack and stack[-1] is self._span:
            stack.pop()
        return False


class _NullSpan:
    """Shared no-op context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()

_active_trace: ContextVar["SolveTrace | None"] = ContextVar("repro_active_trace", default=None)


class SolveTrace:
    """A tree of spans for one request/solve, rooted at ``name``."""

    def __init__(self, name: str, attributes: dict[str, Any] | None = None):
        self.name = name
        self.started_unix = time.time()
        self._origin = time.perf_counter()
        self.root = Span(name, 0.0, attributes)
        self._stack: list[Span] = [self.root]

    @property
    def attributes(self) -> dict[str, Any]:
        return self.root.attributes

    @property
    def duration_seconds(self) -> float:
        return self.root.duration_seconds

    def span(self, name: str, attributes: dict[str, Any] | None = None) -> _ActiveSpan:
        start = time.perf_counter()
        span = Span(name, start - self._origin, attributes)
        parent = self._stack[-1] if self._stack else self.root
        parent.children.append(span)
        self._stack.append(span)
        return _ActiveSpan(self, span, start)

    def finish(self) -> None:
        self.root.duration_seconds = time.perf_counter() - self._origin
        del self._stack[1:]

    def breakdown(self) -> dict[str, dict[str, float]]:
        """Aggregate the root's direct children by phase name.

        Returns ``{phase: {"count": n, "seconds": total}}`` in first-seen
        order; together with :meth:`coverage` this answers "where did the
        wall clock go" for one solve.
        """
        phases: dict[str, dict[str, float]] = {}
        for child in self.root.children:
            entry = phases.setdefault(child.name, {"count": 0, "seconds": 0.0})
            entry["count"] += 1
            entry["seconds"] += child.duration_seconds
        return phases

    def coverage(self) -> float:
        """Fraction of the root wall clock covered by top-level phases."""
        if self.root.duration_seconds <= 0.0:
            return 1.0 if not self.root.children else 0.0
        covered = sum(child.duration_seconds for child in self.root.children)
        return covered / self.root.duration_seconds

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "started_unix": self.started_unix,
            "duration_seconds": self.root.duration_seconds,
            "root": self.root.as_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SolveTrace":
        trace = cls(str(payload["name"]))
        trace.started_unix = float(payload.get("started_unix", 0.0))
        trace.root = Span.from_dict(payload["root"])
        trace._stack = [trace.root]
        return trace

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SolveTrace({self.name!r}, {self.root.duration_seconds * 1e3:.3f} ms)"


def current_trace() -> SolveTrace | None:
    """The trace active on this thread/context, if any."""
    return _active_trace.get()


def span(name: str, **attributes: Any):
    """Open a nested span on the active trace; no-op when tracing is off.

    The keyword attributes are only materialised into a dict when a trace
    is active, so instrumented hot paths stay allocation-free by passing
    no attributes (or setting them on the yielded span instead).
    """
    trace = _active_trace.get()
    if trace is None:
        return NULL_SPAN
    return trace.span(name, attributes or None)


@contextmanager
def start_trace(name: str, **attributes: Any) -> Iterator[SolveTrace]:
    """Record a :class:`SolveTrace` for the duration of the ``with`` block.

    Nesting is allowed; the inner trace shadows the outer one on this
    context until the block exits.
    """
    trace = SolveTrace(name, attributes or None)
    token = _active_trace.set(trace)
    try:
        yield trace
    finally:
        _active_trace.reset(token)
        trace.finish()


class TraceStore:
    """Bounded LRU of recorded traces (as JSON-safe dicts), keyed by
    request fingerprint; backs the service's ``GET /trace/<fingerprint>``."""

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ValueError("TraceStore capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._lock = threading.Lock()

    def put(self, key: str, trace: "SolveTrace | Mapping[str, Any]") -> None:
        payload = trace.as_dict() if isinstance(trace, SolveTrace) else dict(trace)
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = payload
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def get(self, key: str) -> dict[str, Any] | None:
        with self._lock:
            payload = self._entries.get(key)
            if payload is not None:
                self._entries.move_to_end(key)
            return payload

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def traces_to_jsonl(traces: Iterable["SolveTrace | Mapping[str, Any]"]) -> str:
    """Serialize traces as JSON lines (one trace document per line)."""
    lines = []
    for trace in traces:
        payload = trace.as_dict() if isinstance(trace, SolveTrace) else dict(trace)
        lines.append(json.dumps(payload, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def write_traces_jsonl(traces: Iterable["SolveTrace | Mapping[str, Any]"], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(traces_to_jsonl(traces))
