"""Observability substrate: phase-level tracing and a metrics registry.

Zero-dependency by design (stdlib only) so the solver core can be
instrumented without conditional imports.  Two halves:

- :mod:`repro.obs.trace` -- nested spans recorded into a per-request
  :class:`SolveTrace`.  Off by default: ``span()`` costs one ContextVar
  read returning a shared no-op singleton until a trace is started via
  ``start_trace()`` (``REPRO_TRACE=1`` / ``repro serve --trace`` decide
  whether callers start one).
- :mod:`repro.obs.metrics` -- counters, gauges and fixed-log-bucket
  latency histograms with one lock per instrument, rendered as
  Prometheus text exposition format 0.0.4.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
    validate_prometheus_text,
)
from .trace import (
    Span,
    SolveTrace,
    TraceStore,
    current_trace,
    span,
    start_trace,
    tracing_enabled,
    traces_to_jsonl,
    write_traces_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "log_buckets",
    "validate_prometheus_text",
    "Span",
    "SolveTrace",
    "TraceStore",
    "current_trace",
    "span",
    "start_trace",
    "tracing_enabled",
    "traces_to_jsonl",
    "write_traces_jsonl",
]
