"""The routing front-end of the multi-process serving topology.

One :class:`RouterService` sits in front of a :class:`~repro.service.pool.
WorkerPool` and speaks the exact HTTP surface of a single-process
allocation server -- ``/solve``, ``/solve_batch`` (sync and async),
``/jobs``, ``/health``, ``/stats``, ``/metrics``, ``/trace`` -- so every
existing client works unchanged.  What it adds:

* **ownership routing** -- each request document's canonical fingerprint
  is mapped onto a shard group by the consistent hash ring of
  :mod:`repro.service.hashing`; ``/solve`` forwards the raw body bytes to
  the owning worker (no re-serialisation), batches are split by ring
  ownership, fanned out concurrently, and the per-worker responses merged
  back **in request order**;
* **composite async jobs** -- an async batch becomes one router job id
  (``rjob-...``) backed by one worker job per owning group; polling the
  router id polls the parts and merges status/report/outcomes, so a
  client cannot tell it is talking to N processes;
* **fleet observability** -- ``/stats`` sums every counter section across
  workers (and nests the per-worker documents), ``/metrics`` merges the
  workers' Prometheus expositions into one valid exposition with a
  ``worker`` label on every sample;
* **unavailability as backpressure** -- a request whose owning worker is
  down (crashed and not yet replayed/restarted) is answered ``503`` +
  ``Retry-After``, counted in the same admission counters the
  single-process server uses, so clients ride through a worker crash with
  their existing retry policy;
* **online resize** -- ``POST /admin/resize`` starts workers for new
  groups and swaps the ring only once they are healthy; surviving groups
  keep their warm stores, and only the ~1/(N+1) of keys the ring moves go
  cold (the hashing module's minimal-movement guarantee).

Fingerprinting a request requires parsing the problem document, which is
the expensive part of the submit path; the router memoizes ``raw document
JSON -> fingerprint`` in a bounded LRU so duplicate-heavy traffic (the
warm-replay regime this topology exists for) parses each distinct request
once and routes every repeat with a dictionary hit.
"""

from __future__ import annotations

import http.client
import json
import math
import sys
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Iterable, Mapping, Sequence

from .. import __version__
from ..obs.metrics import MetricsRegistry
from ..workloads.serialization import SerializationError
from .batch import request_from_dict
from .hashing import DEFAULT_REPLICAS, HashRing, ring
from .pool import WorkerPool
from .server import BackpressureError, install_shutdown_signals
from .store import CacheStats

#: Retry hint handed to clients whose owning worker is down: the pool's
#: restart-and-replay cycle is sub-second for small WALs, so the floor.
WORKER_DOWN_RETRY_AFTER_SECONDS = 1.0

#: Report fields summed across per-worker batch reports (``runtime_seconds``
#: is a max -- the parts ran concurrently -- and ``solver_counters`` is a
#: dict merge).
_REPORT_SUM_FIELDS = (
    "total",
    "unique",
    "duplicates",
    "memory_hits",
    "disk_hits",
    "solves",
    "groups",
)


class WorkerUnavailableError(RuntimeError):
    """The owning worker of a request is down or unreachable."""

    def __init__(self, group: int):
        super().__init__(
            f"shard group {group} is unavailable (worker down or restarting); "
            "retry later"
        )
        self.group = group


class _FingerprintMemo:
    """Bounded LRU of raw request-document JSON -> canonical fingerprint."""

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self._entries: "OrderedDict[str, str]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def fingerprint_of(self, document: Mapping[str, Any]) -> str:
        key = json.dumps(document, sort_keys=True, separators=(",", ":"))
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached
            self.misses += 1
        fingerprint = request_from_dict(document).fingerprint()
        with self._lock:
            self._entries[key] = fingerprint
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return fingerprint


# --------------------------------------------------------------------------- #
# Prometheus merging
# --------------------------------------------------------------------------- #
def inject_label(sample_line: str, name: str, value: str) -> str:
    """Add one label to a Prometheus sample line (prepended to existing)."""
    brace = sample_line.find("{")
    space = sample_line.find(" ")
    if brace != -1 and (space == -1 or brace < space):
        return f'{sample_line[: brace + 1]}{name}="{value}",{sample_line[brace + 1 :]}'
    return f'{sample_line[:space]}{{{name}="{value}"}}{sample_line[space:]}'


def merge_prometheus(expositions: "Iterable[tuple[str, str]]") -> str:
    """Merge ``(worker_label, exposition_text)`` pairs into one exposition.

    Every family's ``HELP``/``TYPE`` header is emitted exactly once (first
    writer wins) with all of its samples contiguous below it -- the shape
    :func:`repro.obs.metrics.validate_prometheus_text` enforces -- and each
    sample gains a ``worker="<label>"`` label identifying its process.
    """
    order: list[str] = []
    families: dict[str, dict[str, Any]] = {}

    def family(name: str) -> dict[str, Any]:
        entry = families.get(name)
        if entry is None:
            entry = {"help": None, "type": None, "samples": []}
            families[name] = entry
            order.append(name)
        return entry

    for label, text in expositions:
        current: str | None = None
        for line in text.splitlines():
            if not line.strip():
                continue
            if line.startswith("# HELP "):
                name = line.split(" ", 3)[2]
                entry = family(name)
                if entry["help"] is None:
                    entry["help"] = line
                current = name
            elif line.startswith("# TYPE "):
                name = line.split(" ", 3)[2]
                entry = family(name)
                if entry["type"] is None:
                    entry["type"] = line
                current = name
            elif line.startswith("#"):
                continue
            else:
                # Expositions emit samples inside their family block, so the
                # running header names the family even for suffixed samples
                # (histogram _bucket/_sum/_count).
                sample_name = line.split("{", 1)[0].split(" ", 1)[0]
                owner = (
                    current
                    if current is not None and sample_name.startswith(current)
                    else sample_name
                )
                family(owner)["samples"].append(inject_label(line, "worker", label))
    lines: list[str] = []
    for name in order:
        entry = families[name]
        if entry["help"] is not None:
            lines.append(entry["help"])
        if entry["type"] is not None:
            lines.append(entry["type"])
        lines.extend(entry["samples"])
    return "\n".join(lines) + "\n" if lines else ""


# --------------------------------------------------------------------------- #
# Composite async jobs
# --------------------------------------------------------------------------- #
class RouterJobPart:
    """One group's slice of a composite job.

    Keeps the slice's request *documents* as well as its worker job id: a
    worker that crashed **after** finishing the part (and so never replays
    it from its WAL) answers 404 for the old id once restarted, and the
    router re-submits the slice from these documents -- the deduping batch
    path answers it from the result store, so the retry costs lookups, not
    solves.
    """

    __slots__ = ("group", "job_id", "indices", "documents")

    def __init__(
        self,
        group: int,
        job_id: str,
        indices: "list[int]",
        documents: "list[Mapping[str, Any]]",
    ):
        self.group = group
        self.job_id = job_id
        self.indices = indices
        self.documents = documents


class RouterJob:
    """One async batch split across workers: the id mapping + index plan."""

    __slots__ = ("id", "created_unix", "total", "parts", "lock")

    def __init__(
        self,
        job_id: str,
        created_unix: float,
        total: int,
        parts: "list[RouterJobPart]",
    ):
        self.id = job_id
        self.created_unix = created_unix
        self.total = total
        self.parts = parts
        #: Serialises part re-submission so concurrent polls of the same
        #: composite job cannot double-resubmit a lost part.
        self.lock = threading.Lock()


class RouterService:
    """Route the allocation-service HTTP surface across a worker pool.

    Parameters
    ----------
    pool:
        The :class:`~repro.service.pool.WorkerPool` to route over.  The
        router owns it by default (``close()`` drains the workers); pass
        ``own_pool=False`` when the caller manages the pool's lifetime.
    replicas:
        Virtual nodes per group on the hash ring.
    job_retention:
        Composite async jobs retained for polling (oldest pruned first;
        the underlying worker jobs are durable regardless).
    fingerprint_memo:
        Entries in the document->fingerprint routing memo.
    proxy_timeout_seconds:
        Per-request timeout on the router->worker hop.
    """

    def __init__(
        self,
        pool: WorkerPool,
        replicas: int = DEFAULT_REPLICAS,
        job_retention: int = 256,
        fingerprint_memo: int = 4096,
        proxy_timeout_seconds: float = 120.0,
        own_pool: bool = True,
    ):
        self.pool = pool
        self.own_pool = own_pool
        self.replicas = replicas
        self.proxy_timeout_seconds = proxy_timeout_seconds
        self.started_unix = time.time()
        self._ring = ring(pool.num_groups, replicas)
        self._ring_lock = threading.Lock()
        self._resize_lock = threading.Lock()
        self._memo = _FingerprintMemo(capacity=fingerprint_memo)
        self._local = threading.local()
        self._lock = threading.Lock()
        self._requests = 0
        self._batches = 0
        self._resizes = 0
        self._rejected: dict[str, int] = {"429": 0, "503": 0}
        self._part_resubmits = 0
        self._jobs: "OrderedDict[str, RouterJob]" = OrderedDict()
        self._next_job = 0
        self.job_retention = job_retention
        self._fanout = ThreadPoolExecutor(
            max_workers=16, thread_name_prefix="repro-router-fanout"
        )
        self.metrics = MetricsRegistry()
        self._http_requests_total = self.metrics.counter(
            "repro_http_requests_total",
            "HTTP requests served, by method and status code.",
            label_names=("method", "status"),
        )
        self._admission_rejected_total = self.metrics.counter(
            "repro_admission_rejected_total",
            "Requests refused for backpressure, by HTTP status code.",
            label_names=("code",),
        )
        self._proxied_total = self.metrics.counter(
            "repro_router_proxied_total",
            "Requests proxied to workers, by shard group.",
            label_names=("group",),
        )
        self._routing_memo_hits = self.metrics.counter(
            "repro_router_fingerprint_memo_hits_total",
            "Routing fingerprints answered from the document memo.",
        )
        self._counter_part_resubmits = self.metrics.counter(
            "repro_router_part_resubmits_total",
            "Composite-job parts re-submitted after a worker lost the job id.",
        )
        self._groups_gauge = self.metrics.gauge(
            "repro_router_groups", "Shard groups on the hash ring."
        )
        self._healthy_gauge = self.metrics.gauge(
            "repro_router_healthy_groups", "Shard groups with a live worker."
        )

    # ------------------------------------------------------------------ #
    # Ring / routing
    # ------------------------------------------------------------------ #
    @property
    def ring(self) -> HashRing:
        with self._ring_lock:
            return self._ring

    def group_of(self, fingerprint: str) -> int:
        return self.ring.group_of(fingerprint)

    def fingerprint_of(self, document: Mapping[str, Any]) -> str:
        before = self._memo.hits
        fingerprint = self._memo.fingerprint_of(document)
        if self._memo.hits > before:
            self._routing_memo_hits.inc()
        return fingerprint

    def resize(self, num_groups: int) -> dict[str, Any]:
        """Grow the pool to ``num_groups`` shard groups, online.

        Each new worker is spawned and *healthy* before the ring advances
        to include it, so no request is ever routed at a group that is not
        serving; shrinking is not supported (it would orphan owned keys).
        """
        with self._resize_lock:
            current = self.ring.num_groups
            if num_groups < current:
                raise ValueError(
                    f"cannot shrink from {current} to {num_groups} groups"
                )
            added = []
            while self.ring.num_groups < num_groups:
                group = self.pool.add_group()
                added.append(group)
                with self._ring_lock:
                    self._ring = self._ring.with_num_groups(self._ring.num_groups + 1)
                with self._lock:
                    self._resizes += 1
            return {"num_groups": self.ring.num_groups, "added_groups": added}

    # ------------------------------------------------------------------ #
    # Worker transport (keep-alive, per thread)
    # ------------------------------------------------------------------ #
    def _connections(self) -> dict[str, http.client.HTTPConnection]:
        conns = getattr(self._local, "conns", None)
        if conns is None:
            conns = {}
            self._local.conns = conns
        return conns

    def _proxy(
        self,
        group: int,
        method: str,
        path: str,
        body: bytes | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """One router->worker HTTP round trip; raises
        :class:`WorkerUnavailableError` when the group has no live worker.

        A stale keep-alive connection (the worker restarted between our
        requests) is retried once on a fresh socket before giving up.
        """
        url = self.pool.url_of(group)
        if url is None:
            raise WorkerUnavailableError(group)
        netloc = url[len("http://") :]
        conns = self._connections()
        last_error: Exception | None = None
        for attempt in range(2):
            conn = conns.get(netloc)
            if conn is None:
                host, _, port = netloc.rpartition(":")
                conn = http.client.HTTPConnection(
                    host, int(port), timeout=self.proxy_timeout_seconds
                )
                conns[netloc] = conn
            try:
                headers = {"Content-Type": "application/json"} if body else {}
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
                self._proxied_total.labels(group=str(group)).inc()
                return response.status, dict(response.getheaders()), data
            except (http.client.HTTPException, ConnectionError, OSError) as error:
                last_error = error
                conn.close()
                conns.pop(netloc, None)
        raise WorkerUnavailableError(group) from last_error

    def _proxy_json(
        self, group: int, method: str, path: str, payload: Any = None
    ) -> tuple[int, dict[str, str], Any]:
        body = (
            json.dumps(payload, allow_nan=False).encode("utf-8")
            if payload is not None
            else None
        )
        status, headers, data = self._proxy(group, method, path, body=body)
        try:
            document = json.loads(data.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            document = {"error": f"worker {group} returned a non-JSON body"}
        return status, headers, document

    def _reject(self, status: int, message: str) -> BackpressureError:
        code = str(status)
        self._admission_rejected_total.labels(code=code).inc()
        with self._lock:
            self._rejected[code] = self._rejected.get(code, 0) + 1
        return BackpressureError(status, WORKER_DOWN_RETRY_AFTER_SECONDS, message)

    def _propagate_backpressure(
        self, status: int, headers: Mapping[str, str], document: Any
    ) -> BackpressureError:
        """Re-raise a worker's own 429/503 with its Retry-After intact."""
        code = str(status)
        self._admission_rejected_total.labels(code=code).inc()
        with self._lock:
            self._rejected[code] = self._rejected.get(code, 0) + 1
        retry_after = WORKER_DOWN_RETRY_AFTER_SECONDS
        if isinstance(document, Mapping):
            try:
                retry_after = float(document.get("retry_after_seconds", retry_after))
            except (TypeError, ValueError):
                pass
        message = (
            str(document.get("error"))
            if isinstance(document, Mapping) and "error" in document
            else f"worker refused with {status}"
        )
        return BackpressureError(status, retry_after, message)

    # ------------------------------------------------------------------ #
    # /solve
    # ------------------------------------------------------------------ #
    def solve_raw(self, body: bytes) -> tuple[int, dict[str, str], bytes]:
        """Route one ``/solve`` body to its owner, forwarding the raw bytes.

        The response bytes come back verbatim too, so a client talking to
        the router receives byte-identical ``/solve`` answers to one
        talking straight at a worker.
        """
        try:
            document = json.loads(body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise SerializationError(f"request body is not valid JSON: {error}") from error
        fingerprint = self.fingerprint_of(document)
        group = self.group_of(fingerprint)
        with self._lock:
            self._requests += 1
        status, headers, data = self._proxy(group, "POST", "/solve", body=body)
        return status, headers, data

    # ------------------------------------------------------------------ #
    # /solve_batch
    # ------------------------------------------------------------------ #
    def _split_batch(
        self, documents: Sequence[Mapping[str, Any]]
    ) -> "dict[int, list[int]]":
        fingerprints = [self.fingerprint_of(document) for document in documents]
        return self.ring.partition(fingerprints)

    def _fan_out(
        self, calls: "list[tuple[int, Callable[[], Any]]]"
    ) -> "list[tuple[int, Any]]":
        """Run per-group calls concurrently; single-group batches inline."""
        if len(calls) == 1:
            group, call = calls[0]
            return [(group, call())]
        futures = [(group, self._fanout.submit(call)) for group, call in calls]
        results = []
        first_error: BaseException | None = None
        for group, future in futures:
            try:
                results.append((group, future.result()))
            except BaseException as error:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error
        return results

    def _merge_reports(
        self, parts: "Iterable[tuple[list[int], Mapping[str, Any]]]", total: int
    ) -> tuple[dict[str, Any], list[Any], list[Any]]:
        """Merge per-worker batch responses into request order.

        ``parts`` pairs each group's original request indices with its
        response document (``report``/``fingerprints``/``outcomes``).
        ``unique`` sums correctly because each fingerprint is owned by
        exactly one group; ``runtime_seconds`` is the max because the
        parts ran concurrently.
        """
        report: dict[str, Any] = {field: 0 for field in _REPORT_SUM_FIELDS}
        report["runtime_seconds"] = 0.0
        counters: dict[str, int] = {}
        fingerprints: list[Any] = [None] * total
        outcomes: list[Any] = [None] * total
        for indices, document in parts:
            part_report = document["report"]
            for field in _REPORT_SUM_FIELDS:
                report[field] += part_report.get(field, 0)
            report["runtime_seconds"] = max(
                report["runtime_seconds"], part_report.get("runtime_seconds", 0.0)
            )
            for name, value in part_report.get("solver_counters", {}).items():
                counters[name] = counters.get(name, 0) + value
            part_prints = document.get("fingerprints") or []
            part_outcomes = document.get("outcomes") or []
            for position, index in enumerate(indices):
                if position < len(part_prints):
                    fingerprints[index] = part_prints[position]
                if position < len(part_outcomes):
                    outcomes[index] = part_outcomes[position]
        report["solver_counters"] = counters
        return report, fingerprints, outcomes

    def solve_batch_documents(
        self, documents: Sequence[Mapping[str, Any]]
    ) -> dict[str, Any]:
        """Split a sync batch by ownership, fan out, merge in request order."""
        owned = self._split_batch(documents)
        with self._lock:
            self._requests += len(documents)
            self._batches += 1

        def call_for(group: int, indices: "list[int]") -> Callable[[], Any]:
            payload = {"requests": [documents[index] for index in indices]}

            def call() -> Any:
                status, headers, document = self._proxy_json(
                    group, "POST", "/solve_batch", payload
                )
                if status in (429, 503):
                    raise self._propagate_backpressure(status, headers, document)
                if status != 200:
                    message = (
                        document.get("error", f"status {status}")
                        if isinstance(document, Mapping)
                        else f"status {status}"
                    )
                    raise SerializationError(str(message))
                return document

            return call

        calls = [(group, call_for(group, indices)) for group, indices in sorted(owned.items())]
        responses = dict(self._fan_out(calls))
        report, fingerprints, outcomes = self._merge_reports(
            [(owned[group], responses[group]) for group in sorted(owned)],
            total=len(documents),
        )
        return {"report": report, "fingerprints": fingerprints, "outcomes": outcomes}

    def submit_batch_documents(
        self, documents: Sequence[Mapping[str, Any]]
    ) -> dict[str, Any]:
        """Split an async batch, submit one worker job per owning group, and
        register the composite router job.  The 202 is returned only once
        *every* part is acknowledged (each worker fsynced its sub-batch), so
        the router's ack inherits the workers' durability."""
        owned = self._split_batch(documents)
        with self._lock:
            self._requests += len(documents)
            self._batches += 1

        def call_for(group: int, indices: "list[int]") -> Callable[[], Any]:
            payload = {
                "mode": "async",
                "requests": [documents[index] for index in indices],
            }

            def call() -> Any:
                status, headers, document = self._proxy_json(
                    group, "POST", "/solve_batch", payload
                )
                if status in (429, 503):
                    raise self._propagate_backpressure(status, headers, document)
                if status != 202 or not isinstance(document, Mapping):
                    message = (
                        document.get("error", f"status {status}")
                        if isinstance(document, Mapping)
                        else f"status {status}"
                    )
                    raise SerializationError(str(message))
                return document

            return call

        calls = [(group, call_for(group, indices)) for group, indices in sorted(owned.items())]
        responses = dict(self._fan_out(calls))
        created = time.time()
        parts = [
            RouterJobPart(
                group=group,
                job_id=str(responses[group]["job_id"]),
                indices=owned[group],
                documents=[dict(documents[index]) for index in owned[group]],
            )
            for group in sorted(owned)
        ]
        with self._lock:
            self._next_job += 1
            job = RouterJob(
                job_id=f"rjob-{self._next_job:08d}",
                created_unix=created,
                total=len(documents),
                parts=parts,
            )
            self._jobs[job.id] = job
            while len(self._jobs) > self.job_retention:
                self._jobs.popitem(last=False)
        return {
            "job_id": job.id,
            "status": "queued",
            "total": job.total,
            "created_unix": job.created_unix,
            "started_unix": None,
            "finished_unix": None,
            "wait_seconds": None,
            "run_seconds": None,
            "parts": [
                {"group": part.group, "job_id": part.job_id, "count": len(part.indices)}
                for part in parts
            ],
        }

    # ------------------------------------------------------------------ #
    # Composite job polling
    # ------------------------------------------------------------------ #
    def job(self, job_id: str, include_outcomes: bool = True) -> dict[str, Any] | None:
        """Merged document of one composite job, or ``None`` for unknown ids.

        Polls each part's owning worker; an unreachable owner raises
        :class:`WorkerUnavailableError` (the HTTP layer's 503 +
        ``Retry-After``), because a partial answer about a job's status
        would be a lie -- the part on the dead worker is journaled and
        will finish after replay.

        A worker that answers 404 for a part is one that crashed after
        finishing it (the WAL only replays *unfinished* jobs, and the job
        document itself lived in the dead process) or pruned it from
        retention.  Either way the slice is re-submitted from the part's
        retained request documents; deduping against the worker's result
        store makes the retry answer from cache rather than re-solving.
        """
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            return None
        parts: "list[tuple[list[int], dict[str, Any]]]" = []
        for part in job.parts:
            status, _, document = self._proxy_json(
                part.group, "GET", f"/jobs/{part.job_id}"
            )
            if status == 404:
                document = self._resubmit_part(job, part)
                parts.append((part.indices, dict(document)))
                continue
            if status != 200 or not isinstance(document, Mapping):
                raise WorkerUnavailableError(part.group)
            parts.append((part.indices, dict(document)))
        return self._merge_job(job, parts, include_outcomes=include_outcomes)

    def _resubmit_part(self, job: RouterJob, part: RouterJobPart) -> dict[str, Any]:
        """Re-submit one lost part and return a pollable part document.

        Serialised per composite job so concurrent polls cannot fork the
        part into two worker jobs.  The winner swaps ``part.job_id`` to the
        new worker job; losers re-read the (possibly already finished) new
        id instead of submitting again.
        """
        with job.lock:
            status, _, document = self._proxy_json(
                part.group, "GET", f"/jobs/{part.job_id}"
            )
            if status == 200 and isinstance(document, Mapping):
                return dict(document)
            if status != 404:
                raise WorkerUnavailableError(part.group)
            payload = {"mode": "async", "requests": part.documents}
            status, headers, document = self._proxy_json(
                part.group, "POST", "/solve_batch", payload
            )
            if status in (429, 503):
                raise self._propagate_backpressure(status, headers, document)
            if status != 202 or not isinstance(document, Mapping):
                raise WorkerUnavailableError(part.group)
            part.job_id = str(document["job_id"])
            with self._lock:
                self._part_resubmits += 1
            self._counter_part_resubmits.inc()
            return dict(document)

    def _merge_job(
        self,
        job: RouterJob,
        parts: "list[tuple[list[int], dict[str, Any]]]",
        include_outcomes: bool,
    ) -> dict[str, Any]:
        statuses = [document["status"] for _, document in parts]
        if any(status == "failed" for status in statuses):
            status = "failed"
        elif all(status == "done" for status in statuses):
            status = "done"
        elif any(status in ("running", "done") for status in statuses):
            status = "running"
        else:
            status = "queued"
        started = [
            document.get("started_unix")
            for _, document in parts
            if document.get("started_unix") is not None
        ]
        finished = [
            document.get("finished_unix")
            for _, document in parts
            if document.get("finished_unix") is not None
        ]
        started_unix = min(started) if started else None
        terminal = status in ("done", "failed")
        finished_unix = max(finished) if terminal and len(finished) == len(parts) else None
        document: dict[str, Any] = {
            "job_id": job.id,
            "status": status,
            "total": job.total,
            "created_unix": job.created_unix,
            "started_unix": started_unix,
            "finished_unix": finished_unix,
            "wait_seconds": (
                max(0.0, started_unix - job.created_unix)
                if started_unix is not None
                else None
            ),
            "run_seconds": (
                max(0.0, finished_unix - started_unix)
                if started_unix is not None and finished_unix is not None
                else None
            ),
        }
        if any(part.get("recovered") for _, part in parts):
            document["recovered"] = True
        errors = [part["error"] for _, part in parts if part.get("error")]
        if errors:
            document["error"] = "; ".join(str(error) for error in errors)
        if status == "done":
            report, fingerprints, outcomes = self._merge_reports(
                [
                    (indices, part)
                    for indices, part in parts
                ],
                total=job.total,
            )
            document["report"] = report
            document["fingerprints"] = fingerprints
            if include_outcomes:
                document["outcomes"] = outcomes
        return document

    def list_jobs(self) -> list[dict[str, Any]]:
        """Merged summaries of the retained composite jobs, oldest first.

        A job with an unreachable part is reported with status
        ``"unavailable"`` rather than failing the whole listing.
        """
        with self._lock:
            jobs = list(self._jobs.values())
        summaries = []
        for job in jobs:
            try:
                summary = self.job(job.id, include_outcomes=False)
            except WorkerUnavailableError:
                summary = {
                    "job_id": job.id,
                    "status": "unavailable",
                    "total": job.total,
                    "created_unix": job.created_unix,
                }
            if summary is not None:
                summary.pop("fingerprints", None)
                summaries.append(summary)
        return summaries

    # ------------------------------------------------------------------ #
    # /trace
    # ------------------------------------------------------------------ #
    def trace(self, fingerprint: str) -> tuple[int, Any]:
        """Proxy ``/trace/<fingerprint>`` to the owning worker."""
        group = self.group_of(fingerprint)
        status, _, document = self._proxy_json(group, "GET", f"/trace/{fingerprint}")
        return status, document

    # ------------------------------------------------------------------ #
    # Aggregated observability
    # ------------------------------------------------------------------ #
    def health(self) -> dict[str, Any]:
        status_rows = self.pool.worker_status()
        healthy = sum(1 for row in status_rows if row["healthy"])
        return {
            "status": "ok",
            "uptime_seconds": time.time() - self.started_unix,
            "groups": len(status_rows),
            "healthy_groups": healthy,
        }

    def stats(self) -> dict[str, Any]:
        """Fleet stats: every worker's counters summed + nested per worker.

        Unreachable workers are skipped (listed in ``unreachable_groups``)
        so a crashed group never takes ``/stats`` down with it.
        """
        per_worker: dict[str, Any] = {}
        unreachable: list[int] = []
        for group in self.pool.groups():
            try:
                status, _, document = self._proxy_json(group, "GET", "/stats")
            except WorkerUnavailableError:
                unreachable.append(group)
                continue
            if status != 200 or not isinstance(document, Mapping):
                unreachable.append(group)
                continue
            per_worker[str(group)] = dict(document)

        service_totals = {"requests": 0, "batches": 0, "solves": 0}
        cache_totals = CacheStats()
        cache_sizes: dict[str, int] = {}
        jobs_totals: dict[str, Any] = {}
        solver_totals: dict[str, int] = {}
        admission_totals = {"rejected_429": 0, "rejected_503": 0}
        wal_totals: dict[str, Any] = {"enabled": False}
        for document in per_worker.values():
            for key in service_totals:
                service_totals[key] += document.get("service", {}).get(key, 0)
            cache_totals.add(CacheStats(**{
                key: document.get("cache", {}).get(key, 0)
                for key in (
                    "memory_hits", "disk_hits", "misses", "puts", "evictions",
                    "disk_evictions", "ttl_evictions", "rebalances", "quarantines",
                )
            }))
            for tier, count in document.get("cache_sizes", {}).items():
                cache_sizes[tier] = cache_sizes.get(tier, 0) + count
            for key, value in document.get("jobs", {}).items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                jobs_totals[key] = jobs_totals.get(key, 0) + value
            for key, value in document.get("solver", {}).items():
                solver_totals[key] = solver_totals.get(key, 0) + value
            admission = document.get("admission", {})
            for key in admission_totals:
                admission_totals[key] += admission.get(key, 0)
            wal = document.get("wal", {})
            if wal.get("enabled"):
                wal_totals["enabled"] = True
                for key, value in wal.items():
                    if isinstance(value, bool) or not isinstance(value, (int, float)):
                        continue
                    wal_totals[key] = wal_totals.get(key, 0) + value
        with self._lock:
            router = {
                "requests": self._requests,
                "batches": self._batches,
                "jobs": len(self._jobs),
                "part_resubmits": self._part_resubmits,
                "resizes": self._resizes,
                "num_groups": self.ring.num_groups,
                "fingerprint_memo_hits": self._memo.hits,
                "fingerprint_memo_misses": self._memo.misses,
                "started_unix": self.started_unix,
                "uptime_seconds": time.time() - self.started_unix,
                "version": __version__,
            }
            admission_totals["rejected_429"] += self._rejected.get("429", 0)
            admission_totals["rejected_503"] += self._rejected.get("503", 0)
        admission_totals["rejected_total"] = (
            admission_totals["rejected_429"] + admission_totals["rejected_503"]
        )
        return {
            "router": router,
            "pool": self.pool.worker_status(),
            "unreachable_groups": unreachable,
            "service": service_totals,
            "cache": cache_totals.as_dict(),
            "cache_sizes": cache_sizes,
            "jobs": jobs_totals,
            "solver": solver_totals,
            "admission": admission_totals,
            "wal": wal_totals,
            "workers": per_worker,
        }

    def metrics_text(self) -> str:
        """One merged Prometheus exposition: every worker + the router,
        each sample labelled with its ``worker``."""
        status_rows = self.pool.worker_status()
        self._groups_gauge.set(len(status_rows))
        self._healthy_gauge.set(sum(1 for row in status_rows if row["healthy"]))
        expositions: list[tuple[str, str]] = []
        for group in self.pool.groups():
            try:
                status, _, data = self._proxy(group, "GET", "/metrics")
            except WorkerUnavailableError:
                continue
            if status == 200:
                expositions.append((f"g{group}", data.decode("utf-8")))
        expositions.append(("router", self.metrics.render_prometheus()))
        return merge_prometheus(expositions)

    def observe_http(self, method: str, status: int) -> None:
        self._http_requests_total.labels(method=method, status=str(status)).inc()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        self._fanout.shutdown(wait=False)
        if self.own_pool:
            self.pool.close()


# --------------------------------------------------------------------------- #
# HTTP layer
# --------------------------------------------------------------------------- #
class _RouterRequestHandler(BaseHTTPRequestHandler):
    """The router's HTTP surface -- same routes and wire shapes as the
    single-process :class:`~repro.service.server._ServiceRequestHandler`,
    plus ``POST /admin/resize``."""

    server: "RouterHTTPServer"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    # -- plumbing (mirrors the service handler) ------------------------- #
    def _send_json(
        self,
        payload: Mapping[str, Any],
        status: int = 200,
        extra_headers: Mapping[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload, allow_nan=False).encode("utf-8")
        self._send_body(body, status, "application/json", extra_headers=extra_headers)

    def _send_body(
        self,
        body: bytes,
        status: int,
        content_type: str,
        extra_headers: Mapping[str, str] | None = None,
    ) -> None:
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if extra_headers:
            for name, value in extra_headers.items():
                self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_backpressure(self, error: BackpressureError) -> None:
        self._send_json(
            {
                "error": str(error),
                "retry_after_seconds": error.retry_after_seconds,
            },
            status=error.status,
            extra_headers={"Retry-After": str(math.ceil(error.retry_after_seconds))},
        )

    def _send_error_json(self, message: str, status: int = 400) -> None:
        self._send_json({"error": message}, status=status)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise SerializationError("request body is empty")
        return self.rfile.read(length)

    def _dispatch(self, handler: Any) -> None:
        start = time.perf_counter()
        self._status = 0
        try:
            handler()
        finally:
            latency_ms = (time.perf_counter() - start) * 1000.0
            router = self.server.router
            router.observe_http(self.command, self._status)
            if not self.server.quiet:
                record = {
                    "time_unix": round(time.time(), 3),
                    "role": "router",
                    "method": self.command,
                    "path": self.path,
                    "status": self._status,
                    "latency_ms": round(latency_ms, 3),
                }
                print(json.dumps(record), file=sys.stderr, flush=True)

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch(self._handle_get)

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch(self._handle_post)

    def _handle_get(self) -> None:
        router = self.server.router
        try:
            if self.path == "/health":
                self._send_json(router.health())
            elif self.path == "/stats":
                self._send_json(router.stats())
            elif self.path == "/metrics":
                self._send_body(
                    router.metrics_text().encode("utf-8"),
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif self.path.startswith("/trace/"):
                fingerprint = self.path[len("/trace/") :]
                status, document = router.trace(fingerprint)
                self._send_json(document, status=status)
            elif self.path == "/jobs":
                self._send_json({"jobs": router.list_jobs()})
            elif self.path.startswith("/jobs/"):
                job_id = self.path[len("/jobs/") :]
                document = router.job(job_id)
                if document is None:
                    self._send_error_json(f"unknown job {job_id!r}", status=404)
                else:
                    self._send_json(document)
            else:
                self._send_error_json(f"unknown endpoint {self.path!r}", status=404)
        except WorkerUnavailableError as error:
            self._send_backpressure(router._reject(503, str(error)))
        except BackpressureError as error:
            self._send_backpressure(error)

    def _handle_post(self) -> None:
        router = self.server.router
        try:
            if self.path == "/solve":
                body = self._read_body()
                status, headers, data = router.solve_raw(body)
                content_type = headers.get("Content-Type", "application/json")
                retry_after = headers.get("Retry-After")
                extra = {"Retry-After": retry_after} if retry_after else None
                self._status = status
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(data)))
                if extra:
                    for name, value in extra.items():
                        self.send_header(name, value)
                self.end_headers()
                self.wfile.write(data)
            elif self.path == "/solve_batch":
                body = self._read_body()
                try:
                    payload = json.loads(body.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError) as error:
                    raise SerializationError(
                        f"request body is not valid JSON: {error}"
                    ) from error
                if not isinstance(payload, Mapping) or "requests" not in payload:
                    raise SerializationError("a batch document needs a 'requests' list")
                mode = str(payload.get("mode", "sync"))
                if mode not in ("sync", "async"):
                    raise SerializationError(
                        f"unknown batch mode {mode!r}; options: sync, async"
                    )
                documents = payload["requests"]
                if not isinstance(documents, list) or not documents:
                    raise SerializationError("'requests' must be a non-empty list")
                if mode == "async":
                    self._send_json(router.submit_batch_documents(documents), status=202)
                else:
                    self._send_json(router.solve_batch_documents(documents))
            elif self.path == "/admin/resize":
                body = self._read_body()
                try:
                    payload = json.loads(body.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError) as error:
                    raise SerializationError(
                        f"request body is not valid JSON: {error}"
                    ) from error
                if not isinstance(payload, Mapping) or "num_groups" not in payload:
                    raise SerializationError("resize needs {'num_groups': N}")
                try:
                    self._send_json(router.resize(int(payload["num_groups"])))
                except ValueError as error:
                    self._send_error_json(str(error), status=400)
            else:
                self._send_error_json(f"unknown endpoint {self.path!r}", status=404)
        except WorkerUnavailableError as error:
            self._send_backpressure(router._reject(503, str(error)))
        except BackpressureError as error:
            self._send_backpressure(error)
        except SerializationError as error:
            self._send_error_json(str(error), status=400)
        except ValueError as error:
            self._send_error_json(str(error), status=400)
        except Exception as error:  # pragma: no cover - last-resort 500
            self._send_error_json(f"internal error: {error}", status=500)


class RouterHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server that owns a :class:`RouterService`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        router: RouterService,
        quiet: bool = True,
    ):
        super().__init__(address, _RouterRequestHandler)
        self.router = router
        self.quiet = quiet

    @property
    def url(self) -> str:
        host, port = self.server_address[0], self.server_address[1]
        return f"http://{host}:{port}"


def start_router(
    router: RouterService, host: str = "127.0.0.1", port: int = 0, quiet: bool = True
) -> tuple[RouterHTTPServer, threading.Thread]:
    """Start the router HTTP front-end on a background thread."""
    server = RouterHTTPServer((host, port), router, quiet=quiet)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-router", daemon=True
    )
    thread.start()
    return server, thread


def run_router(
    router: RouterService, host: str = "127.0.0.1", port: int = 8000, quiet: bool = False
) -> None:
    """Serve the router until SIGTERM/SIGINT, then drain the whole pool.

    The shutdown order is front-to-back: stop accepting at the router,
    then SIGTERM every worker (each drains its queue and final-fsyncs its
    WAL) -- so a clean shutdown of the pool topology leaves no torn WAL
    tail in any group directory.
    """
    server = RouterHTTPServer((host, port), router, quiet=quiet)
    restore = install_shutdown_signals(server)
    print(f"allocation router listening on {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        restore()
        server.server_close()
        router.close()
