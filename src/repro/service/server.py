"""The allocation service and its stdlib-only HTTP JSON front-end.

:class:`AllocationService` is the resident, cache-backed solving engine --
usable directly from Python (tests, notebooks, the batch API) -- and
:func:`start_server` / :func:`run_server` expose it over HTTP:

========================  ==========================================================
``POST /solve``           one request ``{"problem": ..., "method": ...,
                          "heuristic_settings"?: ..., "exact_settings"?: ...}``
``POST /solve_batch``     ``{"requests": [...]}`` -- deduped, cache-backed batch;
                          with ``"mode": "async"`` it enqueues and returns a
                          job id immediately instead of blocking
``GET /jobs``             summaries of every retained async job
``GET /jobs/<id>``        one async job (outcomes included once ``done``)
``GET /health``           liveness + uptime
``GET /stats``            cache/job/service counters, solver work counters
``GET /metrics``          Prometheus text exposition (counters/gauges/histograms)
``GET /trace/<print>``    span tree of the last traced solve of a fingerprint
``POST /fleet/allocate``  ``{"fleet": ..., "mode": "heuristic"|"exact"}`` --
                          multi-tenant fleet allocation, cached by fleet
                          fingerprint
``POST /fleet/tenants``   ``{"tenant": ...}`` -- tenant arrival; re-carves the
                          current fleet (unchanged shares answer from the
                          solve memo)
``DELETE /fleet/tenants/<id>``  tenant departure; re-carves the remainder
========================  ==========================================================

The server is a ``ThreadingHTTPServer``: requests are handled concurrently
and meet at the thread-safe result store (a single :class:`~repro.service.
store.ResultStore` or a :class:`~repro.service.store.ShardedResultStore`
whose shards each carry their own lock).  Solver fan-out inside a batch goes
through the shared :class:`~repro.explore.executor.SweepExecutor` (use a
persistent pool via ``repro serve --jobs N``); async batches drain through a
:class:`~repro.service.jobs.JobQueue` worker pool (``repro serve
--workers N``).

Durability & backpressure (PR 8): with ``wal`` set the service journals
every async submission to a :class:`~repro.service.wal.JobWal` before the
``202`` ack and replays unfinished jobs through the normal deduping batch
path at startup, so an acknowledged job survives ``kill -9``.  Overload is
refused, not absorbed: a full job queue answers ``429`` and an exhausted
sync-solve pool answers ``503``, both with a ``Retry-After`` header derived
from the actual backlog (see :class:`BackpressureError`).
"""

from __future__ import annotations

import contextlib
import json
import math
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from .. import __version__
from ..core.solution import SolveOutcome, SolveStatus
from ..core.solvers import solve
from ..explore.executor import SweepExecutor
from ..fleet import (
    FleetManager,
    FleetOutcome,
    FleetState,
    Tenant,
    fleet_from_dict,
    tenant_from_dict,
)
from .canonical import fleet_fingerprint
from ..obs.metrics import MetricsRegistry
from ..obs.trace import TraceStore, start_trace, tracing_enabled
from ..workloads.serialization import SerializationError
from .batch import (
    BatchReport,
    SolveRequest,
    accumulate_counters,
    decode_outcome,
    encode_outcome,
    request_from_dict,
    solve_batch,
)
from .jobs import JobQueue, QueueFullError
from .store import ResultStore, ShardedResultStore
from .wal import JobWal


class BackpressureError(RuntimeError):
    """The service refused work it could not absorb (HTTP 429/503).

    ``status`` is 429 for a full async job queue and 503 for an exhausted
    sync-solve pool; ``retry_after_seconds`` is derived from the observed
    backlog (queue depth x average job run time), so a well-behaved client
    backing off by it returns roughly when capacity exists.
    """

    def __init__(self, status: int, retry_after_seconds: float, message: str):
        super().__init__(message)
        self.status = status
        self.retry_after_seconds = retry_after_seconds


class AllocationService:
    """Long-running, cache-backed allocation solving engine.

    Parameters
    ----------
    store:
        Result store; defaults to a memory-only store.  Pass one with a
        ``cache_dir`` to survive restarts, or a
        :class:`~repro.service.store.ShardedResultStore` for concurrent
        writers.
    executor:
        Sweep executor used by :meth:`solve_batch` fan-out; defaults to the
        chunked-serial engine.
    job_workers:
        Background worker threads draining the async batch queue (threads
        start lazily on the first async submission).
    job_retention:
        Completed async jobs kept for polling before the oldest are pruned.
    tracing:
        Record a phase-span tree for every ``solve_request`` (served over
        ``GET /trace/<fingerprint>``).  ``None`` defers to the
        ``REPRO_TRACE`` environment flag; tracing is off by default because
        the span recorder, while cheap, is not free on the sub-millisecond
        warm-hit path.
    trace_retention:
        Traces kept (LRU by fingerprint) when tracing is on.
    wal:
        Durability journal for async jobs: a :class:`~repro.service.wal.
        JobWal`, or a directory path to build one in.  When set, every
        ``mode=async`` submission is fsynced to the journal before its
        ``202`` ack and unfinished jobs are replayed at construction (see
        ``recover``); :attr:`recovered_jobs` reports how many came back.
    max_queue_depth:
        Async admission bound; a submit past it raises
        :class:`BackpressureError` with status 429 (``None`` = unbounded).
    max_inflight_solves:
        Concurrent *synchronous* solve calls admitted (HTTP ``/solve`` and
        sync ``/solve_batch``); past the bound the request is shed with a
        503 instead of queueing invisibly on the GIL (``None`` = unbounded).
        Async jobs are exempt -- their concurrency is the worker pool.
    recover:
        Replay unfinished WAL entries at construction (default).  Chaos
        harnesses pass ``False`` to inspect the journal before replay.
    start_job_workers:
        Test/chaos hook forwarded to the job queue: ``False`` accepts and
        journals submissions without running them (an in-process crash
        right after the ack).
    """

    def __init__(
        self,
        store: "ResultStore | ShardedResultStore | None" = None,
        executor: SweepExecutor | None = None,
        job_workers: int = 1,
        job_retention: int = 256,
        tracing: bool | None = None,
        trace_retention: int = 256,
        wal: "JobWal | str | Path | None" = None,
        max_queue_depth: int | None = None,
        max_inflight_solves: int | None = None,
        recover: bool = True,
        start_job_workers: bool = True,
    ):
        self.store = store if store is not None else ResultStore()
        self.executor = executor or SweepExecutor()
        if wal is not None and not isinstance(wal, JobWal):
            wal = JobWal(wal)
        self.wal = wal
        self.max_inflight_solves = max_inflight_solves
        self._sync_slots = (
            threading.Semaphore(max_inflight_solves)
            if max_inflight_solves is not None
            else None
        )
        self._rejected: dict[str, int] = {"429": 0, "503": 0}
        self.jobs = JobQueue(
            runner=self.solve_batch,
            workers=job_workers,
            max_retained=job_retention,
            on_finished=self._observe_job,
            wal=self.wal,
            max_queue_depth=max_queue_depth,
            start_workers=start_job_workers,
        )
        self.fleet = FleetManager()
        self.tracing = tracing_enabled() if tracing is None else bool(tracing)
        self.traces = TraceStore(capacity=trace_retention)
        self.started_unix = time.time()
        self._lock = threading.Lock()
        self._requests = 0
        self._batches = 0
        self._solves = 0
        #: Aggregated solver work counters (LP solves, probes, packer search
        #: nodes, memo hits, ...) over every non-cached solve this service
        #: performed; cache hits add nothing, mirroring the actual work done.
        self._solver_counters: dict[str, int] = {}
        # The registry is per-service (not module-global) so tests and
        # embedded services never collide on metric names.
        self.metrics = MetricsRegistry()
        metrics = self.metrics
        self._requests_total = metrics.counter(
            "repro_requests_total", "Solve requests answered (any cache tier)."
        )
        self._solves_total = metrics.counter(
            "repro_solves_total", "Requests that reached the solver (cache misses)."
        )
        self._cache_hits_total = metrics.counter(
            "repro_cache_hits_total",
            "Requests answered from a cache tier.",
            label_names=("tier",),
        )
        self._batches_total = metrics.counter(
            "repro_batches_total", "Batch submissions answered (sync and async)."
        )
        self._http_requests_total = metrics.counter(
            "repro_http_requests_total",
            "HTTP requests served, by method and status code.",
            label_names=("method", "status"),
        )
        self._solve_latency = metrics.histogram(
            "repro_solve_latency_seconds",
            "End-to-end latency of solver-tier requests.",
            label_names=("method",),
        )
        self._cache_hit_latency = metrics.histogram(
            "repro_cache_hit_latency_seconds",
            "End-to-end latency of cache-tier requests.",
            label_names=("tier",),
        )
        self._batch_latency = metrics.histogram(
            "repro_batch_latency_seconds", "Wall clock of one solve_batch call."
        )
        self._job_wait = metrics.histogram(
            "repro_job_wait_seconds", "Async job queue wait (submit to pickup)."
        )
        self._job_run = metrics.histogram(
            "repro_job_run_seconds", "Async job run time (pickup to terminal state)."
        )
        self._uptime_gauge = metrics.gauge(
            "repro_uptime_seconds", "Seconds since the service started."
        )
        self._queue_depth_gauge = metrics.gauge(
            "repro_job_queue_depth", "Async jobs waiting for a worker."
        )
        self._jobs_running_gauge = metrics.gauge(
            "repro_jobs_running", "Async jobs currently executing."
        )
        self._job_workers_gauge = metrics.gauge(
            "repro_job_workers", "Async job worker threads."
        )
        self._cache_entries_gauge = metrics.gauge(
            "repro_cache_entries",
            "Result-store entries per cache tier.",
            label_names=("tier",),
        )
        self._cache_shard_entries_gauge = metrics.gauge(
            "repro_cache_shard_entries",
            "Result-store entries per shard and tier (skew observability).",
            label_names=("shard", "tier"),
        )
        self._fleet_allocations_total = metrics.counter(
            "repro_fleet_allocations_total",
            "Fleet allocations served (cache hits included), by mode.",
            label_names=("mode",),
        )
        self._fleet_events_total = metrics.counter(
            "repro_fleet_events_total",
            "Tenant arrivals and departures.",
            label_names=("event",),
        )
        self._fleet_tenants_gauge = metrics.gauge(
            "repro_fleet_tenants", "Tenants in the current fleet."
        )
        self._fleet_devices_gauge = metrics.gauge(
            "repro_fleet_devices", "Devices in the current fleet's pool."
        )
        self._admission_rejected_total = metrics.counter(
            "repro_admission_rejected_total",
            "Requests refused for backpressure, by HTTP status code.",
            label_names=("code",),
        )
        self._wal_appends_gauge = metrics.gauge(
            "repro_wal_appends", "WAL records appended since startup."
        )
        self._wal_replays_gauge = metrics.gauge(
            "repro_wal_replays", "WAL replay passes performed (startup recovery)."
        )
        self._wal_compactions_gauge = metrics.gauge(
            "repro_wal_compactions", "WAL segment compactions performed."
        )
        self._wal_live_jobs_gauge = metrics.gauge(
            "repro_wal_live_jobs", "Journaled jobs not yet marked complete."
        )
        # Recovery runs last: the replayed jobs drain through solve_batch,
        # which touches the instruments built above.
        self.recovered_jobs = 0
        if recover and self.wal is not None:
            self.recovered_jobs = self.jobs.recover()

    # ------------------------------------------------------------------ #
    # Backpressure
    # ------------------------------------------------------------------ #
    def _retry_after_seconds(self, depth: int) -> float:
        """Backlog-derived retry hint: depth x observed mean job run time,
        clamped to [1, 30] seconds.

        Before any job has finished there is no observed mean to scale by;
        the hint is the 1 s floor, not ``depth`` seconds of a fabricated
        1 s/job guess -- a cold queue must not tell its first overflowing
        client to stay away for half a minute.
        """
        job_stats = self.jobs.stats()
        finished = job_stats["completed"] + job_stats["failed"]
        if not finished:
            return 1.0
        mean_run = job_stats["run_seconds_total"] / finished
        if not math.isfinite(mean_run) or mean_run <= 0.0:
            return 1.0
        return max(1.0, min(30.0, depth * max(mean_run, 0.05)))

    def _reject(self, status: int, retry_after: float, message: str) -> BackpressureError:
        code = str(status)
        self._admission_rejected_total.labels(code=code).inc()
        with self._lock:
            self._rejected[code] = self._rejected.get(code, 0) + 1
        return BackpressureError(status, retry_after, message)

    @contextlib.contextmanager
    def sync_admission(self) -> Iterator[None]:
        """Admission gate for synchronous solve calls (HTTP ``/solve`` and
        sync ``/solve_batch``); sheds with a 503 when the pool is exhausted.
        """
        if self._sync_slots is None:
            yield
            return
        if not self._sync_slots.acquire(blocking=False):
            raise self._reject(
                503,
                self._retry_after_seconds(1),
                f"sync solve pool exhausted ({self.max_inflight_solves} in flight);"
                " retry later or submit with mode=async",
            )
        try:
            yield
        finally:
            self._sync_slots.release()

    def _accumulate_solver_counters(self, counters: Mapping[str, Any]) -> None:
        with self._lock:
            accumulate_counters(self._solver_counters, counters)

    def _observe_job(self, job: Any) -> None:
        """JobQueue ``on_finished`` observer: wait/run latency histograms."""
        if job.wait_seconds is not None:
            self._job_wait.observe(job.wait_seconds)
        if job.run_seconds is not None:
            self._job_run.observe(job.run_seconds)

    def observe_http(self, method: str, status: int) -> None:
        """Count one served HTTP request (called by the request handler)."""
        self._http_requests_total.labels(method=method, status=str(status)).inc()

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def solve_request(self, request: SolveRequest) -> tuple[SolveOutcome, dict[str, Any]]:
        """Answer one request, consulting the cache tiers first.

        Returns the outcome plus a metadata dict: the request fingerprint,
        which tier answered (``"memory"``/``"disk"``/``"solver"``) and the
        service-side latency in milliseconds.

        With tracing on, the request runs under a ``"solve"`` span tree
        (phases recorded by the core solvers) retained in :attr:`traces`
        under the request fingerprint.
        """
        start = time.perf_counter()
        fingerprint = request.fingerprint()
        if self.tracing:
            with start_trace(
                "solve", method=request.method, fingerprint=fingerprint
            ) as trace:
                outcome, source = self._answer(request, fingerprint)
            self.traces.put(fingerprint, trace.as_dict())
        else:
            outcome, source = self._answer(request, fingerprint)
        latency_seconds = time.perf_counter() - start
        self._requests_total.inc()
        if source == "solver":
            self._solve_latency.labels(method=request.method).observe(latency_seconds)
        else:
            self._cache_hits_total.labels(tier=source).inc()
            self._cache_hit_latency.labels(tier=source).observe(latency_seconds)
        meta = {
            "fingerprint": fingerprint,
            "cache": source,
            "latency_ms": latency_seconds * 1000.0,
        }
        return outcome, meta

    def _answer(self, request: SolveRequest, fingerprint: str) -> tuple[SolveOutcome, str]:
        """Cache tiers first, solver on miss; returns (outcome, tier)."""
        lookup = self.store.get(fingerprint)
        if lookup.hit:
            assert lookup.payload is not None
            outcome = decode_outcome(lookup.payload, request.problem, fingerprint=fingerprint)
            source = lookup.tier
        else:
            outcome = solve(
                request.problem,
                method=request.method,
                heuristic_settings=request.heuristic_settings,
                exact_settings=request.exact_settings,
            )
            if outcome.status is not SolveStatus.ERROR:
                self.store.put(fingerprint, encode_outcome(outcome, request.problem))
            source = "solver"
            self._accumulate_solver_counters(outcome.counters)
            self._solves_total.inc()
            with self._lock:
                self._solves += 1
        with self._lock:
            self._requests += 1
        return outcome, source

    def solve_batch(self, requests: list[SolveRequest]) -> tuple[list[SolveOutcome], BatchReport]:
        """Answer a batch via :func:`repro.service.batch.solve_batch`."""
        outcomes, report = solve_batch(requests, store=self.store, executor=self.executor)
        self._accumulate_solver_counters(report.solver_counters)
        with self._lock:
            self._requests += report.total
            self._batches += 1
            self._solves += report.solves
        self._batches_total.inc()
        self._batch_latency.observe(report.runtime_seconds)
        return outcomes, report

    def submit_batch(
        self,
        requests: list[SolveRequest],
        documents: "list[dict[str, Any]] | None" = None,
    ) -> dict[str, Any]:
        """Enqueue an async batch; returns the queued job document.

        With a WAL attached the returned ack is durable (the submission is
        fsynced first).  A full queue raises :class:`BackpressureError`
        (429) with a backlog-derived retry hint; ``documents`` forwards the
        already-parsed wire documents so the journal skips re-serialising.
        """
        try:
            return self.jobs.submit(requests, documents=documents)
        except QueueFullError as error:
            raise self._reject(
                429, self._retry_after_seconds(error.depth), str(error)
            ) from error

    # ------------------------------------------------------------------ #
    # Fleet allocation
    # ------------------------------------------------------------------ #
    def fleet_allocate(
        self, fleet: FleetState, mode: str = "heuristic"
    ) -> tuple[FleetOutcome, dict[str, Any]]:
        """Allocate a fleet, consulting the result store first.

        Fleet outcomes ride the same store/WAL/router plumbing as per-app
        outcomes: the key is :func:`~repro.service.canonical.
        fleet_fingerprint` (namespaced so the two can never collide), the
        payload the ``FleetOutcome.to_dict`` JSON.  Returns the outcome plus
        the usual metadata dict (fingerprint, answering tier, latency).
        """
        start = time.perf_counter()
        fingerprint = fleet_fingerprint(fleet, mode)
        lookup = self.store.get(fingerprint)
        if lookup.hit:
            assert lookup.payload is not None
            outcome = FleetOutcome.from_dict(json.loads(lookup.payload), fleet)
            self.fleet.adopt(fleet, outcome, mode)
            source = lookup.tier
            self._cache_hits_total.labels(tier=source).inc()
        else:
            outcome = self.fleet.allocate(fleet, mode=mode)
            self.store.put(
                fingerprint, json.dumps(outcome.to_dict(), allow_nan=False)
            )
            source = "solver"
        self._fleet_allocations_total.labels(mode=mode).inc()
        latency_seconds = time.perf_counter() - start
        meta = {
            "fingerprint": fingerprint,
            "cache": source,
            "latency_ms": latency_seconds * 1000.0,
        }
        return outcome, meta

    def fleet_arrival(
        self, tenant: Tenant, mode: str = "heuristic"
    ) -> tuple[FleetOutcome, dict[str, Any]]:
        """Admit a tenant into the current fleet and re-allocate.

        The re-carve is incremental in cost: the manager's persistent solve
        memo answers every ``(tenant, share)`` pair that did not move, so
        only tenants whose shares actually changed pay solver time.
        """
        fleet = self.fleet.add_tenant(tenant)
        self._fleet_events_total.labels(event="arrival").inc()
        outcome, meta = self.fleet_allocate(fleet, mode=mode)
        meta["tenants"] = list(fleet.tenant_ids)
        return outcome, meta

    def fleet_departure(
        self, tenant_id: str, mode: str = "heuristic"
    ) -> tuple["FleetOutcome | None", dict[str, Any]]:
        """Remove a tenant from the current fleet and re-allocate the rest.

        An empty fleet (the last tenant left) skips allocation and returns
        ``(None, meta)``.
        """
        fleet = self.fleet.remove_tenant(tenant_id)
        self._fleet_events_total.labels(event="departure").inc()
        if not fleet.tenants:
            return None, {"tenants": []}
        outcome, meta = self.fleet_allocate(fleet, mode=mode)
        meta["tenants"] = list(fleet.tenant_ids)
        return outcome, meta

    def job(self, job_id: str, include_outcomes: bool = True) -> dict[str, Any] | None:
        return self.jobs.get(job_id, include_outcomes=include_outcomes)

    def list_jobs(self) -> list[dict[str, Any]]:
        return self.jobs.list_jobs()

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    def _sweep_expired_entries(self) -> None:
        """Drop expired-but-untouched cache entries before sampling sizes.

        Expiry is lazy on access, so without this sweep the size gauges
        overreport warm capacity by every entry that expired and was never
        queried again.  Swept entries count into ``ttl_evictions``.
        """
        sweep = getattr(self.store, "sweep_expired", None)
        if callable(sweep):
            sweep()

    def stats(self) -> dict[str, Any]:
        """Service counters + cache/job tier counters, JSON-compatible."""
        self._sweep_expired_entries()
        with self._lock:
            service = {
                "requests": self._requests,
                "batches": self._batches,
                "solves": self._solves,
                "started_unix": self.started_unix,
                "uptime_seconds": time.time() - self.started_unix,
                "tracing": self.tracing,
                "version": __version__,
            }
        with self._lock:
            solver = dict(self._solver_counters)
        with self._lock:
            admission: dict[str, Any] = {
                "max_queue_depth": self.jobs.max_queue_depth,
                "max_inflight_solves": self.max_inflight_solves,
                "rejected_429": self._rejected.get("429", 0),
                "rejected_503": self._rejected.get("503", 0),
            }
        admission["rejected_total"] = admission["rejected_429"] + admission["rejected_503"]
        wal_stats: dict[str, Any] = {"enabled": self.wal is not None}
        if self.wal is not None:
            wal_stats.update(self.wal.stats())
            wal_stats["recovered_jobs"] = self.recovered_jobs
        stats: dict[str, Any] = {
            "service": service,
            "cache": self.store.stats().as_dict(),
            "cache_sizes": self.store.sizes(),
            "jobs": self.jobs.stats(),
            "solver": solver,
            "admission": admission,
            "wal": wal_stats,
            "fleet": self.fleet.stats(),
        }
        shards = getattr(self.store, "num_shards", None)
        if shards is not None:
            stats["cache_shards"] = shards
        payload_bytes = getattr(self.store, "payload_bytes", None)
        if callable(payload_bytes):
            stats["cache_bytes"] = payload_bytes()
        return stats

    def trace(self, fingerprint: str) -> dict[str, Any] | None:
        """The retained span tree of one fingerprint, or ``None``."""
        return self.traces.get(fingerprint)

    def metrics_text(self) -> str:
        """Prometheus text exposition of every instrument.

        Gauges are sampled here (scrape time) from the live stats rather
        than maintained on the hot path -- queue depth, cache entry and
        shard-skew counts are cheap to read and only dashboards need them.
        """
        self._sweep_expired_entries()
        job_stats = self.jobs.stats()
        self._uptime_gauge.set(time.time() - self.started_unix)
        self._queue_depth_gauge.set(job_stats["queue_depth"])
        self._jobs_running_gauge.set(job_stats["running"])
        self._job_workers_gauge.set(job_stats["workers"])
        for tier, count in self.store.sizes().items():
            self._cache_entries_gauge.labels(tier=tier).set(count)
        per_shard = getattr(self.store, "per_shard_sizes", None)
        if callable(per_shard):
            for index, sizes in enumerate(per_shard()):
                for tier, count in sizes.items():
                    self._cache_shard_entries_gauge.labels(
                        shard=str(index), tier=tier
                    ).set(count)
        fleet_stats = self.fleet.stats()
        self._fleet_tenants_gauge.set(fleet_stats["tenants"])
        self._fleet_devices_gauge.set(fleet_stats["devices"])
        if self.wal is not None:
            wal_stats = self.wal.stats()
            self._wal_appends_gauge.set(wal_stats["appends"])
            self._wal_replays_gauge.set(wal_stats["replays"])
            self._wal_compactions_gauge.set(wal_stats["compactions"])
            self._wal_live_jobs_gauge.set(wal_stats["live_jobs"])
        return self.metrics.render_prometheus()

    def close(self) -> None:
        self.jobs.close()
        if self.wal is not None:
            self.wal.close()
        self.store.close()
        close_pool = getattr(self.executor, "close", None)
        if callable(close_pool):
            close_pool()


# --------------------------------------------------------------------------- #
# HTTP layer
# --------------------------------------------------------------------------- #
class _ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes the service endpoints onto an :class:`AllocationService`.

    Every request is counted in ``repro_http_requests_total`` and, unless
    the server runs quiet, logged as one structured JSON line on stderr
    (method, path, status, latency; the request fingerprint when the route
    produced one) -- replacing the stdlib's free-text access log.
    """

    server: "AllocationHTTPServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        # The stdlib access log is replaced by _dispatch's JSON line.
        pass

    def _send_json(
        self,
        payload: Mapping[str, Any],
        status: int = 200,
        extra_headers: Mapping[str, str] | None = None,
    ) -> None:
        # allow_nan=False guarantees strict RFC 8259 JSON on the wire; the
        # outcome documents already encode non-finite floats as null.
        body = json.dumps(payload, allow_nan=False).encode("utf-8")
        self._send_body(body, status, "application/json", extra_headers=extra_headers)

    def _send_text(self, text: str, status: int = 200, content_type: str = "text/plain") -> None:
        self._send_body(text.encode("utf-8"), status, content_type)

    def _send_body(
        self,
        body: bytes,
        status: int,
        content_type: str,
        extra_headers: Mapping[str, str] | None = None,
    ) -> None:
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if extra_headers:
            for name, value in extra_headers.items():
                self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_backpressure(self, error: BackpressureError) -> None:
        """429/503 + ``Retry-After`` (integral seconds, rounded up)."""
        self._send_json(
            {
                "error": str(error),
                "retry_after_seconds": error.retry_after_seconds,
            },
            status=error.status,
            extra_headers={"Retry-After": str(math.ceil(error.retry_after_seconds))},
        )

    def _send_error_json(self, message: str, status: int = 400) -> None:
        self._send_json({"error": message}, status=status)

    def _read_json_body(self) -> Any:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise SerializationError("request body is empty")
        try:
            return json.loads(self.rfile.read(length).decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise SerializationError(f"request body is not valid JSON: {error}") from error

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #
    def _dispatch(self, handler: Any) -> None:
        """Run one route under the request counter + structured access log."""
        start = time.perf_counter()
        self._status = 0
        self._log_fingerprint: str | None = None
        try:
            handler()
        finally:
            latency_ms = (time.perf_counter() - start) * 1000.0
            service = self.server.service
            service.observe_http(self.command, self._status)
            if not self.server.quiet:
                record: dict[str, Any] = {
                    "time_unix": round(time.time(), 3),
                    "method": self.command,
                    "path": self.path,
                    "status": self._status,
                    "latency_ms": round(latency_ms, 3),
                }
                if self._log_fingerprint is not None:
                    record["fingerprint"] = self._log_fingerprint
                print(json.dumps(record), file=sys.stderr, flush=True)

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch(self._handle_get)

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch(self._handle_post)

    def do_DELETE(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch(self._handle_delete)

    def _handle_get(self) -> None:
        service = self.server.service
        if self.path == "/health":
            self._send_json(
                {"status": "ok", "uptime_seconds": time.time() - service.started_unix}
            )
        elif self.path == "/stats":
            self._send_json(service.stats())
        elif self.path == "/metrics":
            self._send_text(
                service.metrics_text(),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        elif self.path.startswith("/trace/"):
            fingerprint = self.path[len("/trace/"):]
            document = service.trace(fingerprint)
            if document is None:
                self._send_error_json(f"no trace for {fingerprint!r}", status=404)
            else:
                self._log_fingerprint = fingerprint
                self._send_json(document)
        elif self.path == "/jobs":
            self._send_json({"jobs": service.list_jobs()})
        elif self.path.startswith("/jobs/"):
            job_id = self.path[len("/jobs/"):]
            document = service.job(job_id)
            if document is None:
                self._send_error_json(f"unknown job {job_id!r}", status=404)
            else:
                self._send_json(document)
        else:
            self._send_error_json(f"unknown endpoint {self.path!r}", status=404)

    def _handle_post(self) -> None:
        service = self.server.service
        try:
            payload = self._read_json_body()
            if self.path == "/solve":
                request = request_from_dict(payload)
                with service.sync_admission():
                    outcome, meta = service.solve_request(request)
                self._log_fingerprint = meta["fingerprint"]
                self._send_json({**meta, "outcome": outcome.to_dict()})
            elif self.path == "/solve_batch":
                if not isinstance(payload, Mapping) or "requests" not in payload:
                    raise SerializationError("a batch document needs a 'requests' list")
                mode = str(payload.get("mode", "sync"))
                if mode not in ("sync", "async"):
                    raise SerializationError(f"unknown batch mode {mode!r}; options: sync, async")
                documents = payload["requests"]
                if not isinstance(documents, list) or not documents:
                    raise SerializationError("'requests' must be a non-empty list")
                requests = [request_from_dict(document) for document in documents]
                if mode == "async":
                    # Forward the wire documents: the WAL journals exactly
                    # what the client sent, no re-serialisation.
                    self._send_json(
                        service.submit_batch(requests, documents=documents), status=202
                    )
                    return
                with service.sync_admission():
                    outcomes, report = service.solve_batch(requests)
                self._send_json(
                    {
                        "report": report.as_dict(),
                        "fingerprints": report.fingerprints,
                        "outcomes": [outcome.to_dict() for outcome in outcomes],
                    }
                )
            elif self.path == "/fleet/allocate":
                if not isinstance(payload, Mapping) or "fleet" not in payload:
                    raise SerializationError(
                        "a fleet allocation document needs a 'fleet' section"
                    )
                fleet = fleet_from_dict(payload["fleet"])
                if not fleet.tenants:
                    raise SerializationError("the fleet has no tenants to allocate")
                mode = str(payload.get("mode", "heuristic"))
                with service.sync_admission():
                    outcome, meta = service.fleet_allocate(fleet, mode=mode)
                self._log_fingerprint = meta["fingerprint"]
                self._send_json({**meta, "allocation": outcome.to_dict()})
            elif self.path == "/fleet/tenants":
                if not isinstance(payload, Mapping) or "tenant" not in payload:
                    raise SerializationError(
                        "a tenant arrival document needs a 'tenant' section"
                    )
                tenant = tenant_from_dict(payload["tenant"])
                mode = str(payload.get("mode", "heuristic"))
                with service.sync_admission():
                    outcome, meta = service.fleet_arrival(tenant, mode=mode)
                self._log_fingerprint = meta["fingerprint"]
                self._send_json({**meta, "allocation": outcome.to_dict()}, status=201)
            else:
                self._send_error_json(f"unknown endpoint {self.path!r}", status=404)
        except BackpressureError as error:
            self._send_backpressure(error)
        except SerializationError as error:
            self._send_error_json(str(error), status=400)
        except ValueError as error:
            self._send_error_json(str(error), status=400)
        except RuntimeError as error:
            # "no fleet configured": the request is well-formed but conflicts
            # with the service's current state.
            self._send_error_json(str(error), status=409)
        except Exception as error:  # pragma: no cover - last-resort 500
            self._send_error_json(f"internal error: {error}", status=500)

    def _handle_delete(self) -> None:
        service = self.server.service
        if not self.path.startswith("/fleet/tenants/"):
            self._send_error_json(f"unknown endpoint {self.path!r}", status=404)
            return
        tenant_id = self.path[len("/fleet/tenants/"):]
        try:
            with service.sync_admission():
                outcome, meta = service.fleet_departure(tenant_id)
        except BackpressureError as error:
            self._send_backpressure(error)
        except KeyError as error:
            self._send_error_json(str(error).strip("'\""), status=404)
        except RuntimeError as error:
            self._send_error_json(str(error), status=409)
        else:
            document: dict[str, Any] = {**meta}
            document["allocation"] = None if outcome is None else outcome.to_dict()
            if meta.get("fingerprint"):
                self._log_fingerprint = meta["fingerprint"]
            self._send_json(document)


class AllocationHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server that owns an :class:`AllocationService`.

    ``quiet`` silences the per-request structured JSON access log
    (requests are still counted in ``repro_http_requests_total``).
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: AllocationService,
        quiet: bool = True,
    ):
        super().__init__(address, _ServiceRequestHandler)
        self.service = service
        self.quiet = quiet

    @property
    def url(self) -> str:
        host, port = self.server_address[0], self.server_address[1]
        return f"http://{host}:{port}"


def start_server(
    service: AllocationService, host: str = "127.0.0.1", port: int = 0, quiet: bool = True
) -> tuple[AllocationHTTPServer, threading.Thread]:
    """Start a server on a background thread (``port=0`` picks a free port).

    The caller owns shutdown: ``server.shutdown(); server.server_close();
    service.close()``.
    """
    server = AllocationHTTPServer((host, port), service, quiet=quiet)
    thread = threading.Thread(target=server.serve_forever, name="repro-serve", daemon=True)
    thread.start()
    return server, thread


def install_shutdown_signals(server: "ThreadingHTTPServer") -> "Callable[[], None]":
    """Route SIGTERM/SIGINT into a graceful ``server.shutdown()``.

    ``shutdown()`` must run off the signal-handling (main) thread: it blocks
    until ``serve_forever`` -- running *on* the main thread -- notices the
    stop flag, so calling it inline would deadlock.  Returns a restorer that
    puts the previous handlers back (used by embedded/test callers).
    """
    previous = {}

    def _handle(signum: int, frame: Any) -> None:
        threading.Thread(
            target=server.shutdown, name="repro-serve-shutdown", daemon=True
        ).start()

    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, _handle)

    def _restore() -> None:
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    return _restore


def run_server(
    service: AllocationService, host: str = "127.0.0.1", port: int = 8000, quiet: bool = False
) -> None:
    """Serve until interrupted (the blocking entry point behind ``repro serve``).

    SIGTERM and SIGINT both drain gracefully: the accept loop stops, then
    ``service.close()`` joins the job workers (pending jobs finish),
    final-fsyncs and closes every WAL segment, and closes the store -- so a
    clean shutdown never leaves a torn WAL tail or an abandoned job.
    """
    server = AllocationHTTPServer((host, port), service, quiet=quiet)
    restore = install_shutdown_signals(server)
    print(f"allocation service listening on {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        restore()
        server.server_close()
        service.close()
