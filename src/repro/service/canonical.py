"""Canonical problem fingerprints for the allocation service.

The cache key of the result store must identify a *semantically* identical
request, not a byte-identical one: two callers describing the same pipeline
with the kernels listed in a different order, the resource cap written as
``70`` instead of ``70.0``, or the solver settings spelled in a different
key order must hash to the same fingerprint.  This module builds that stable
content hash on top of the workload serialization layer:

* every number is coerced to a float and rendered by ``repr`` (shortest
  round-trip form), so formatting differences vanish;
* kernels are sorted by name -- allocation is order-free, the optimisation
  variables are indexed by kernel name only;
* display-only attributes (pipeline/platform/device names, absolute device
  counts) are excluded -- the solvers operate purely on percentages;
* solver settings irrelevant to the chosen method are dropped
  (``"minlp"`` ignores the heuristic settings and forces ``beta = 0``);
* the canonical document is serialised with sorted keys and hashed with
  SHA-256.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Any, Mapping

from ..core.exact import ExactSettings
from ..core.heuristic import HeuristicSettings
from ..core.problem import AllocationProblem
from ..core.solvers import METHODS
from ..platform.resources import RESOURCE_KINDS

#: Version tag mixed into every fingerprint; bump when the canonical form or
#: the solver semantics behind it change incompatibly (old cache entries must
#: not be served for requests they no longer describe).
CANONICAL_VERSION = 1


def canonical_value(value: Any) -> Any:
    """Normalise a JSON-ish value for canonical serialisation.

    Every number except ``bool`` becomes a float (``70`` and ``70.0``
    canonicalise identically; ``repr`` of equal floats is equal), ``-0.0`` is
    folded onto ``0.0``, and containers are normalised recursively.  Mapping
    key order is irrelevant because :func:`canonical_json` sorts keys.
    """
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        number = float(value)
        return 0.0 if number == 0.0 else number
    if isinstance(value, Mapping):
        return {str(key): canonical_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    raise TypeError(f"cannot canonicalise value of type {type(value).__name__}")


def canonical_json(payload: Any) -> str:
    """Deterministic JSON text of a canonicalised payload."""
    return json.dumps(canonical_value(payload), sort_keys=True, separators=(",", ":"))


# --------------------------------------------------------------------------- #
# Canonical request documents
# --------------------------------------------------------------------------- #
def canonical_problem(problem: AllocationProblem) -> dict[str, Any]:
    """Order- and formatting-independent document of one allocation problem.

    Memoized on the (frozen) problem instance -- a batch of requests over a
    handful of distinct problems canonicalises each problem once.  Callers
    must treat the returned document as immutable.
    """
    cached = problem.__dict__.get("_cached_canonical_document")
    if cached is not None:
        return cached
    kernels = []
    for kernel in sorted(problem.pipeline, key=lambda k: k.name):
        kernels.append(
            {
                "name": kernel.name,
                "resources": {kind: kernel.resources[kind] for kind in RESOURCE_KINDS},
                "bandwidth": kernel.bandwidth,
                "wcet_ms": kernel.wcet_ms,
                "max_cus": kernel.max_cus,
            }
        )
    platform = problem.platform
    document = {
        "kernels": kernels,
        "platform": {
            "num_fpgas": platform.num_fpgas,
            "resource_limit": {kind: platform.resource_limit[kind] for kind in RESOURCE_KINDS},
            "bandwidth_limit": platform.bandwidth_limit,
        },
        "weights": {"alpha": problem.weights.alpha, "beta": problem.weights.beta},
    }
    object.__setattr__(problem, "_cached_canonical_document", document)
    return document


def canonical_request(
    problem: AllocationProblem,
    method: str = "gp+a",
    heuristic_settings: HeuristicSettings | None = None,
    exact_settings: ExactSettings | None = None,
) -> dict[str, Any]:
    """Canonical document of one ``(problem, method, settings)`` request.

    Settings default to the solver defaults, so "no settings given" and
    "defaults spelled out" are the same request.  Settings (and weights) that
    the method provably ignores are normalised away:

    * ``"minlp"`` never reads the heuristic settings and zeroes ``beta``;
    * the exact methods are the only readers of :class:`ExactSettings`.
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; options: {METHODS}")
    problem_document = canonical_problem(problem)
    if method == "minlp":
        # Copy-on-write: the problem document is memoized and must stay pristine.
        problem_document = {
            **problem_document,
            "weights": {**problem_document["weights"], "beta": 0.0},
        }
    document = {
        "version": CANONICAL_VERSION,
        "method": method,
        "problem": problem_document,
    }
    if method == "gp+a":
        document["heuristic_settings"] = asdict(heuristic_settings or HeuristicSettings())
    else:
        document["exact_settings"] = asdict(exact_settings or ExactSettings())
    return document


def fingerprint(
    problem: AllocationProblem,
    method: str = "gp+a",
    heuristic_settings: HeuristicSettings | None = None,
    exact_settings: ExactSettings | None = None,
) -> str:
    """SHA-256 content fingerprint of one allocation request."""
    document = canonical_request(problem, method, heuristic_settings, exact_settings)
    return hashlib.sha256(canonical_json(document).encode("utf-8")).hexdigest()


def group_key(
    problem: AllocationProblem,
    method: str = "gp+a",
    heuristic_settings: HeuristicSettings | None = None,
    exact_settings: ExactSettings | None = None,
) -> str:
    """Memo-sharing group of a request: same constrained problem + GP config.

    Requests in one group reuse each other's per-process caches: the GP
    relaxation and the discretisation memo depend on the problem (pipeline +
    constraint) and the GP/discretisation settings, but *not* on the
    allocator parameters ``T``/``delta``/``criticality``.  The batch API
    sorts tasks by this key before handing them to the executor so one
    worker solves the shared prefix once -- the same trick the Figure 2
    T-sweep uses.
    """
    document = canonical_request(problem, method, heuristic_settings, exact_settings)
    if method == "gp+a":
        for allocator_only in ("t_percent", "delta_percent", "criticality"):
            document["heuristic_settings"].pop(allocator_only, None)
    return canonical_json(document)
