"""Canonical problem fingerprints for the allocation service.

The cache key of the result store must identify a *semantically* identical
request, not a byte-identical one: two callers describing the same pipeline
with the kernels listed in a different order, the resource cap written as
``70`` instead of ``70.0``, or the solver settings spelled in a different
key order must hash to the same fingerprint.  This module builds that stable
content hash on top of the workload serialization layer:

* every number is coerced to a float and rendered by ``repr`` (shortest
  round-trip form), so formatting differences vanish;
* kernels are sorted by name -- allocation is order-free, the optimisation
  variables are indexed by kernel name only;
* display-only attributes (pipeline/platform/device names, absolute device
  counts) are excluded -- the solvers operate purely on percentages;
* heterogeneous platforms canonicalise to their *sorted class multiset*:
  device classes are merged by their capacity key (resource caps +
  bandwidth cap) and listed in descending capacity order, so two platforms
  describing the same fleet with the classes in a different order (or split
  differently into equal-capacity classes) fingerprint identically.  A fleet
  whose classes all share one capacity key canonicalises to the homogeneous
  form.  Because the fingerprint is class-order-free while solutions index
  FPGAs positionally, cached payloads are stored in *canonical FPGA order*
  and permuted back into the requesting platform's order on a cache hit
  (:func:`outcome_payload_to_canonical` / :func:`outcome_payload_from_canonical`);
* solver settings irrelevant to the chosen method are dropped
  (``"minlp"`` ignores the heuristic settings and forces ``beta = 0``);
* the canonical document is serialised with sorted keys and hashed with
  SHA-256.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Any, Mapping

from ..core.exact import ExactSettings
from ..core.heuristic import HeuristicSettings
from ..core.problem import AllocationProblem
from ..core.solvers import METHODS
from ..platform.multi_fpga import MultiFPGAPlatform
from ..platform.resources import RESOURCE_KINDS

#: Version tag mixed into every fingerprint; bump when the canonical form or
#: the solver semantics behind it change incompatibly (old cache entries must
#: not be served for requests they no longer describe).
CANONICAL_VERSION = 1


def canonical_value(value: Any) -> Any:
    """Normalise a JSON-ish value for canonical serialisation.

    Every number except ``bool`` becomes a float (``70`` and ``70.0``
    canonicalise identically; ``repr`` of equal floats is equal), ``-0.0`` is
    folded onto ``0.0``, and containers are normalised recursively.  Mapping
    key order is irrelevant because :func:`canonical_json` sorts keys.
    """
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        number = float(value)
        return 0.0 if number == 0.0 else number
    if isinstance(value, Mapping):
        return {str(key): canonical_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    raise TypeError(f"cannot canonicalise value of type {type(value).__name__}")


def canonical_json(payload: Any) -> str:
    """Deterministic JSON text of a canonicalised payload."""
    return json.dumps(canonical_value(payload), sort_keys=True, separators=(",", ":"))


# --------------------------------------------------------------------------- #
# Platform canonicalisation (device classes and FPGA order)
# --------------------------------------------------------------------------- #
def _class_capacity_key(resource_limit, bandwidth_limit: float) -> tuple:
    """The capacity identity of one device class: percentage caps only.

    Devices are descriptive; two classes with the same caps are
    interchangeable for the solvers, so they share one canonical key.
    """
    return tuple(resource_limit[kind] for kind in RESOURCE_KINDS) + (float(bandwidth_limit),)


def _canonical_platform_document(platform: MultiFPGAPlatform) -> dict[str, Any]:
    """Order-free platform document: homogeneous form, or sorted class multiset."""
    groups: dict[tuple, int] = {}
    for device_class in platform.device_classes:
        key = _class_capacity_key(device_class.resource_limit, device_class.bandwidth_limit)
        groups[key] = groups.get(key, 0) + device_class.count
    if len(groups) == 1:
        # One capacity class (the homogeneous case, however it was spelled):
        # the original flat document, byte-identical for legacy platforms.
        reference = platform.device_classes[0]
        return {
            "num_fpgas": platform.num_fpgas,
            "resource_limit": {
                kind: reference.resource_limit[kind] for kind in RESOURCE_KINDS
            },
            "bandwidth_limit": reference.bandwidth_limit,
        }
    classes = []
    for key in sorted(groups, reverse=True):
        resources = dict(zip(RESOURCE_KINDS, key[: len(RESOURCE_KINDS)]))
        classes.append(
            {
                "count": groups[key],
                "resource_limit": resources,
                "bandwidth_limit": key[-1],
            }
        )
    return {"num_fpgas": platform.num_fpgas, "classes": classes}


def canonical_fpga_order(platform: MultiFPGAPlatform) -> "tuple[int, ...] | None":
    """Original FPGA indices in canonical order, or ``None`` when identity.

    Canonical order sorts FPGAs by descending class capacity key (stable, so
    FPGAs with equal caps keep their relative order), matching the class
    order of the canonical platform document.  Two platforms with the same
    class multiset therefore agree position-by-position on the caps of the
    canonically ordered FPGAs, which is what lets cached solutions transfer
    between them.
    """
    if platform.is_homogeneous:
        return None
    keys = [
        _class_capacity_key(
            platform.fpga_resource_limit(fpga), platform.fpga_bandwidth_limit(fpga)
        )
        for fpga in range(platform.num_fpgas)
    ]
    if len(set(keys)) == 1:
        return None  # one capacity class: every order is canonical
    order = tuple(
        sorted(range(platform.num_fpgas), key=lambda fpga: (tuple(-v for v in keys[fpga]), fpga))
    )
    if order == tuple(range(platform.num_fpgas)):
        return None  # already canonical (all shipped presets): zero-copy path
    return order


def outcome_payload_to_canonical(
    payload: dict[str, Any], problem: AllocationProblem
) -> dict[str, Any]:
    """Permute a ``SolveOutcome.to_dict`` payload into canonical FPGA order.

    Applied before a payload enters the result store, so equivalent
    heterogeneous platforms (same class multiset, any class order) share
    cache entries.  Homogeneous payloads pass through untouched.
    """
    order = canonical_fpga_order(problem.platform)
    solution = payload.get("solution")
    if order is None or not solution:
        return payload
    solution["counts"] = {
        name: [per_fpga[original] for original in order]
        for name, per_fpga in solution["counts"].items()
    }
    return payload


def outcome_payload_from_canonical(
    payload: dict[str, Any], problem: AllocationProblem
) -> dict[str, Any]:
    """Inverse of :func:`outcome_payload_to_canonical` for cache hits."""
    order = canonical_fpga_order(problem.platform)
    solution = payload.get("solution")
    if order is None or not solution:
        return payload
    permuted: dict[str, list[int]] = {}
    for name, per_fpga in solution["counts"].items():
        restored = [0] * len(per_fpga)
        for position, original in enumerate(order):
            restored[original] = per_fpga[position]
        permuted[name] = restored
    solution["counts"] = permuted
    return payload


# --------------------------------------------------------------------------- #
# Canonical request documents
# --------------------------------------------------------------------------- #
def canonical_problem(problem: AllocationProblem) -> dict[str, Any]:
    """Order- and formatting-independent document of one allocation problem.

    Memoized on the (frozen) problem instance -- a batch of requests over a
    handful of distinct problems canonicalises each problem once.  Callers
    must treat the returned document as immutable.
    """
    cached = problem.__dict__.get("_cached_canonical_document")
    if cached is not None:
        return cached
    kernels = []
    for kernel in sorted(problem.pipeline, key=lambda k: k.name):
        kernels.append(
            {
                "name": kernel.name,
                "resources": {kind: kernel.resources[kind] for kind in RESOURCE_KINDS},
                "bandwidth": kernel.bandwidth,
                "wcet_ms": kernel.wcet_ms,
                "max_cus": kernel.max_cus,
            }
        )
    document = {
        "kernels": kernels,
        "platform": _canonical_platform_document(problem.platform),
        "weights": {"alpha": problem.weights.alpha, "beta": problem.weights.beta},
    }
    object.__setattr__(problem, "_cached_canonical_document", document)
    return document


def canonical_request(
    problem: AllocationProblem,
    method: str = "gp+a",
    heuristic_settings: HeuristicSettings | None = None,
    exact_settings: ExactSettings | None = None,
) -> dict[str, Any]:
    """Canonical document of one ``(problem, method, settings)`` request.

    Settings default to the solver defaults, so "no settings given" and
    "defaults spelled out" are the same request.  Settings (and weights) that
    the method provably ignores are normalised away:

    * ``"minlp"`` never reads the heuristic settings and zeroes ``beta``;
    * the exact methods are the only readers of :class:`ExactSettings`.
    """
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; options: {METHODS}")
    problem_document = canonical_problem(problem)
    if method == "minlp":
        # Copy-on-write: the problem document is memoized and must stay pristine.
        problem_document = {
            **problem_document,
            "weights": {**problem_document["weights"], "beta": 0.0},
        }
    document = {
        "version": CANONICAL_VERSION,
        "method": method,
        "problem": problem_document,
    }
    if method == "gp+a":
        document["heuristic_settings"] = asdict(heuristic_settings or HeuristicSettings())
    else:
        document["exact_settings"] = asdict(exact_settings or ExactSettings())
    return document


def fingerprint(
    problem: AllocationProblem,
    method: str = "gp+a",
    heuristic_settings: HeuristicSettings | None = None,
    exact_settings: ExactSettings | None = None,
) -> str:
    """SHA-256 content fingerprint of one allocation request."""
    document = canonical_request(problem, method, heuristic_settings, exact_settings)
    return hashlib.sha256(canonical_json(document).encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------- #
# Fleet fingerprints
# --------------------------------------------------------------------------- #
def canonical_fleet(fleet) -> dict[str, Any]:
    """Canonical document of one :class:`~repro.fleet.state.FleetState`.

    Unlike the per-app platform document, the class list is
    **order-preserving**: fleet allocations carry per-tenant shares that
    index device classes *positionally*, so collapsing permuted-class
    fleets onto one fingerprint would serve share vectors bound to the
    wrong classes.  Tenant order is preserved for the same reason -- the
    carve breaks ties by tenant position, so permuted-tenant fleets may
    legitimately allocate differently.  Within a tenant, kernels sort by
    name exactly as in :func:`canonical_problem`.
    """
    classes = [
        {
            "count": device_class.count,
            "resource_limit": {
                kind: device_class.resource_limit[kind] for kind in RESOURCE_KINDS
            },
            "bandwidth_limit": device_class.bandwidth_limit,
        }
        for device_class in fleet.classes
    ]
    tenants = []
    for tenant in fleet.tenants:
        kernels = [
            {
                "name": kernel.name,
                "resources": {kind: kernel.resources[kind] for kind in RESOURCE_KINDS},
                "bandwidth": kernel.bandwidth,
                "wcet_ms": kernel.wcet_ms,
                "max_cus": kernel.max_cus,
            }
            for kernel in sorted(tenant.pipeline, key=lambda k: k.name)
        ]
        tenants.append(
            {
                "id": tenant.id,
                "weight": tenant.weight,
                "weights": {"alpha": tenant.weights.alpha, "beta": tenant.weights.beta},
                "kernels": kernels,
            }
        )
    return {"classes": classes, "tenants": tenants}


def fleet_fingerprint(fleet, mode: str = "heuristic") -> str:
    """SHA-256 content fingerprint of one fleet allocation request.

    The fingerprint keys the same result store / WAL / router machinery as
    per-app fingerprints; ``kind: "fleet"`` keeps the two namespaces from
    ever colliding.
    """
    document = {
        "version": CANONICAL_VERSION,
        "kind": "fleet",
        "mode": mode,
        "fleet": canonical_fleet(fleet),
    }
    return hashlib.sha256(canonical_json(document).encode("utf-8")).hexdigest()


def group_key(
    problem: AllocationProblem,
    method: str = "gp+a",
    heuristic_settings: HeuristicSettings | None = None,
    exact_settings: ExactSettings | None = None,
) -> str:
    """Memo-sharing group of a request: same constrained problem + GP config.

    Requests in one group reuse each other's per-process caches: the GP
    relaxation and the discretisation memo depend on the problem (pipeline +
    constraint) and the GP/discretisation settings, but *not* on the
    allocator parameters ``T``/``delta``/``criticality``.  The batch API
    sorts tasks by this key before handing them to the executor so one
    worker solves the shared prefix once -- the same trick the Figure 2
    T-sweep uses.
    """
    document = canonical_request(problem, method, heuristic_settings, exact_settings)
    if method == "gp+a":
        for allocator_only in ("t_percent", "delta_percent", "criticality"):
            document["heuristic_settings"].pop(allocator_only, None)
    return canonical_json(document)
