"""Per-shard append-only write-ahead log of acknowledged async jobs.

The async job queue acknowledges a submission before solving it, which
makes the ack a *promise*: once ``/solve_batch mode=async`` has returned a
job id, a ``kill -9`` must not lose the work.  This module keeps that
promise.  Every submission is journaled -- the full request documents, not
references -- to an append-only log **before** the ack leaves the process,
and on restart :meth:`JobWal.replay` returns every journaled job that never
logged a completion marker so the service can push it back through the
normal deduping batch path.

Record framing
--------------
Each record is length-prefixed and CRC-framed::

    [4-byte LE payload length][4-byte LE CRC32 of payload][payload JSON]

A torn tail (the crash landed mid-write) or a corrupt record fails its CRC;
the reader stops there, reports how many bytes it dropped, and the writer
truncates the tail on open -- a damaged log never poisons recovery, it only
shortens it to the records that were durable.

Durability policy
-----------------
Submit records are fsynced before the ack (group commit: concurrent
submitters share one fsync whenever their writes land before a neighbour's
sync call -- the ``fsyncs_coalesced`` counter measures the saving).
Lifecycle markers (``start``/``complete``) are buffered writes only: losing
one merely causes an idempotent replay, because the result store already
holds every solved outcome and the batch path dedupes by fingerprint.

Sharding & compaction
---------------------
Jobs are striped across ``segments`` independent log files by job sequence
number, each with its own locks, so concurrent submitters do not serialise
behind one fsync queue.  A segment is compacted -- rewritten keeping only
records of unfinished jobs -- after ``compact_interval`` completions land
in it, so the log tracks the *live* queue instead of growing with total
history.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from pathlib import Path
from typing import Any, Callable, Iterator

from .faults import inject

#: Framing header: payload length + CRC32, both little-endian uint32.
_HEADER = struct.Struct("<II")

#: Log file name pattern inside the WAL directory.
SEGMENT_PATTERN = "wal-{index:02d}.log"

#: Record types, in lifecycle order.
RECORD_TYPES = ("submit", "start", "complete")


class WalError(RuntimeError):
    """Raised for structural misuse of the WAL (not for torn tails, which
    are expected crash debris and handled by truncation)."""


def encode_record(payload: dict[str, Any]) -> bytes:
    """Frame one record: length + CRC header, JSON payload."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


def decode_records(data: bytes) -> tuple[list[dict[str, Any]], int]:
    """Decode framed records; returns ``(records, valid_bytes)``.

    Scanning stops at the first truncated or CRC-corrupt record;
    ``valid_bytes`` is the offset of the last intact record's end, so the
    caller can truncate the broken tail away.
    """
    records: list[dict[str, Any]] = []
    offset = 0
    total = len(data)
    while offset + _HEADER.size <= total:
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > total:  # torn tail: the crash landed mid-record
            break
        body = data[start:end]
        if zlib.crc32(body) != crc:
            break
        try:
            record = json.loads(body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            break
        if not isinstance(record, dict):
            break
        records.append(record)
        offset = end
    return records, offset


class WalSegment:
    """One append-only log file with group-commit fsync.

    ``append`` writes into the OS buffer under the write lock;
    ``append(durable=True)`` additionally syncs -- but a concurrent
    submitter whose record was already covered by a neighbour's fsync skips
    the syscall entirely (``fsyncs_coalesced``).  All counters are guarded
    by the write lock.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._write_lock = threading.Lock()
        self._sync_lock = threading.Lock()
        self.appends = 0
        self.fsyncs = 0
        self.fsyncs_coalesced = 0
        self.truncated_bytes = 0
        self.compactions = 0
        #: Completion markers appended since the last compaction (the
        #: compaction trigger counter of the owning :class:`JobWal`).
        self.completes_since_compact = 0
        records, valid = self._read_all()
        self._records = records
        self._file = open(self.path, "ab")
        if self._file.tell() > valid:  # crash debris: drop the torn tail
            self.truncated_bytes += self._file.tell() - valid
            self._file.truncate(valid)
            self._file.seek(valid)
        self._appended_offset = valid
        self._synced_offset = valid

    def _read_all(self) -> tuple[list[dict[str, Any]], int]:
        if not self.path.exists():
            return [], 0
        return decode_records(self.path.read_bytes())

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #
    def append(self, record: dict[str, Any], durable: bool) -> None:
        """Write one record; with ``durable`` it is on disk when this
        returns (directly or via a concurrent group commit)."""
        inject("wal.append")
        frame = encode_record(record)
        with self._write_lock:
            self._file.write(frame)
            self._file.flush()
            self._appended_offset += len(frame)
            offset = self._appended_offset
            self.appends += 1
            self._records.append(record)
        if durable:
            self.sync(offset)

    def sync(self, up_to_offset: int | None = None) -> None:
        """Group-commit fsync: everything appended before the call is made
        durable; skipped when a neighbour's fsync already covered it."""
        with self._sync_lock:
            if up_to_offset is not None and self._synced_offset >= up_to_offset:
                with self._write_lock:
                    self.fsyncs_coalesced += 1
                return
            inject("wal.fsync")
            with self._write_lock:
                target = self._appended_offset
                self._file.flush()
            os.fsync(self._file.fileno())
            self._synced_offset = max(self._synced_offset, target)
            with self._write_lock:
                self.fsyncs += 1

    # ------------------------------------------------------------------ #
    # Reading / compaction
    # ------------------------------------------------------------------ #
    def records(self) -> list[dict[str, Any]]:
        with self._write_lock:
            return list(self._records)

    def live_submissions(self) -> list[dict[str, Any]]:
        """Submit records with no completion marker, in append order."""
        with self._write_lock:
            completed = {
                record.get("job_id")
                for record in self._records
                if record.get("type") == "complete"
            }
            return [
                record
                for record in self._records
                if record.get("type") == "submit" and record.get("job_id") not in completed
            ]

    def compact(self) -> int:
        """Rewrite the segment keeping only records of unfinished jobs.

        Atomic: the survivors are written to a sibling temp file, fsynced,
        and moved over the segment with ``os.replace`` -- a crash during
        compaction leaves either the old log or the new one, never a mix.
        Returns the number of records dropped.
        """
        inject("wal.compact")
        with self._sync_lock, self._write_lock:
            live = {
                record.get("job_id")
                for record in self._records
                if record.get("type") == "submit"
            } - {
                record.get("job_id")
                for record in self._records
                if record.get("type") == "complete"
            }
            survivors = [
                record for record in self._records if record.get("job_id") in live
            ]
            dropped = len(self._records) - len(survivors)
            temp_path = self.path.with_suffix(".compact")
            with open(temp_path, "wb") as temp:
                for record in survivors:
                    temp.write(encode_record(record))
                temp.flush()
                os.fsync(temp.fileno())
            self._file.close()
            os.replace(temp_path, self.path)
            self._file = open(self.path, "ab")
            self._records = survivors
            self._appended_offset = self._file.tell()
            self._synced_offset = self._appended_offset
            self.compactions += 1
            self.completes_since_compact = 0
            return dropped

    def close(self) -> None:
        """Flush, final-fsync and close the segment.

        The final fsync makes *buffered* lifecycle markers (start/complete)
        durable too, so a graceful shutdown leaves a log that replays to
        exactly the in-memory queue state -- no spurious re-runs on the
        next start, and never a torn tail.
        """
        with self._sync_lock, self._write_lock:
            if not self._file.closed:
                self._file.flush()
                if self._appended_offset > self._synced_offset:
                    os.fsync(self._file.fileno())
                    self._synced_offset = self._appended_offset
                    self.fsyncs += 1
                self._file.close()


class JobWal:
    """The job queue's write-ahead log: ``segments`` striped WAL files.

    Parameters
    ----------
    directory:
        Where the segment files live (created if missing).  A restart on
        the same directory finds every journaled job again.
    segments:
        Independent log files; a job's records all land in the segment
        chosen by its sequence number, so compaction is per-segment and
        concurrent submitters rarely share an fsync queue.
    compact_interval:
        Completion markers a segment absorbs before it is compacted.
    """

    def __init__(
        self,
        directory: str | Path,
        segments: int = 4,
        compact_interval: int = 256,
    ):
        if segments < 1:
            raise WalError("segments must be >= 1")
        if compact_interval < 1:
            raise WalError("compact_interval must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.compact_interval = compact_interval
        self._segments = [
            WalSegment(self.directory / SEGMENT_PATTERN.format(index=index))
            for index in range(segments)
        ]
        self._lock = threading.Lock()
        self.replays = 0
        self.replayed_jobs = 0

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    def _segment_of(self, sequence: int) -> WalSegment:
        return self._segments[sequence % len(self._segments)]

    # ------------------------------------------------------------------ #
    # Journaling (called by the job queue)
    # ------------------------------------------------------------------ #
    def journal_submit(
        self,
        job_id: str,
        sequence: int,
        created_unix: float,
        documents: list[dict[str, Any]],
    ) -> None:
        """Durably journal one acknowledged submission (fsynced on return)."""
        self._segment_of(sequence).append(
            {
                "type": "submit",
                "job_id": job_id,
                "seq": sequence,
                "created_unix": created_unix,
                "requests": documents,
            },
            durable=True,
        )

    def journal_start(self, job_id: str, sequence: int) -> None:
        """Buffered start marker (diagnostic only; replay ignores it)."""
        self._segment_of(sequence).append(
            {"type": "start", "job_id": job_id, "seq": sequence}, durable=False
        )

    def journal_complete(self, job_id: str, sequence: int, status: str) -> None:
        """Buffered completion marker; triggers compaction at the interval.

        Deliberately not fsynced: losing it replays a finished job, which
        the deduping batch path answers from the result store -- cheap and
        idempotent, unlike an fsync per completion.
        """
        segment = self._segment_of(sequence)
        segment.append(
            {"type": "complete", "job_id": job_id, "seq": sequence, "status": status},
            durable=False,
        )
        with segment._write_lock:
            segment.completes_since_compact += 1
            due = segment.completes_since_compact >= self.compact_interval
        if due:
            segment.compact()

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #
    def replay(self) -> tuple[list[dict[str, Any]], int]:
        """Unfinished submissions in sequence order, plus the max sequence.

        The max sequence covers *every* journaled record (finished or not)
        so a restarted queue never reissues a job id.
        """
        live: list[dict[str, Any]] = []
        max_sequence = 0
        for segment in self._segments:
            live.extend(segment.live_submissions())
            for record in segment.records():
                max_sequence = max(max_sequence, int(record.get("seq", 0)))
        live.sort(key=lambda record: int(record.get("seq", 0)))
        with self._lock:
            self.replays += 1
            self.replayed_jobs += len(live)
        return live, max_sequence

    def compact(self) -> int:
        """Compact every segment now; returns total records dropped."""
        return sum(segment.compact() for segment in self._segments)

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    def live_jobs(self) -> list[str]:
        """Job ids journaled but not yet completed, in sequence order."""
        return [record["job_id"] for record in self.replay_peek()]

    def replay_peek(self) -> list[dict[str, Any]]:
        """Like :meth:`replay` but without touching the replay counters."""
        live: list[dict[str, Any]] = []
        for segment in self._segments:
            live.extend(segment.live_submissions())
        live.sort(key=lambda record: int(record.get("seq", 0)))
        return live

    def stats(self) -> dict[str, Any]:
        totals = {
            "segments": len(self._segments),
            "appends": 0,
            "fsyncs": 0,
            "fsyncs_coalesced": 0,
            "compactions": 0,
            "truncated_bytes": 0,
        }
        for segment in self._segments:
            with segment._write_lock:
                totals["appends"] += segment.appends
                totals["fsyncs"] += segment.fsyncs
                totals["fsyncs_coalesced"] += segment.fsyncs_coalesced
                totals["compactions"] += segment.compactions
                totals["truncated_bytes"] += segment.truncated_bytes
        with self._lock:
            totals["replays"] = self.replays
            totals["replayed_jobs"] = self.replayed_jobs
        totals["live_jobs"] = len(self.replay_peek())
        return totals

    def close(self) -> None:
        for segment in self._segments:
            segment.close()

    def __enter__(self) -> "JobWal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def iter_wal_files(directory: str | Path) -> Iterator[Path]:
    """The segment files currently present under ``directory``."""
    yield from sorted(Path(directory).glob("wal-*.log"))
