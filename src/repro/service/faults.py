"""Deterministic fault injection for the durability test harness.

Crash safety cannot be proven by reading the code: the WAL, the job queue
and the result store only earn their guarantees when crashes, IO errors and
latency spikes are actually *driven through them* at the worst moments.
This module gives every dangerous moment a name (a **site**) and lets a
test -- or the ``REPRO_FAULTS`` environment variable, for subprocess
harnesses -- attach a seeded fault plan to those names.

Sites instrumented across the service layer::

    wal.append            before a record is framed and written
    wal.fsync             before the group-commit fsync
    wal.compact           before a segment rewrite
    jobs.submit.journal   before the submit record is journaled (a crash
                          here loses nothing: the job was never acked)
    jobs.submit.ack       after the journal fsync, before the ack returns
                          (a crash here MUST be recovered on restart)
    jobs.run.start        a worker picked the job up
    jobs.run.complete     before the completion marker is journaled
    store.get             a result-store lookup
    store.put             a result-store write

Fault kinds:

* ``crash``    -- ``os._exit(137)``: a hard kill, no cleanup, no atexit
  (the in-process equivalent of ``kill -9``; only meaningful in spawned
  subprocesses);
* ``io_error`` -- raise :class:`InjectedIOError` (an ``OSError``);
* ``latency``  -- sleep ``ms`` milliseconds (default 10).

``REPRO_FAULTS`` grammar -- semicolon-separated specs, each
``site:kind[:key=value]*``::

    REPRO_FAULTS="jobs.run.complete:crash:nth=3"
    REPRO_FAULTS="wal.fsync:io_error:every=5;store.put:latency:ms=20:p=0.25:seed=7"

Trigger keys (all optional; with none the fault fires on every hit):

* ``nth=N``    fire exactly once, on the N-th hit of the site (1-based);
* ``every=N``  fire on every N-th hit;
* ``p=F``      fire with probability ``F`` per hit, drawn from a dedicated
  ``random.Random(seed)`` so a plan replays identically run over run;
* ``seed=N``   the seed for ``p`` (default 0);
* ``times=K``  stop firing after ``K`` fires;
* ``ms=N``     latency duration in milliseconds (``latency`` only).

The hot path pays one module-attribute read when no plan is active
(:func:`inject` checks a single global), so instrumented sites are free in
production.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any

#: Environment variable holding the fault plan of a spawned process.
FAULTS_ENV = "REPRO_FAULTS"

#: The recognised fault kinds.
FAULT_KINDS = ("crash", "io_error", "latency")


class FaultPlanError(ValueError):
    """Raised for an unparseable ``REPRO_FAULTS`` plan."""


class InjectedIOError(OSError):
    """The error raised by an ``io_error`` fault (an OSError subclass, so
    production ``except OSError`` paths treat it like the real thing)."""


@dataclass
class FaultSpec:
    """One parsed fault: where it strikes, what it does, when it triggers."""

    site: str
    kind: str
    nth: int | None = None
    every: int | None = None
    p: float | None = None
    seed: int = 0
    times: int | None = None
    ms: float = 10.0

    # Mutable trigger state (per spec, guarded by the injector lock).
    hits: int = field(default=0, compare=False)
    fires: int = field(default=0, compare=False)
    _rng: random.Random | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(f"unknown fault kind {self.kind!r}; options: {FAULT_KINDS}")
        if self.nth is not None and self.nth < 1:
            raise FaultPlanError("nth must be >= 1")
        if self.every is not None and self.every < 1:
            raise FaultPlanError("every must be >= 1")
        if self.p is not None and not 0.0 <= self.p <= 1.0:
            raise FaultPlanError("p must be in [0, 1]")
        if self.times is not None and self.times < 1:
            raise FaultPlanError("times must be >= 1")
        if self.p is not None:
            self._rng = random.Random(self.seed)

    def should_fire(self) -> bool:
        """Record one hit and decide (deterministically) whether to fire."""
        self.hits += 1
        if self.times is not None and self.fires >= self.times:
            return False
        if self.nth is not None:
            fire = self.hits == self.nth
        elif self.every is not None:
            fire = self.hits % self.every == 0
        elif self._rng is not None:
            fire = self._rng.random() < (self.p or 0.0)
        else:
            fire = True
        if fire:
            self.fires += 1
        return fire


def parse_fault_plan(text: str) -> list[FaultSpec]:
    """Parse the ``REPRO_FAULTS`` grammar into a list of :class:`FaultSpec`."""
    specs: list[FaultSpec] = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) < 2:
            raise FaultPlanError(f"fault spec {chunk!r} needs at least site:kind")
        site, kind = parts[0].strip(), parts[1].strip()
        if not site:
            raise FaultPlanError(f"fault spec {chunk!r} has an empty site")
        kwargs: dict[str, Any] = {}
        for option in parts[2:]:
            if "=" not in option:
                raise FaultPlanError(f"fault option {option!r} is not key=value")
            key, _, value = option.partition("=")
            key = key.strip()
            if key in ("nth", "every", "seed", "times"):
                kwargs[key] = int(value)
            elif key in ("p", "ms"):
                kwargs[key] = float(value)
            else:
                raise FaultPlanError(f"unknown fault option {key!r} in {chunk!r}")
        specs.append(FaultSpec(site=site, kind=kind, **kwargs))
    return specs


class FaultInjector:
    """Evaluates a fault plan at instrumented sites (thread-safe).

    The injector is deliberately boring: :meth:`fire` is the only verb, and
    everything it does is decided by the parsed plan.  ``hits()`` and
    ``fired()`` expose per-site counters so tests can assert a fault really
    struck where (and as often as) the plan said it would.
    """

    def __init__(self, specs: list[FaultSpec] | str):
        if isinstance(specs, str):
            specs = parse_fault_plan(specs)
        self._specs = list(specs)
        self._lock = threading.Lock()
        self._by_site: dict[str, list[FaultSpec]] = {}
        for spec in self._specs:
            self._by_site.setdefault(spec.site, []).append(spec)

    def fire(self, site: str) -> None:
        """Evaluate every spec attached to ``site`` (latency faults sleep
        outside the lock; crash faults never return)."""
        specs = self._by_site.get(site)
        if not specs:
            return
        sleep_ms = 0.0
        error: InjectedIOError | None = None
        crash = False
        with self._lock:
            for spec in specs:
                if not spec.should_fire():
                    continue
                if spec.kind == "latency":
                    sleep_ms += spec.ms
                elif spec.kind == "io_error":
                    error = InjectedIOError(f"injected IO error at {site}")
                else:
                    crash = True
        if sleep_ms > 0.0:
            time.sleep(sleep_ms / 1000.0)
        if crash:
            # The in-process kill -9: no cleanup handlers, no flushing --
            # exactly what a power cut or OOM kill leaves behind.
            os._exit(137)
        if error is not None:
            raise error

    def hits(self) -> dict[str, int]:
        with self._lock:
            totals: dict[str, int] = {}
            for spec in self._specs:
                totals[spec.site] = totals.get(spec.site, 0) + spec.hits
            return totals

    def fired(self) -> dict[str, int]:
        with self._lock:
            totals: dict[str, int] = {}
            for spec in self._specs:
                totals[spec.site] = totals.get(spec.site, 0) + spec.fires
            return totals


#: The active injector.  ``None`` means no plan: the instrumented sites pay
#: one global read and return.  Set explicitly by tests (:func:`set_injector`)
#: or loaded from ``REPRO_FAULTS`` at import of the service layer.
_ACTIVE: FaultInjector | None = None


def set_injector(injector: FaultInjector | None) -> None:
    """Install (or clear) the process-wide fault injector."""
    global _ACTIVE
    _ACTIVE = injector


def active_injector() -> FaultInjector | None:
    return _ACTIVE


def load_from_env() -> FaultInjector | None:
    """Install an injector from ``REPRO_FAULTS`` (no-op when unset/empty).

    Called once by the service layer at import; safe to call again (tests
    monkeypatching the environment re-invoke it).
    """
    plan = os.environ.get(FAULTS_ENV, "").strip()
    set_injector(FaultInjector(plan) if plan else None)
    return _ACTIVE


def inject(site: str) -> None:
    """Evaluate the active fault plan at ``site`` (free when no plan)."""
    if _ACTIVE is not None:
        _ACTIVE.fire(site)


# Subprocess harnesses (`repro serve` under REPRO_FAULTS) get their plan
# armed the moment the service layer imports; in-process tests install
# injectors explicitly via set_injector().
load_from_env()
