"""Batch solve API: dedupe by fingerprint, fan the rest out, cache results.

``solve_batch`` is the core of the allocation service: given N requests it
performs exactly as many solver invocations as there are *novel* problems --
duplicates collapse onto one fingerprint, cached fingerprints are answered
from the store, and only the remainder is executed (grouped so requests that
share the expensive GP/discretisation work land in the same executor chunk,
reusing the memo caches of :mod:`repro.core.discretize`).
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from typing import Any, Mapping, Sequence

from ..core.exact import ExactSettings
from ..core.heuristic import HeuristicSettings
from ..core.problem import AllocationProblem
from ..core.solution import SolveOutcome, SolveStatus
from ..core.solvers import METHODS
from ..explore.executor import DEFAULT_EXECUTOR, SolveTask, SweepExecutor, run_solve_task
from ..obs.trace import span
from ..workloads.serialization import SerializationError, problem_from_dict, problem_to_dict
from .canonical import canonical_fpga_order
from .canonical import fingerprint as compute_fingerprint
from .canonical import group_key as compute_group_key
from .canonical import outcome_payload_from_canonical, outcome_payload_to_canonical
from .store import ResultStore


def encode_outcome(outcome: SolveOutcome, problem: AllocationProblem) -> str:
    """Serialise an outcome for the result store, in canonical FPGA order.

    Fingerprints of heterogeneous platforms are invariant to the class
    order, so the stored counts must be too; homogeneous payloads are
    byte-identical to a plain ``to_dict`` dump.
    """
    return json.dumps(outcome_payload_to_canonical(outcome.to_dict(), problem))


#: Bounded memo of decoded outcomes.  The store tiers cache *payload
#: strings*; rebinding one to a problem costs a JSON parse plus solution
#: reconstruction, which dominates the warm hit path of large batch
#: replays.  Outcomes are frozen, so one decoded object can answer every
#: request sharing the payload and an equal problem.  Entries keep the
#: payload they were decoded from and only answer byte-identical payloads:
#: two solves of one fingerprint yield semantically equal results but may
#: differ in the wall-clock field, and a warm hit must return exactly what
#: the store holds.
_DECODE_MEMO_LIMIT = 4096
_decode_memo: "OrderedDict[tuple, tuple[str, SolveOutcome]]" = OrderedDict()
_decode_memo_lock = threading.Lock()


def decode_memo_clear() -> None:
    """Drop every memoized decoded outcome (used by tests)."""
    with _decode_memo_lock:
        _decode_memo.clear()


def decode_outcome(
    payload: str, problem: AllocationProblem, fingerprint: str | None = None
) -> SolveOutcome:
    """Rebind a stored payload to a request's problem (inverting the
    canonical FPGA order for heterogeneous platforms).

    With a ``fingerprint`` the decoded object is memoized: repeat warm hits
    for the same (fingerprint, problem) pair skip the JSON parse entirely.
    """
    key: tuple | None = None
    if fingerprint is not None:
        try:
            key = (fingerprint, problem)
            with _decode_memo_lock:
                entry = _decode_memo.get(key)
                if entry is not None and entry[0] == payload:
                    _decode_memo.move_to_end(key)
                    return entry[1]
        except TypeError:  # ad hoc unhashable problem: decode directly
            key = None
    outcome = SolveOutcome.from_dict(
        outcome_payload_from_canonical(json.loads(payload), problem), problem=problem
    )
    if key is not None:
        with _decode_memo_lock:
            _decode_memo[key] = (payload, outcome)
            while len(_decode_memo) > _DECODE_MEMO_LIMIT:
                _decode_memo.popitem(last=False)
    return outcome


def accumulate_counters(target: dict[str, int], source: Mapping[str, Any]) -> None:
    """Sum numeric solver counters into ``target`` (shared by the batch
    report and the service's ``/stats`` aggregate)."""
    for name, value in source.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            target[name] = target.get(name, 0) + int(value)


@dataclass(frozen=True)
class SolveRequest:
    """One allocation request: a problem, a method and optional settings."""

    problem: AllocationProblem
    method: str = "gp+a"
    heuristic_settings: HeuristicSettings | None = None
    exact_settings: ExactSettings | None = None

    def __post_init__(self) -> None:
        if self.method not in METHODS:
            raise ValueError(f"unknown method {self.method!r}; options: {METHODS}")

    def fingerprint(self) -> str:
        """Canonical content fingerprint, memoized (the request is frozen)."""
        cached = self.__dict__.get("_cached_fingerprint")
        if cached is None:
            cached = compute_fingerprint(
                self.problem, self.method, self.heuristic_settings, self.exact_settings
            )
            object.__setattr__(self, "_cached_fingerprint", cached)
        return cached

    def group_key(self) -> str:
        cached = self.__dict__.get("_cached_group_key")
        if cached is None:
            cached = compute_group_key(
                self.problem, self.method, self.heuristic_settings, self.exact_settings
            )
            object.__setattr__(self, "_cached_group_key", cached)
        return cached

    def task(self) -> SolveTask:
        return SolveTask(
            problem=self.problem,
            method=self.method,
            heuristic_settings=self.heuristic_settings,
            exact_settings=self.exact_settings,
        )


def _settings_from_dict(cls: type, payload: Mapping[str, Any] | None, label: str):
    """Build a settings dataclass from a JSON mapping, rejecting unknown keys."""
    if payload is None:
        return None
    if not isinstance(payload, Mapping):
        raise SerializationError(f"{label} must be a JSON object")
    known = {f.name for f in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
    unknown = set(payload) - known
    if unknown:
        raise SerializationError(f"unknown {label} fields: {sorted(unknown)}")
    try:
        return cls(**payload)
    except (TypeError, ValueError) as error:
        raise SerializationError(f"invalid {label}: {error}") from error


def request_to_dict(request: SolveRequest) -> dict[str, Any]:
    """Serialise a :class:`SolveRequest` into the service wire format (the
    inverse of :func:`request_from_dict`; also the WAL journal format)."""
    payload: dict[str, Any] = {
        "problem": problem_to_dict(request.problem),
        "method": request.method,
    }
    if request.heuristic_settings is not None:
        payload["heuristic_settings"] = asdict(request.heuristic_settings)
    if request.exact_settings is not None:
        payload["exact_settings"] = asdict(request.exact_settings)
    return payload


def requests_to_documents(requests: Sequence[SolveRequest]) -> list[dict[str, Any]]:
    """Serialise a request list for the WAL journal, sharing the problem
    document across duplicates (batches are duplicate-heavy by design, and
    the problem is by far the largest part of the payload)."""
    problem_memo: dict[int, dict[str, Any]] = {}
    documents: list[dict[str, Any]] = []
    for request in requests:
        problem_document = problem_memo.get(id(request.problem))
        if problem_document is None:
            problem_document = problem_to_dict(request.problem)
            problem_memo[id(request.problem)] = problem_document
        payload: dict[str, Any] = {
            "problem": problem_document,
            "method": request.method,
        }
        if request.heuristic_settings is not None:
            payload["heuristic_settings"] = asdict(request.heuristic_settings)
        if request.exact_settings is not None:
            payload["exact_settings"] = asdict(request.exact_settings)
        documents.append(payload)
    return documents


def request_from_dict(payload: Mapping[str, Any]) -> SolveRequest:
    """Build a :class:`SolveRequest` from a service JSON document."""
    if not isinstance(payload, Mapping):
        raise SerializationError("a solve request must be a JSON object")
    if "problem" not in payload:
        raise SerializationError("a solve request needs a 'problem' section")
    method = str(payload.get("method", "gp+a"))
    if method not in METHODS:
        raise SerializationError(f"unknown method {method!r}; options: {METHODS}")
    return SolveRequest(
        problem=problem_from_dict(payload["problem"]),
        method=method,
        heuristic_settings=_settings_from_dict(
            HeuristicSettings, payload.get("heuristic_settings"), "heuristic_settings"
        ),
        exact_settings=_settings_from_dict(
            ExactSettings, payload.get("exact_settings"), "exact_settings"
        ),
    )


@dataclass
class BatchReport:
    """Where each answer of one ``solve_batch`` call came from."""

    total: int = 0
    unique: int = 0
    duplicates: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    solves: int = 0
    groups: int = 0
    runtime_seconds: float = 0.0
    fingerprints: list[str] = field(default_factory=list)
    #: Solver work counters (LP solves, packer nodes, memo hits, ...) summed
    #: over the freshly solved requests of the batch -- cached answers add
    #: nothing, so these measure the actual work the batch caused.
    solver_counters: dict[str, int] = field(default_factory=dict)

    def add_solver_counters(self, counters: Mapping[str, Any]) -> None:
        accumulate_counters(self.solver_counters, counters)

    def as_dict(self) -> dict[str, Any]:
        return {
            "total": self.total,
            "unique": self.unique,
            "duplicates": self.duplicates,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "solves": self.solves,
            "groups": self.groups,
            "runtime_seconds": self.runtime_seconds,
            "solver_counters": dict(self.solver_counters),
        }


def solve_batch(
    requests: Sequence[SolveRequest],
    store: ResultStore | None = None,
    executor: SweepExecutor | None = None,
) -> tuple[list[SolveOutcome], BatchReport]:
    """Answer a batch of requests with the minimum number of solves.

    Returns the outcomes in request order plus a :class:`BatchReport` whose
    counters prove the dedupe: ``solves`` equals the number of distinct
    fingerprints that were in no cache tier.  Outcomes of duplicate requests
    are the *same object* (they are semantically one result).

    Cacheable outcomes (everything but ``ERROR``) are written back to the
    store under their request fingerprint.
    """
    start = time.perf_counter()
    executor = executor or DEFAULT_EXECUTOR
    store = store if store is not None else ResultStore()
    request_list = list(requests)

    report = BatchReport(total=len(request_list))
    with span("batch_fingerprint"):
        fingerprints = [request.fingerprint() for request in request_list]
        report.fingerprints = fingerprints

        # First occurrence of every fingerprint defines the canonical request.
        first_of: dict[str, SolveRequest] = {}
        for request, print_ in zip(request_list, fingerprints):
            first_of.setdefault(print_, request)
        report.unique = len(first_of)
        report.duplicates = report.total - report.unique

    # Tier lookups for the unique fingerprints.
    outcomes_by_print: dict[str, SolveOutcome] = {}
    missing: list[tuple[str, SolveRequest]] = []
    with span("batch_lookup"):
        for print_, request in first_of.items():
            lookup = store.get(print_)
            if lookup.hit:
                assert lookup.payload is not None
                outcomes_by_print[print_] = decode_outcome(
                    lookup.payload, request.problem, fingerprint=print_
                )
                if lookup.tier == "memory":
                    report.memory_hits += 1
                else:
                    report.disk_hits += 1
            else:
                missing.append((print_, request))

    # Solve the remainder, grouped so memo-sharing requests are contiguous
    # (the executor chunks tasks in order; one worker keeps a group's GP and
    # discretisation caches warm).
    if missing:
        with span("batch_solve"):
            keyed = sorted(
                ((request.group_key(), print_, request) for print_, request in missing),
                key=lambda item: item[0],
            )
            report.groups = len({key for key, _, _ in keyed})
            tasks = [request.task() for _, _, request in keyed]
            solved = executor.map(run_solve_task, tasks)
            report.solves = len(solved)
            for (_, print_, request), outcome in zip(keyed, solved):
                outcomes_by_print[print_] = outcome
                report.add_solver_counters(outcome.counters)
                if outcome.status is not SolveStatus.ERROR:
                    store.put(print_, encode_outcome(outcome, request.problem))

    report.runtime_seconds = time.perf_counter() - start
    # Duplicate requests share one outcome object -- unless their platform
    # spells the same fleet with the classes in a different order, in which
    # case the counts must be permuted into *that* request's FPGA order
    # (the same canonicalisation the store roundtrip performs).  Platforms
    # with matching canonical FPGA orders (both identity for homogeneous or
    # already-canonical fleets) agree position-by-position on every cap, so
    # the object can be shared outright.
    results: list[SolveOutcome] = []
    for request, print_ in zip(request_list, fingerprints):
        outcome = outcomes_by_print[print_]
        owner = first_of[print_]
        if (
            request is not owner
            and outcome.solution is not None
            and canonical_fpga_order(request.problem.platform)
            != canonical_fpga_order(owner.problem.platform)
        ):
            outcome = decode_outcome(encode_outcome(outcome, owner.problem), request.problem)
        results.append(outcome)
    return results, report
