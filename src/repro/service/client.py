"""Small stdlib HTTP client for the allocation service.

Mirrors the server's endpoints.  Problems and settings are serialised with
the same workload serialization layer the server parses with, and the
returned outcome documents can be re-bound to local problem objects::

    client = ServiceClient("http://127.0.0.1:8000")
    response = client.solve(problem)                 # raw JSON document
    outcome = client.solve_outcome(problem)          # bound SolveOutcome

Retry & backoff
---------------
Transient failures are retried with capped exponential backoff plus
deterministic jitter (:class:`RetryPolicy`): 429 (queue full) and 503
(overload shedding) honour the server's ``Retry-After`` hint, and
connection errors -- a restarting server -- are retried the same way, so a
``wait_for_job`` poll loop rides straight through a crash/recovery cycle.
Retrying is safe because the service is idempotent by fingerprint: a solve
re-sent after an ambiguous failure dedupes onto the cached outcome instead
of redoing work.  Everything non-transient (4xx validation errors, 500s)
still surfaces immediately.  Per-client retry counters live in
:attr:`ServiceClient.retry_stats`.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from ..core.exact import ExactSettings
from ..core.heuristic import HeuristicSettings
from ..core.problem import AllocationProblem
from ..core.solution import SolveOutcome
from .batch import SolveRequest, request_to_dict

__all__ = [
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "request_to_dict",  # re-exported; lives in .batch since the WAL journals it
]


class ServiceError(RuntimeError):
    """Raised when the service answers with an error document or bad status.

    ``status`` carries the HTTP status code when one was received (``None``
    for connection-level failures); ``retry_after_seconds`` echoes the
    server's ``Retry-After`` hint on 429/503 answers.
    """

    def __init__(
        self,
        message: str,
        status: int | None = None,
        retry_after_seconds: float | None = None,
    ):
        super().__init__(message)
        self.status = status
        self.retry_after_seconds = retry_after_seconds


#: HTTP statuses that signal "try again later", never "you are wrong".
RETRYABLE_STATUSES = (429, 503)

#: Failures that mean "the server is unreachable or died mid-request" -- all
#: retryable.  ``urlopen`` wraps connect-time failures in ``URLError``, but a
#: server killed while streaming its response surfaces raw
#: ``http.client.RemoteDisconnected`` / ``ConnectionResetError`` instead.
CONNECTION_ERRORS = (urllib.error.URLError, http.client.HTTPException, ConnectionError)


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    Attempt ``n`` (0-based) sleeps ``min(cap, base * 2**n)`` seconds,
    stretched by up to ``jitter`` (a fraction) drawn from a seeded RNG,
    and never less than the server's ``Retry-After`` (itself capped by
    ``retry_after_cap_seconds`` so a confused server cannot park a client
    for minutes).  ``retries=0`` disables retrying entirely.
    """

    retries: int = 3
    backoff_base_seconds: float = 0.05
    backoff_cap_seconds: float = 5.0
    retry_after_cap_seconds: float = 30.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff_base_seconds <= 0 or self.backoff_cap_seconds <= 0:
            raise ValueError("backoff timings must be positive")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay_seconds(
        self, attempt: int, retry_after: float | None, rng: random.Random
    ) -> float:
        delay = min(self.backoff_cap_seconds, self.backoff_base_seconds * 2.0**attempt)
        if retry_after is not None:
            delay = max(delay, min(retry_after, self.retry_after_cap_seconds))
        return delay * (1.0 + self.jitter * rng.random())


class _Retryable(Exception):
    """Internal transport signal: wraps a ServiceError worth retrying."""

    def __init__(self, error: ServiceError, reason: str):
        super().__init__(str(error))
        self.error = error
        self.reason = reason  # "429", "503" or "connection"


def _parse_retry_after(headers: Any) -> float | None:
    value = headers.get("Retry-After") if headers is not None else None
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except (TypeError, ValueError):
        return None


class ServiceClient:
    """Talk to a running allocation service over HTTP."""

    def __init__(
        self,
        base_url: str,
        timeout_seconds: float = 60.0,
        retry_policy: RetryPolicy | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout_seconds = timeout_seconds
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self._sleep = sleep
        self._rng = random.Random(self.retry_policy.seed)
        #: Cumulative transport retry counters (read by the load generator).
        self.retry_stats: dict[str, float] = {
            "attempts": 0,
            "retries": 0,
            "rejected_429": 0,
            "rejected_503": 0,
            "connection_errors": 0,
            "backoff_seconds": 0.0,
        }

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _with_retries(self, attempt_once: Callable[[], Any]) -> Any:
        """Run one transport attempt under the retry policy."""
        attempt = 0
        while True:
            self.retry_stats["attempts"] += 1
            try:
                return attempt_once()
            except _Retryable as failure:
                key = {
                    "429": "rejected_429",
                    "503": "rejected_503",
                }.get(failure.reason, "connection_errors")
                self.retry_stats[key] += 1
                if attempt >= self.retry_policy.retries:
                    raise failure.error from failure.error.__cause__
                delay = self.retry_policy.delay_seconds(
                    attempt, failure.error.retry_after_seconds, self._rng
                )
                self.retry_stats["retries"] += 1
                self.retry_stats["backoff_seconds"] += delay
                self._sleep(delay)
                attempt += 1

    def _request(
        self,
        path: str,
        payload: Mapping[str, Any] | None = None,
        method: str | None = None,
    ) -> dict[str, Any]:
        url = f"{self.base_url}{path}"
        data = json.dumps(payload).encode("utf-8") if payload is not None else None

        def attempt_once() -> dict[str, Any]:
            request = urllib.request.Request(
                url,
                data=data,
                headers={"Content-Type": "application/json"} if data else {},
                method=method,
            )
            try:
                with urllib.request.urlopen(request, timeout=self.timeout_seconds) as response:
                    document = json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as error:
                try:
                    message = json.loads(error.read().decode("utf-8")).get("error", str(error))
                except Exception:
                    message = str(error)
                service_error = ServiceError(
                    f"{path}: {message}",
                    status=error.code,
                    retry_after_seconds=_parse_retry_after(error.headers),
                )
                service_error.__cause__ = error
                if error.code in RETRYABLE_STATUSES:
                    raise _Retryable(service_error, str(error.code)) from error
                raise service_error from error
            except CONNECTION_ERRORS as error:
                reason = getattr(error, "reason", error)
                service_error = ServiceError(f"cannot reach {url}: {reason}")
                service_error.__cause__ = error
                raise _Retryable(service_error, "connection") from error
            if isinstance(document, Mapping) and "error" in document:
                raise ServiceError(str(document["error"]))
            return document

        return self._with_retries(attempt_once)

    def _request_text(self, path: str) -> str:
        """GET a non-JSON endpoint (the Prometheus ``/metrics`` text)."""
        url = f"{self.base_url}{path}"

        def attempt_once() -> str:
            try:
                with urllib.request.urlopen(url, timeout=self.timeout_seconds) as response:
                    return response.read().decode("utf-8")
            except urllib.error.HTTPError as error:
                service_error = ServiceError(
                    f"{path}: {error}",
                    status=error.code,
                    retry_after_seconds=_parse_retry_after(error.headers),
                )
                service_error.__cause__ = error
                if error.code in RETRYABLE_STATUSES:
                    raise _Retryable(service_error, str(error.code)) from error
                raise service_error from error
            except CONNECTION_ERRORS as error:
                reason = getattr(error, "reason", error)
                service_error = ServiceError(f"cannot reach {url}: {reason}")
                service_error.__cause__ = error
                raise _Retryable(service_error, "connection") from error

        return self._with_retries(attempt_once)

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def solve(
        self,
        problem: AllocationProblem,
        method: str = "gp+a",
        heuristic_settings: HeuristicSettings | None = None,
        exact_settings: ExactSettings | None = None,
    ) -> dict[str, Any]:
        """POST /solve; returns the raw response document."""
        request = SolveRequest(
            problem=problem,
            method=method,
            heuristic_settings=heuristic_settings,
            exact_settings=exact_settings,
        )
        return self._request("/solve", request_to_dict(request))

    def solve_outcome(
        self,
        problem: AllocationProblem,
        method: str = "gp+a",
        heuristic_settings: HeuristicSettings | None = None,
        exact_settings: ExactSettings | None = None,
    ) -> SolveOutcome:
        """POST /solve and bind the returned outcome to ``problem``."""
        response = self.solve(problem, method, heuristic_settings, exact_settings)
        return SolveOutcome.from_dict(response["outcome"], problem=problem)

    def solve_batch(self, requests: Sequence[SolveRequest]) -> dict[str, Any]:
        """POST /solve_batch; returns the raw response document."""
        payload = {"requests": [request_to_dict(request) for request in requests]}
        return self._request("/solve_batch", payload)

    # ------------------------------------------------------------------ #
    # Async batches
    # ------------------------------------------------------------------ #
    def solve_batch_async(self, requests: Sequence[SolveRequest]) -> dict[str, Any]:
        """POST /solve_batch with ``mode=async``; returns the queued job
        document (poll :meth:`job` with its ``job_id``)."""
        payload = {
            "mode": "async",
            "requests": [request_to_dict(request) for request in requests],
        }
        return self._request("/solve_batch", payload)

    def job(self, job_id: str) -> dict[str, Any]:
        """GET /jobs/<id>; raises :class:`ServiceError` for unknown ids."""
        return self._request(f"/jobs/{job_id}")

    def jobs(self) -> list[dict[str, Any]]:
        """GET /jobs; summaries of every retained async job."""
        return self._request("/jobs")["jobs"]

    def wait_for_job(
        self,
        job_id: str,
        timeout_seconds: float = 60.0,
        poll_seconds: float = 0.05,
    ) -> dict[str, Any]:
        """Poll ``/jobs/<id>`` until the job is ``done`` or ``failed``."""
        deadline = time.monotonic() + timeout_seconds
        while True:
            document = self.job(job_id)
            if document["status"] in ("done", "failed"):
                return document
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"job {job_id} still {document['status']} after {timeout_seconds} s"
                )
            time.sleep(poll_seconds)

    def solve_batch_async_outcomes(
        self,
        requests: Sequence[SolveRequest],
        timeout_seconds: float = 60.0,
        poll_seconds: float = 0.05,
    ) -> tuple[list[SolveOutcome], dict[str, Any]]:
        """Submit async, poll to completion, bind outcomes to the requests."""
        job_id = self.solve_batch_async(requests)["job_id"]
        document = self.wait_for_job(job_id, timeout_seconds, poll_seconds)
        if document["status"] != "done":
            raise ServiceError(f"job {job_id} failed: {document.get('error', 'unknown')}")
        outcomes = [
            SolveOutcome.from_dict(outcome_document, problem=request.problem)
            for outcome_document, request in zip(document["outcomes"], requests)
        ]
        return outcomes, document["report"]

    def solve_batch_outcomes(
        self, requests: Sequence[SolveRequest]
    ) -> tuple[list[SolveOutcome], dict[str, Any]]:
        """POST /solve_batch and bind each outcome to its request problem."""
        response = self.solve_batch(requests)
        outcomes = [
            SolveOutcome.from_dict(document, problem=request.problem)
            for document, request in zip(response["outcomes"], requests)
        ]
        return outcomes, response["report"]

    # ------------------------------------------------------------------ #
    # Fleet endpoints
    # ------------------------------------------------------------------ #
    def fleet_allocate(
        self, fleet_document: Mapping[str, Any], mode: str = "heuristic"
    ) -> dict[str, Any]:
        """POST /fleet/allocate; ``fleet_document`` is a ``fleet_to_dict``
        wire document.  Returns the raw response (allocation + metadata)."""
        return self._request(
            "/fleet/allocate", {"fleet": dict(fleet_document), "mode": mode}
        )

    def fleet_arrival(
        self, tenant_document: Mapping[str, Any], mode: str = "heuristic"
    ) -> dict[str, Any]:
        """POST /fleet/tenants (tenant arrival + fleet re-carve)."""
        return self._request(
            "/fleet/tenants", {"tenant": dict(tenant_document), "mode": mode}
        )

    def fleet_departure(self, tenant_id: str) -> dict[str, Any]:
        """DELETE /fleet/tenants/<id> (departure + re-carve of the rest)."""
        return self._request(f"/fleet/tenants/{tenant_id}", method="DELETE")

    def health(self) -> dict[str, Any]:
        """GET /health."""
        return self._request("/health")

    def stats(self) -> dict[str, Any]:
        """GET /stats."""
        return self._request("/stats")

    def metrics(self) -> str:
        """GET /metrics; the raw Prometheus text exposition."""
        return self._request_text("/metrics")

    def trace(self, fingerprint: str) -> dict[str, Any]:
        """GET /trace/<fingerprint>; the retained span tree of one solve."""
        return self._request(f"/trace/{fingerprint}")
