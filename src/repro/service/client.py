"""Small stdlib HTTP client for the allocation service.

Mirrors the server's four endpoints.  Problems and settings are serialised
with the same workload serialization layer the server parses with, and the
returned outcome documents can be re-bound to local problem objects::

    client = ServiceClient("http://127.0.0.1:8000")
    response = client.solve(problem)                 # raw JSON document
    outcome = client.solve_outcome(problem)          # bound SolveOutcome
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import asdict
from typing import Any, Mapping, Sequence

from ..core.exact import ExactSettings
from ..core.heuristic import HeuristicSettings
from ..core.problem import AllocationProblem
from ..core.solution import SolveOutcome
from ..workloads.serialization import problem_to_dict
from .batch import SolveRequest


class ServiceError(RuntimeError):
    """Raised when the service answers with an error document or bad status."""


def request_to_dict(request: SolveRequest) -> dict[str, Any]:
    """Serialise a :class:`SolveRequest` into the service wire format."""
    payload: dict[str, Any] = {
        "problem": problem_to_dict(request.problem),
        "method": request.method,
    }
    if request.heuristic_settings is not None:
        payload["heuristic_settings"] = asdict(request.heuristic_settings)
    if request.exact_settings is not None:
        payload["exact_settings"] = asdict(request.exact_settings)
    return payload


class ServiceClient:
    """Talk to a running allocation service over HTTP."""

    def __init__(self, base_url: str, timeout_seconds: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_seconds = timeout_seconds

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _request(self, path: str, payload: Mapping[str, Any] | None = None) -> dict[str, Any]:
        url = f"{self.base_url}{path}"
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        request = urllib.request.Request(
            url, data=data, headers={"Content-Type": "application/json"} if data else {}
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_seconds) as response:
                document = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                message = json.loads(error.read().decode("utf-8")).get("error", str(error))
            except Exception:
                message = str(error)
            raise ServiceError(f"{path}: {message}") from error
        except urllib.error.URLError as error:
            raise ServiceError(f"cannot reach {url}: {error.reason}") from error
        if isinstance(document, Mapping) and "error" in document:
            raise ServiceError(str(document["error"]))
        return document

    def _request_text(self, path: str) -> str:
        """GET a non-JSON endpoint (the Prometheus ``/metrics`` text)."""
        url = f"{self.base_url}{path}"
        try:
            with urllib.request.urlopen(url, timeout=self.timeout_seconds) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            raise ServiceError(f"{path}: {error}") from error
        except urllib.error.URLError as error:
            raise ServiceError(f"cannot reach {url}: {error.reason}") from error

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def solve(
        self,
        problem: AllocationProblem,
        method: str = "gp+a",
        heuristic_settings: HeuristicSettings | None = None,
        exact_settings: ExactSettings | None = None,
    ) -> dict[str, Any]:
        """POST /solve; returns the raw response document."""
        request = SolveRequest(
            problem=problem,
            method=method,
            heuristic_settings=heuristic_settings,
            exact_settings=exact_settings,
        )
        return self._request("/solve", request_to_dict(request))

    def solve_outcome(
        self,
        problem: AllocationProblem,
        method: str = "gp+a",
        heuristic_settings: HeuristicSettings | None = None,
        exact_settings: ExactSettings | None = None,
    ) -> SolveOutcome:
        """POST /solve and bind the returned outcome to ``problem``."""
        response = self.solve(problem, method, heuristic_settings, exact_settings)
        return SolveOutcome.from_dict(response["outcome"], problem=problem)

    def solve_batch(self, requests: Sequence[SolveRequest]) -> dict[str, Any]:
        """POST /solve_batch; returns the raw response document."""
        payload = {"requests": [request_to_dict(request) for request in requests]}
        return self._request("/solve_batch", payload)

    # ------------------------------------------------------------------ #
    # Async batches
    # ------------------------------------------------------------------ #
    def solve_batch_async(self, requests: Sequence[SolveRequest]) -> dict[str, Any]:
        """POST /solve_batch with ``mode=async``; returns the queued job
        document (poll :meth:`job` with its ``job_id``)."""
        payload = {
            "mode": "async",
            "requests": [request_to_dict(request) for request in requests],
        }
        return self._request("/solve_batch", payload)

    def job(self, job_id: str) -> dict[str, Any]:
        """GET /jobs/<id>; raises :class:`ServiceError` for unknown ids."""
        return self._request(f"/jobs/{job_id}")

    def jobs(self) -> list[dict[str, Any]]:
        """GET /jobs; summaries of every retained async job."""
        return self._request("/jobs")["jobs"]

    def wait_for_job(
        self,
        job_id: str,
        timeout_seconds: float = 60.0,
        poll_seconds: float = 0.05,
    ) -> dict[str, Any]:
        """Poll ``/jobs/<id>`` until the job is ``done`` or ``failed``."""
        deadline = time.monotonic() + timeout_seconds
        while True:
            document = self.job(job_id)
            if document["status"] in ("done", "failed"):
                return document
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"job {job_id} still {document['status']} after {timeout_seconds} s"
                )
            time.sleep(poll_seconds)

    def solve_batch_async_outcomes(
        self,
        requests: Sequence[SolveRequest],
        timeout_seconds: float = 60.0,
        poll_seconds: float = 0.05,
    ) -> tuple[list[SolveOutcome], dict[str, Any]]:
        """Submit async, poll to completion, bind outcomes to the requests."""
        job_id = self.solve_batch_async(requests)["job_id"]
        document = self.wait_for_job(job_id, timeout_seconds, poll_seconds)
        if document["status"] != "done":
            raise ServiceError(f"job {job_id} failed: {document.get('error', 'unknown')}")
        outcomes = [
            SolveOutcome.from_dict(outcome_document, problem=request.problem)
            for outcome_document, request in zip(document["outcomes"], requests)
        ]
        return outcomes, document["report"]

    def solve_batch_outcomes(
        self, requests: Sequence[SolveRequest]
    ) -> tuple[list[SolveOutcome], dict[str, Any]]:
        """POST /solve_batch and bind each outcome to its request problem."""
        response = self.solve_batch(requests)
        outcomes = [
            SolveOutcome.from_dict(document, problem=request.problem)
            for document, request in zip(response["outcomes"], requests)
        ]
        return outcomes, response["report"]

    def health(self) -> dict[str, Any]:
        """GET /health."""
        return self._request("/health")

    def stats(self) -> dict[str, Any]:
        """GET /stats."""
        return self._request("/stats")

    def metrics(self) -> str:
        """GET /metrics; the raw Prometheus text exposition."""
        return self._request_text("/metrics")

    def trace(self, fingerprint: str) -> dict[str, Any]:
        """GET /trace/<fingerprint>; the retained span tree of one solve."""
        return self._request(f"/trace/{fingerprint}")
