"""A pool of shard-group worker processes behind one supervisor.

One Python process serves at most one core's worth of warm cache hits: the
PR 5/6 work pushed single-process warm replay to ~900k req/s and the GIL is
the wall.  This module runs **one full service per shard group** -- its own
LRU+SQLite result store, its own async job queue, its own WAL segments --
as a separate OS process with a private HTTP endpoint, so N groups serve on
N cores.  The routing front-end (:mod:`repro.service.router`) maps request
fingerprints onto groups with the consistent hash ring of
:mod:`repro.service.hashing`; this module owns everything *below* the ring:

* **lifecycle** -- workers are started with the ``spawn`` context (safe in
  a threaded parent, unlike ``fork``), hand their ephemeral port back
  through a pipe, and are considered up once the handshake lands;
* **health** -- a monitor thread heartbeats every worker process and
  notices exits within ``heartbeat_seconds``;
* **graceful drain** -- ``close()`` sends SIGTERM; each worker stops its
  accept loop, finishes queued jobs, final-fsyncs and closes its WAL
  segments, then exits 0 (escalation to SIGKILL only after a timeout);
* **crash recovery** -- a worker that dies (``kill -9``, OOM, a bug) is
  restarted automatically *on the same group directory*, so its
  ``AllocationService`` replays the WAL and every acknowledged job the
  dead process was holding is re-enqueued before the new process serves;
* **online resize** -- :meth:`WorkerPool.add_group` starts a worker for
  group N+1 and returns once it is healthy; the router swaps its ring only
  after that, so surviving groups keep their warm stores and only the keys
  the ring moves go cold.

Directory layout (one tree per group, nothing shared between processes)::

    <data_dir>/
      group-00/
        cache/results.sqlite     <- group 0's disk tier
        wal/wal-*.log            <- group 0's job journal
      group-01/
        ...

The per-group isolation is what makes the crash story simple: a worker owns
its files exclusively, so a restart replays *its* WAL with no cross-process
coordination, and killing one group never corrupts another.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable

#: How long to wait for a spawned worker's port handshake.
SPAWN_TIMEOUT_SECONDS = 60.0

#: Name of one group's directory inside the pool data dir.
GROUP_DIR_PATTERN = "group-{group:02d}"


def group_dir(data_dir: str | Path, group: int) -> Path:
    """The directory owned by shard group ``group``."""
    return Path(data_dir) / GROUP_DIR_PATTERN.format(group=group)


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to build its service (picklable).

    ``data_dir`` is the *group's* directory; the worker derives
    ``cache/`` and ``wal/`` under it.  All limits mirror the single-process
    ``repro serve`` flags so an N-group pool behaves like N independent
    ``repro serve`` instances on disjoint key ranges.
    """

    group: int
    data_dir: str
    host: str = "127.0.0.1"
    shards: int = 1
    job_workers: int = 1
    memory_capacity: int = 4096
    cache_cap: int | None = None
    cache_ttl: float | None = None
    max_queue_depth: int | None = None
    max_inflight_solves: int | None = None
    tracing: bool | None = None
    quiet: bool = True

    @property
    def cache_dir(self) -> str:
        return str(Path(self.data_dir) / "cache")

    @property
    def wal_dir(self) -> str:
        return str(Path(self.data_dir) / "wal")


def build_worker_service(spec: WorkerSpec) -> Any:
    """Build one group's :class:`~repro.service.server.AllocationService`.

    Shared by the worker process entry point and the in-process tests; the
    service recovers its WAL at construction, so calling this on a crashed
    group's directory re-enqueues every acknowledged-but-unfinished job.
    """
    from .server import AllocationService
    from .store import ResultStore, ShardedResultStore, StoreLimits

    limits = StoreLimits(
        memory_entries=spec.memory_capacity,
        disk_bytes=spec.cache_cap,
        ttl_seconds=spec.cache_ttl,
    )
    if spec.shards <= 1:
        store: Any = ResultStore(cache_dir=spec.cache_dir, limits=limits)
    else:
        store = ShardedResultStore(
            cache_dir=spec.cache_dir, num_shards=spec.shards, limits=limits
        )
    return AllocationService(
        store=store,
        job_workers=spec.job_workers,
        tracing=spec.tracing,
        wal=spec.wal_dir,
        max_queue_depth=spec.max_queue_depth,
        max_inflight_solves=spec.max_inflight_solves,
    )


def worker_main(spec: WorkerSpec, conn: Any) -> None:
    """Entry point of one shard-group worker process.

    Builds the group's service (replaying its WAL), binds an ephemeral
    port, reports ``("ready", port)`` through ``conn``, then serves until
    SIGTERM/SIGINT.  The drain path is the graceful one: stop accepting,
    finish queued jobs, final-fsync and close the WAL, exit 0.
    """
    from .server import AllocationHTTPServer, install_shutdown_signals

    try:
        service = build_worker_service(spec)
        server = AllocationHTTPServer((spec.host, 0), service, quiet=spec.quiet)
    except Exception as error:  # pragma: no cover - spawn failure reporting
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        finally:
            conn.close()
        raise
    install_shutdown_signals(server)
    conn.send(("ready", server.server_address[1]))
    conn.close()
    try:
        server.serve_forever()
    finally:
        server.server_close()
        service.close()


@dataclass
class WorkerHandle:
    """Supervisor-side state of one group's worker process."""

    group: int
    spec: WorkerSpec
    process: Any = None
    port: int | None = None
    restarts: int = 0
    started_unix: float = 0.0
    #: False from the moment the process is known dead (killed, crashed or
    #: noticed by the monitor) until the replacement's handshake lands --
    #: the router's 503 signal.
    healthy: bool = False
    #: True while the monitor owns this group's restart (prevents a second
    #: heartbeat from double-spawning); cleared when the spawn resolves.
    restart_pending: bool = False

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    @property
    def url(self) -> str | None:
        if not self.healthy or self.port is None:
            return None
        return f"http://{self.spec.host}:{self.port}"


class WorkerPool:
    """Spawn, supervise, drain and restart the shard-group workers.

    Parameters
    ----------
    num_groups:
        Initial shard-group count (one worker process each).
    data_dir:
        Root of the per-group directory tree (created if missing).
    spec:
        Template :class:`WorkerSpec`; each group gets a copy with its own
        ``group``/``data_dir``.
    auto_restart:
        Restart a worker that exits without being asked to (default).  The
        chaos harness relies on this: ``kill -9`` a worker and the pool
        brings it back on the same directory, WAL replay included.
    heartbeat_seconds:
        Monitor poll interval -- the detection latency for a dead worker.
    on_event:
        Optional observer ``(event, group)`` for lifecycle transitions
        (``"start"``, ``"exit"``, ``"restart"``); used by tests and the
        CLI's log line.  Observer errors are swallowed.
    """

    def __init__(
        self,
        num_groups: int,
        data_dir: str | Path,
        spec: WorkerSpec | None = None,
        auto_restart: bool = True,
        heartbeat_seconds: float = 0.2,
        on_event: "Callable[[str, int], None] | None" = None,
    ):
        if num_groups < 1:
            raise ValueError("num_groups must be >= 1")
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self._template = spec if spec is not None else WorkerSpec(group=0, data_dir="")
        self.auto_restart = auto_restart
        self.heartbeat_seconds = heartbeat_seconds
        self._on_event = on_event
        self._context = multiprocessing.get_context("spawn")
        self._lock = threading.Lock()
        self._handles: dict[int, WorkerHandle] = {}
        self._closing = False
        self._monitor: threading.Thread | None = None
        for group in range(num_groups):
            self._handles[group] = WorkerHandle(group=group, spec=self._spec_for(group))

    def _spec_for(self, group: int) -> WorkerSpec:
        return replace(
            self._template, group=group, data_dir=str(group_dir(self.data_dir, group))
        )

    def _emit(self, event: str, group: int) -> None:
        if self._on_event is None:
            return
        try:
            self._on_event(event, group)
        except Exception:  # pragma: no cover - observers must not kill the pool
            pass

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "WorkerPool":
        """Spawn every worker and block until all handshakes land."""
        with self._lock:
            handles = list(self._handles.values())
        for handle in handles:
            self._spawn(handle)
        if self._monitor is None:
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="repro-pool-monitor", daemon=True
            )
            self._monitor.start()
        return self

    def _spawn(self, handle: WorkerHandle) -> None:
        """Start (or replace) one worker process; blocks for the handshake."""
        parent_conn, child_conn = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=worker_main,
            args=(handle.spec, child_conn),
            name=f"repro-worker-{handle.group:02d}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(SPAWN_TIMEOUT_SECONDS):
            process.kill()
            raise RuntimeError(
                f"worker {handle.group} did not report a port within "
                f"{SPAWN_TIMEOUT_SECONDS:.0f} s"
            )
        kind, value = parent_conn.recv()
        parent_conn.close()
        if kind != "ready":
            process.join(timeout=5.0)
            raise RuntimeError(f"worker {handle.group} failed to start: {value}")
        with self._lock:
            handle.process = process
            handle.port = int(value)
            handle.started_unix = time.time()
            handle.healthy = True
        self._emit("start", handle.group)

    def _monitor_loop(self) -> None:
        """Heartbeat: notice dead workers, restart them on their own data."""
        while True:
            time.sleep(self.heartbeat_seconds)
            with self._lock:
                if self._closing:
                    return
                dead = []
                for handle in self._handles.values():
                    if (
                        handle.process is not None
                        and not handle.process.is_alive()
                        and not handle.restart_pending
                    ):
                        handle.healthy = False
                        handle.restart_pending = True
                        dead.append(handle)
            for handle in dead:
                self._emit("exit", handle.group)
                if not self.auto_restart:
                    continue  # restart_pending stays set: handled, stays down
                with self._lock:
                    if self._closing:
                        return
                    handle.restarts += 1
                try:
                    # Same spec, same directory: the replacement's service
                    # replays the group WAL before it reports ready.
                    self._spawn(handle)
                except RuntimeError:
                    with self._lock:
                        handle.restart_pending = False  # next heartbeat retries
                    continue
                with self._lock:
                    handle.restart_pending = False
                self._emit("restart", handle.group)

    def add_group(self) -> int:
        """Start a worker for group N (online resize); returns its index.

        The new worker is healthy when this returns -- the caller (the
        router) swaps its hash ring to ``N+1`` groups only afterwards, so
        no request is ever routed at a worker that is not serving yet.
        """
        with self._lock:
            if self._closing:
                raise RuntimeError("worker pool is closed")
            group = max(self._handles) + 1
            handle = WorkerHandle(group=group, spec=self._spec_for(group))
            self._handles[group] = handle
        self._spawn(handle)
        return group

    def kill(self, group: int) -> int:
        """SIGKILL one worker (the chaos hook); returns the dead pid.

        The monitor notices within a heartbeat and -- with ``auto_restart``
        -- brings the group back on its own directory, WAL replay first.
        """
        with self._lock:
            handle = self._handles[group]
            process = handle.process
            # Marked unhealthy immediately: the router must start answering
            # 503 for this group's keys now, not a heartbeat later.
            handle.healthy = False
        if process is None or not process.is_alive():
            raise RuntimeError(f"worker {group} is not running")
        pid = process.pid
        os.kill(pid, signal.SIGKILL)
        process.join(timeout=10.0)
        return pid

    def close(self, timeout_seconds: float = 30.0) -> None:
        """Graceful drain: SIGTERM all workers, join, escalate if needed."""
        with self._lock:
            if self._closing:
                return
            self._closing = True
            handles = list(self._handles.values())
        for handle in handles:
            handle.healthy = False
            process = handle.process
            if process is not None and process.is_alive():
                process.terminate()  # SIGTERM -> worker's graceful drain
        deadline = time.monotonic() + timeout_seconds
        for handle in handles:
            process = handle.process
            if process is None:
                continue
            process.join(timeout=max(0.1, deadline - time.monotonic()))
            if process.is_alive():  # pragma: no cover - drain timeout
                process.kill()
                process.join(timeout=5.0)
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Introspection (the router's view)
    # ------------------------------------------------------------------ #
    @property
    def num_groups(self) -> int:
        with self._lock:
            return len(self._handles)

    def groups(self) -> list[int]:
        with self._lock:
            return sorted(self._handles)

    def url_of(self, group: int) -> str | None:
        """The group's endpoint, or ``None`` while it is down/restarting."""
        with self._lock:
            handle = self._handles.get(group)
            return None if handle is None else handle.url

    def pid_of(self, group: int) -> int | None:
        with self._lock:
            handle = self._handles.get(group)
            return None if handle is None else handle.pid

    def worker_status(self) -> list[dict[str, Any]]:
        """One status row per group (the router's /stats `pool` section)."""
        with self._lock:
            return [
                {
                    "group": handle.group,
                    "pid": handle.pid,
                    "port": handle.port,
                    "healthy": handle.healthy,
                    "restarts": handle.restarts,
                    "started_unix": handle.started_unix,
                }
                for handle in sorted(self._handles.values(), key=lambda h: h.group)
            ]
