"""Consistent hashing of request fingerprints onto shard-group workers.

The multi-process serving layer (:mod:`repro.service.pool` /
:mod:`repro.service.router`) partitions the keyspace by *ownership*: every
request fingerprint belongs to exactly one shard group, and that group's
worker process holds the key's cache entry, its WAL records and its job
state.  The placement function therefore decides two production properties:

* **balance** -- groups must receive near-equal key shares, or one worker
  becomes the throughput ceiling of the whole pool (the multi-FPGA
  load-balancing observation of Kindratenko et al.: delivered throughput is
  governed by the worst-loaded worker, not the sum);
* **stability under resize** -- growing ``N -> N+1`` groups must remap only
  ``~1/(N+1)`` of the keys, all of them *to the new group*, so an online
  resize never moves a key between two surviving groups and never costs a
  surviving worker its warm store.

A classic consistent hash ring delivers both: each group projects
``replicas`` virtual points onto a 64-bit ring (SHA-256 of
``"group-<g>/vnode-<r>"``), and a fingerprint is owned by the first point
at or clockwise-after its own hash.  Because a group's points depend only
on its own index, adding group ``N`` adds points without moving any
existing one -- keys change owner only where a new point lands between a
key and its old successor, i.e. only onto the new group.

:func:`ring_of` is the pure routing function: ``(fingerprint, num_groups)
-> group`` with no hidden state, so every router, worker, test and offline
tool computes identical ownership.  Ring structures are memoized per
``(num_groups, replicas)`` -- building one is ``O(groups * replicas)`` and
routing is one binary search.

For placement *analysis* (and for batch partitioning where a strict load
cap matters more than per-key purity), :meth:`HashRing.place_bounded`
implements consistent hashing with bounded loads (Mirrokni et al.): keys
walk clockwise past groups already at ``ceil(load_factor * keys/groups)``
keys, guaranteeing a hard per-group ceiling at the cost of the placement
depending on the key set.
"""

from __future__ import annotations

import bisect
import hashlib
import math
import threading
from typing import Dict, Iterable, List, Sequence, Tuple

#: Virtual points each group projects onto the ring.  128 keeps the maximal
#: arc-share imbalance of any group within ~25% of fair share for realistic
#: group counts (asserted by the Hypothesis suite) while a ring for 16
#: groups still builds in well under a millisecond.
DEFAULT_REPLICAS = 128

#: Ring positions are 64-bit: the top 8 bytes of a SHA-256 digest.
_RING_BITS = 64
_RING_MASK = (1 << _RING_BITS) - 1


def _hash64(token: str) -> int:
    """Stable 64-bit ring position of a token (top bytes of SHA-256)."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def fingerprint_point(fingerprint: str) -> int:
    """Ring position of a request fingerprint.

    Fingerprints are already SHA-256 hex (uniform by construction), but they
    are re-hashed with a distinct prefix so ring geometry never correlates
    with the store-shard selector (:func:`repro.service.store.shard_of`
    uses the leading hex nibbles directly).
    """
    return _hash64("key/" + fingerprint)


class HashRing:
    """A consistent hash ring over ``num_groups`` shard groups.

    The ring is immutable; "resizing" builds a new ring via
    :meth:`with_num_groups` (cheap, memoized) so concurrent readers never
    observe a half-updated structure -- the router swaps whole rings
    atomically.
    """

    def __init__(self, num_groups: int, replicas: int = DEFAULT_REPLICAS):
        if num_groups < 1:
            raise ValueError("num_groups must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.num_groups = num_groups
        self.replicas = replicas
        points: List[Tuple[int, int]] = []
        for group in range(num_groups):
            for replica in range(replicas):
                points.append((_hash64(f"group-{group}/vnode-{replica}"), group))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [group for _, group in points]

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def group_of(self, fingerprint: str) -> int:
        """The shard group owning ``fingerprint`` (pure, stateless)."""
        return self.group_of_point(fingerprint_point(fingerprint))

    def group_of_point(self, point: int) -> int:
        """Owner of a raw ring position: first vnode at or after it."""
        index = bisect.bisect_left(self._points, point & _RING_MASK)
        if index == len(self._points):  # wrap past the top of the ring
            index = 0
        return self._owners[index]

    def partition(self, fingerprints: Iterable[str]) -> Dict[int, List[int]]:
        """Positions of ``fingerprints`` grouped by owner.

        Returns ``{group: [indices]}`` with each index list in input order
        -- the router's batch splitter, which must reassemble per-worker
        responses into request order.
        """
        owned: Dict[int, List[int]] = {}
        for index, fingerprint in enumerate(fingerprints):
            owned.setdefault(self.group_of(fingerprint), []).append(index)
        return owned

    # ------------------------------------------------------------------ #
    # Resize
    # ------------------------------------------------------------------ #
    def with_num_groups(self, num_groups: int) -> "HashRing":
        """The ring for a different group count (same replica factor)."""
        return ring(num_groups, self.replicas)

    def moved_keys(self, new_ring: "HashRing", fingerprints: Iterable[str]) -> List[str]:
        """The subset of ``fingerprints`` whose owner differs under
        ``new_ring`` -- exactly the keys an online resize turns cold."""
        return [
            fingerprint
            for fingerprint in fingerprints
            if self.group_of(fingerprint) != new_ring.group_of(fingerprint)
        ]

    # ------------------------------------------------------------------ #
    # Bounded-load placement
    # ------------------------------------------------------------------ #
    def place_bounded(
        self, fingerprints: Sequence[str], load_factor: float = 1.25
    ) -> Dict[str, int]:
        """Place a key *set* with a hard per-group load ceiling.

        Consistent hashing with bounded loads: each key starts at its ring
        successor and walks clockwise past any group already holding
        ``ceil(load_factor * len(keys) / num_groups)`` keys.  Guarantees
        ``max_load <= ceil(load_factor * fair_share)`` by construction;
        unlike :meth:`group_of` the result depends on the key set, so this
        is a placement/analysis tool, not the per-request routing function.
        """
        if load_factor <= 1.0:
            raise ValueError("load_factor must be > 1.0")
        total = len(fingerprints)
        if total == 0:
            return {}
        capacity = math.ceil(load_factor * total / self.num_groups)
        loads = [0] * self.num_groups
        placement: Dict[str, int] = {}
        for fingerprint in fingerprints:
            index = bisect.bisect_left(self._points, fingerprint_point(fingerprint))
            for probe in range(len(self._points)):
                owner = self._owners[(index + probe) % len(self._points)]
                if loads[owner] < capacity:
                    loads[owner] += 1
                    placement[fingerprint] = owner
                    break
            else:  # pragma: no cover - capacity * groups >= total always
                raise RuntimeError("bounded placement ran out of capacity")
        return placement

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def arc_shares(self) -> List[float]:
        """Fraction of the ring owned by each group (sums to 1.0).

        A uniformly hashed key lands in group ``g`` with probability
        ``arc_shares()[g]``, so this is the *exact* expected load split --
        the uniformity suite bounds it directly instead of sampling.
        """
        shares = [0.0] * self.num_groups
        points = self._points
        for index, point in enumerate(points):
            previous = points[index - 1] if index > 0 else points[-1] - (1 << _RING_BITS)
            shares[self._owners[index]] += (point - previous) / float(1 << _RING_BITS)
        return shares

    def describe(self) -> Dict[str, object]:
        shares = self.arc_shares()
        fair = 1.0 / self.num_groups
        return {
            "num_groups": self.num_groups,
            "replicas": self.replicas,
            "points": len(self._points),
            "max_share_over_fair": max(shares) / fair,
            "min_share_over_fair": min(shares) / fair,
        }


#: Memoized rings keyed by (num_groups, replicas); rings are immutable.
_ring_cache: Dict[Tuple[int, int], HashRing] = {}
_ring_cache_lock = threading.Lock()


def ring(num_groups: int, replicas: int = DEFAULT_REPLICAS) -> HashRing:
    """The (memoized) ring for ``num_groups`` shard groups."""
    key = (num_groups, replicas)
    cached = _ring_cache.get(key)
    if cached is None:
        with _ring_cache_lock:
            cached = _ring_cache.get(key)
            if cached is None:
                cached = HashRing(num_groups, replicas=replicas)
                _ring_cache[key] = cached
    return cached


def ring_of(fingerprint: str, num_groups: int, replicas: int = DEFAULT_REPLICAS) -> int:
    """Pure routing function: the shard group owning ``fingerprint``.

    ``ring_of(f, n)`` is a total function of its arguments -- no process
    state, no key-set dependence -- so every component of the serving
    topology (router, workers, tests, offline layout tools) agrees on
    ownership by construction.
    """
    return ring(num_groups, replicas).group_of(fingerprint)
