"""Async batch jobs: enqueue, return an id immediately, poll for the result.

``/solve_batch`` historically blocked until the whole batch resolved, so one
large mixed batch could hold an HTTP connection for seconds while its tail
solved.  The job queue bounds that tail latency: ``mode=async`` submissions
enqueue the request list, return a job id in microseconds, and a pool of
background worker threads drains the queue through the same deduping,
memo-grouped :func:`repro.service.batch.solve_batch` chunker the sync path
uses -- so an async batch performs *exactly* the same solves, cache writes
and counter updates as its sync twin (the differential test suite holds the
service to that).

Lifecycle of a job::

    queued --> running --> done
                      \\-> failed   (the exception text lands in ``error``)

Completed jobs are retained for polling (bounded by ``max_retained``; the
oldest finished jobs are dropped first, queued/running jobs never).  Jobs
live in memory only -- they are coordination state, not results; every
solved outcome is also written to the result store under its fingerprint,
so nothing is lost when a finished job is eventually pruned.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from .batch import BatchReport, SolveRequest

#: The four job states, in lifecycle order.
JOB_STATUSES = ("queued", "running", "done", "failed")


@dataclass
class Job:
    """One asynchronous batch submission and (eventually) its result."""

    id: str
    total: int
    status: str = "queued"
    created_unix: float = 0.0
    started_unix: float | None = None
    finished_unix: float | None = None
    error: str | None = None
    report: dict[str, Any] | None = None
    fingerprints: list[str] | None = None
    #: Outcome documents (``SolveOutcome.to_dict()``) in request order.
    outcomes: list[dict[str, Any]] | None = None
    #: The pending request list; dropped once the job has run.
    requests: list[SolveRequest] = field(default_factory=list, repr=False)
    #: Set when the job reaches a terminal state (done/failed); lets waiters
    #: block on completion instead of polling.
    finished_event: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def wait_seconds(self) -> float | None:
        """Queue wait: submission to the moment a worker picked the job up."""
        if self.started_unix is None:
            return None
        return max(0.0, self.started_unix - self.created_unix)

    @property
    def run_seconds(self) -> float | None:
        """Worker time: pickup to the terminal state (done/failed)."""
        if self.started_unix is None or self.finished_unix is None:
            return None
        return max(0.0, self.finished_unix - self.started_unix)

    def as_dict(self, include_outcomes: bool = True) -> dict[str, Any]:
        document: dict[str, Any] = {
            "job_id": self.id,
            "status": self.status,
            "total": self.total,
            "created_unix": self.created_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "wait_seconds": self.wait_seconds,
            "run_seconds": self.run_seconds,
        }
        if self.error is not None:
            document["error"] = self.error
        if self.report is not None:
            document["report"] = self.report
        if self.fingerprints is not None:
            document["fingerprints"] = self.fingerprints
        if include_outcomes and self.outcomes is not None:
            document["outcomes"] = self.outcomes
        return document


class JobQueue:
    """A bounded in-memory job queue drained by background worker threads.

    Parameters
    ----------
    runner:
        Callable performing one batch (the service's ``solve_batch``); it
        returns ``(outcomes, report)`` exactly like
        :func:`repro.service.batch.solve_batch`.
    workers:
        Worker threads draining the queue.  Threads are started lazily on
        the first submission, so idle services (and the many tests that
        construct one) never spawn them.
    max_retained:
        Completed (done/failed) jobs kept for polling; the oldest finished
        jobs are pruned first once the bound is exceeded.
    on_finished:
        Optional observer called (outside the queue lock) with each job that
        reaches a terminal state; the service hooks its wait/run latency
        histograms here.  Observer errors are swallowed -- telemetry must
        never fail a job.
    """

    def __init__(
        self,
        runner: Callable[[Sequence[SolveRequest]], tuple[list, BatchReport]],
        workers: int = 1,
        max_retained: int = 256,
        clock: Callable[[], float] = time.time,
        on_finished: "Callable[[Job], None] | None" = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_retained < 1:
            raise ValueError("max_retained must be >= 1")
        self._runner = runner
        self.workers = workers
        self.max_retained = max_retained
        self._clock = clock
        self._on_finished = on_finished
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        #: Finished job ids in completion order (the pruning queue).
        self._finished_order: list[str] = []
        self._queue: "queue.Queue[str | None]" = queue.Queue()
        self._threads: list[threading.Thread] = []
        self._next_id = 0
        self._closed = False
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.pruned = 0
        #: Accumulated queue-wait and worker-run time over finished jobs.
        self.wait_seconds_total = 0.0
        self.run_seconds_total = 0.0

    # ------------------------------------------------------------------ #
    # Submission / polling
    # ------------------------------------------------------------------ #
    def submit(self, requests: Sequence[SolveRequest]) -> dict[str, Any]:
        """Enqueue a batch; returns the job document (status ``queued``).

        The hot path is one lock acquisition and a queue put -- no
        fingerprinting, no serialisation -- so the submit latency stays in
        the tens of microseconds regardless of batch size.
        """
        request_list = list(requests)
        if not request_list:
            raise ValueError("an async batch needs at least one request")
        with self._lock:
            if self._closed:
                raise RuntimeError("job queue is closed")
            self._next_id += 1
            job = Job(
                id=f"job-{self._next_id:08d}",
                total=len(request_list),
                created_unix=self._clock(),
                requests=request_list,
            )
            self._jobs[job.id] = job
            self.submitted += 1
            self._ensure_workers_locked()
            document = job.as_dict()
            # Enqueue under the lock: a concurrent close() must not slot its
            # shutdown sentinels ahead of an already-acknowledged job (the
            # workers would exit and the job would never run).
            self._queue.put(job.id)
        return document

    def get(self, job_id: str, include_outcomes: bool = True) -> dict[str, Any] | None:
        """Current document of one job, or ``None`` for unknown ids."""
        with self._lock:
            job = self._jobs.get(job_id)
            return None if job is None else job.as_dict(include_outcomes=include_outcomes)

    def list_jobs(self) -> list[dict[str, Any]]:
        """Summaries (no outcome payloads) of every retained job, oldest first."""
        with self._lock:
            jobs = sorted(self._jobs.values(), key=lambda job: job.id)
            return [job.as_dict(include_outcomes=False) for job in jobs]

    def wait(self, job_id: str, timeout_seconds: float = 60.0) -> dict[str, Any]:
        """Block until a job finishes (in-process convenience for tests/CLI).

        Waits on the job's completion event -- no polling latency, so a warm
        async batch costs barely more than its synchronous twin.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"unknown job {job_id!r}")
            event = job.finished_event
        if not event.wait(timeout=timeout_seconds):
            document = self.get(job_id)
            status = document["status"] if document else "pruned"
            raise TimeoutError(f"job {job_id} still {status} after {timeout_seconds} s")
        document = self.get(job_id)
        if document is None:  # pruned between completion and this read
            raise KeyError(f"job {job_id} finished but was pruned before the read")
        return document

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        with self._lock:
            by_status = {status: 0 for status in JOB_STATUSES}
            for job in self._jobs.values():
                by_status[job.status] += 1
            return {
                "workers": self.workers,
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "pruned": self.pruned,
                "retained": len(self._jobs),
                "queue_depth": by_status["queued"],
                "wait_seconds_total": self.wait_seconds_total,
                "run_seconds_total": self.run_seconds_total,
                **by_status,
            }

    # ------------------------------------------------------------------ #
    # Worker pool
    # ------------------------------------------------------------------ #
    def _ensure_workers_locked(self) -> None:
        while len(self._threads) < self.workers:
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-job-worker-{len(self._threads)}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _worker_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:  # shutdown sentinel
                self._queue.task_done()
                return
            self._run_job(job_id)
            self._queue.task_done()

    def _run_job(self, job_id: str) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:  # pruned before it ran (close() drained it)
                return
            job.status = "running"
            job.started_unix = self._clock()
            requests = job.requests
        try:
            outcomes, report = self._runner(requests)
            # Duplicate requests share one outcome object; serialise each
            # distinct outcome once (a 1000-request/64-unique batch performs
            # 64 ``to_dict`` calls, not 1000).
            documents_by_identity: dict[int, dict[str, Any]] = {}
            documents = []
            for outcome in outcomes:
                document = documents_by_identity.get(id(outcome))
                if document is None:
                    document = outcome.to_dict()
                    documents_by_identity[id(outcome)] = document
                documents.append(document)
            with self._lock:
                job.report = report.as_dict()
                job.fingerprints = list(report.fingerprints)
                job.outcomes = documents
                job.status = "done"
                job.finished_unix = self._clock()
                job.requests = []
                self.completed += 1
                self.wait_seconds_total += job.wait_seconds or 0.0
                self.run_seconds_total += job.run_seconds or 0.0
                self._finished_order.append(job.id)
                job.finished_event.set()
                self._prune_locked()
        except Exception as error:  # a failed batch must not kill the worker
            with self._lock:
                job.status = "failed"
                job.error = f"{type(error).__name__}: {error}"
                job.finished_unix = self._clock()
                job.requests = []
                self.failed += 1
                self.wait_seconds_total += job.wait_seconds or 0.0
                self.run_seconds_total += job.run_seconds or 0.0
                self._finished_order.append(job.id)
                job.finished_event.set()
                self._prune_locked()
        self._notify_finished(job)

    def _notify_finished(self, job: Job) -> None:
        if self._on_finished is None:
            return
        try:
            self._on_finished(job)
        except Exception:  # pragma: no cover - observers must not kill workers
            pass

    def _prune_locked(self) -> None:
        while len(self._jobs) > self.max_retained and self._finished_order:
            oldest = self._finished_order.pop(0)
            if self._jobs.pop(oldest, None) is not None:
                self.pruned += 1

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self, timeout_seconds: float = 30.0) -> None:
        """Stop accepting work and join the workers (pending jobs finish)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            threads = list(self._threads)
        for _ in threads:
            self._queue.put(None)
        for thread in threads:
            thread.join(timeout=timeout_seconds)

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
