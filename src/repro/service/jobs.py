"""Async batch jobs: enqueue, return an id immediately, poll for the result.

``/solve_batch`` historically blocked until the whole batch resolved, so one
large mixed batch could hold an HTTP connection for seconds while its tail
solved.  The job queue bounds that tail latency: ``mode=async`` submissions
enqueue the request list, return a job id in microseconds, and a pool of
background worker threads drains the queue through the same deduping,
memo-grouped :func:`repro.service.batch.solve_batch` chunker the sync path
uses -- so an async batch performs *exactly* the same solves, cache writes
and counter updates as its sync twin (the differential test suite holds the
service to that).

Lifecycle of a job::

    queued --> running --> done
                      \\-> failed   (the exception text lands in ``error``)

Completed jobs are retained for polling (bounded by ``max_retained``; the
oldest finished jobs are dropped first, queued/running jobs never).  Jobs
live in memory only -- they are coordination state, not results; every
solved outcome is also written to the result store under its fingerprint,
so nothing is lost when a finished job is eventually pruned.

Durability & backpressure (PR 8)
--------------------------------
With a :class:`~repro.service.wal.JobWal` attached, every submission is
journaled -- full request documents, fsynced -- *before* the ack returns,
and start/complete markers follow as the job moves; :meth:`JobQueue.recover`
re-enqueues every journaled-but-unfinished job after a restart (with its
original job id, so clients polling across a crash find their job again).
``max_queue_depth`` bounds admission: a submit past the bound raises
:class:`QueueFullError` instead of accepting work the queue cannot finish
-- the HTTP layer turns that into ``429`` + ``Retry-After``.  Recovery
bypasses the bound: a replayed job was already acknowledged, and an ack is
a promise.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from .batch import BatchReport, SolveRequest, request_from_dict, requests_to_documents
from .faults import inject
from .wal import JobWal

#: The four job states, in lifecycle order.
JOB_STATUSES = ("queued", "running", "done", "failed")


class QueueFullError(RuntimeError):
    """A submission was refused because the queue is at ``max_queue_depth``.

    Carries the observed depth and bound so the HTTP layer can derive a
    ``Retry-After`` from how much work is actually ahead of the caller.
    """

    def __init__(self, depth: int, max_depth: int):
        super().__init__(
            f"job queue is full ({depth} queued >= bound {max_depth}); retry later"
        )
        self.depth = depth
        self.max_depth = max_depth


@dataclass
class Job:
    """One asynchronous batch submission and (eventually) its result."""

    id: str
    total: int
    status: str = "queued"
    created_unix: float = 0.0
    started_unix: float | None = None
    finished_unix: float | None = None
    error: str | None = None
    report: dict[str, Any] | None = None
    fingerprints: list[str] | None = None
    #: Outcome documents (``SolveOutcome.to_dict()``) in request order.
    outcomes: list[dict[str, Any]] | None = None
    #: The pending request list; dropped once the job has run.
    requests: list[SolveRequest] = field(default_factory=list, repr=False)
    #: Numeric id sequence (the WAL segment key); parallel to ``id``.
    sequence: int = 0
    #: True when the job was re-enqueued from the WAL after a restart.
    recovered: bool = False
    #: Set when the job reaches a terminal state (done/failed); lets waiters
    #: block on completion instead of polling.
    finished_event: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def wait_seconds(self) -> float | None:
        """Queue wait: submission to the moment a worker picked the job up."""
        if self.started_unix is None:
            return None
        return max(0.0, self.started_unix - self.created_unix)

    @property
    def run_seconds(self) -> float | None:
        """Worker time: pickup to the terminal state (done/failed)."""
        if self.started_unix is None or self.finished_unix is None:
            return None
        return max(0.0, self.finished_unix - self.started_unix)

    def as_dict(self, include_outcomes: bool = True) -> dict[str, Any]:
        document: dict[str, Any] = {
            "job_id": self.id,
            "status": self.status,
            "total": self.total,
            "created_unix": self.created_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "wait_seconds": self.wait_seconds,
            "run_seconds": self.run_seconds,
        }
        if self.recovered:
            document["recovered"] = True
        if self.error is not None:
            document["error"] = self.error
        if self.report is not None:
            document["report"] = self.report
        if self.fingerprints is not None:
            document["fingerprints"] = self.fingerprints
        if include_outcomes and self.outcomes is not None:
            document["outcomes"] = self.outcomes
        return document


class JobQueue:
    """A bounded in-memory job queue drained by background worker threads.

    Parameters
    ----------
    runner:
        Callable performing one batch (the service's ``solve_batch``); it
        returns ``(outcomes, report)`` exactly like
        :func:`repro.service.batch.solve_batch`.
    workers:
        Worker threads draining the queue.  Threads are started lazily on
        the first submission, so idle services (and the many tests that
        construct one) never spawn them.
    max_retained:
        Completed (done/failed) jobs kept for polling; the oldest finished
        jobs are pruned first once the bound is exceeded.
    on_finished:
        Optional observer called (outside the queue lock) with each job that
        reaches a terminal state; the service hooks its wait/run latency
        histograms here.  Observer errors are swallowed -- telemetry must
        never fail a job.
    wal:
        Optional :class:`~repro.service.wal.JobWal`.  When present, a
        submission is journaled (request documents, fsynced) before the ack
        and :meth:`recover` can re-enqueue unfinished jobs after a restart.
    max_queue_depth:
        Admission bound on *queued* (not running) jobs; a submit at the
        bound raises :class:`QueueFullError`.  ``None`` keeps the historic
        unbounded behaviour.
    start_workers:
        Test/chaos hook: ``False`` journals and registers submissions
        without ever starting worker threads -- the in-process equivalent
        of crashing right after the ack, used by the crash-recovery
        differential harness.
    """

    def __init__(
        self,
        runner: Callable[[Sequence[SolveRequest]], tuple[list, BatchReport]],
        workers: int = 1,
        max_retained: int = 256,
        clock: Callable[[], float] = time.time,
        on_finished: "Callable[[Job], None] | None" = None,
        wal: JobWal | None = None,
        max_queue_depth: int | None = None,
        start_workers: bool = True,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_retained < 1:
            raise ValueError("max_retained must be >= 1")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1 (or None for unbounded)")
        self._runner = runner
        self.workers = workers
        self.max_retained = max_retained
        self.wal = wal
        self.max_queue_depth = max_queue_depth
        self._start_workers = start_workers
        self._clock = clock
        self._on_finished = on_finished
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        #: Finished job ids in completion order (the pruning queue).  A
        #: deque: retention pressure drains from the head, and a list's
        #: ``pop(0)`` is O(n) per drop -- O(n^2) across a long backlog.
        self._finished_order: deque[str] = deque()
        self._queue: "queue.Queue[str | None]" = queue.Queue()
        self._threads: list[threading.Thread] = []
        self._next_id = 0
        #: Submissions past admission but not yet registered (their WAL
        #: append is in flight); counted against ``max_queue_depth`` so a
        #: burst cannot overshoot the bound through the journaling window.
        self._pending_submits = 0
        self._closed = False
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.pruned = 0
        self.recovered = 0
        self.rejected = 0
        #: Accumulated queue-wait and worker-run time over finished jobs.
        self.wait_seconds_total = 0.0
        self.run_seconds_total = 0.0

    # ------------------------------------------------------------------ #
    # Submission / polling
    # ------------------------------------------------------------------ #
    def queue_depth(self) -> int:
        """Jobs currently waiting for a worker (queued, not running)."""
        with self._lock:
            return self._queued_depth_locked()

    def _queued_depth_locked(self) -> int:
        return (
            sum(1 for job in self._jobs.values() if job.status == "queued")
            + self._pending_submits
        )

    def submit(
        self,
        requests: Sequence[SolveRequest],
        documents: "Sequence[dict[str, Any]] | None" = None,
    ) -> dict[str, Any]:
        """Enqueue a batch; returns the job document (status ``queued``).

        Without a WAL the hot path is one lock acquisition and a queue put
        -- no fingerprinting, no serialisation -- so the submit latency
        stays in the tens of microseconds regardless of batch size.  With a
        WAL the submission is journaled and fsynced before this returns:
        the ack means the job survives ``kill -9``.  ``documents`` lets the
        HTTP layer hand over the already-parsed wire documents so the
        journal does not re-serialise every problem.
        """
        request_list = list(requests)
        if not request_list:
            raise ValueError("an async batch needs at least one request")
        with self._lock:
            if self._closed:
                raise RuntimeError("job queue is closed")
            if self.max_queue_depth is not None:
                depth = self._queued_depth_locked()
                if depth >= self.max_queue_depth:
                    self.rejected += 1
                    raise QueueFullError(depth=depth, max_depth=self.max_queue_depth)
            self._next_id += 1
            sequence = self._next_id
            self._pending_submits += 1
        job = Job(
            id=f"job-{sequence:08d}",
            total=len(request_list),
            created_unix=self._clock(),
            requests=request_list,
            sequence=sequence,
        )
        try:
            if self.wal is not None:
                inject("jobs.submit.journal")
                if documents is None:
                    documents = requests_to_documents(request_list)
                self.wal.journal_submit(
                    job.id, sequence, job.created_unix, list(documents)
                )
                inject("jobs.submit.ack")
        except BaseException:
            with self._lock:
                self._pending_submits -= 1
            raise
        with self._lock:
            self._pending_submits -= 1
            self._jobs[job.id] = job
            self.submitted += 1
            self._ensure_workers_locked()
            document = job.as_dict()
            # Enqueue under the lock: a concurrent close() must not slot its
            # shutdown sentinels ahead of an already-acknowledged job (the
            # workers would exit and the job would never run).
            self._queue.put(job.id)
        return document

    # ------------------------------------------------------------------ #
    # Crash recovery
    # ------------------------------------------------------------------ #
    def recover(self) -> int:
        """Re-enqueue every journaled-but-unfinished job from the WAL.

        Jobs come back with their original ids (clients polling across the
        restart find them again) and run through the same runner as fresh
        submissions -- the deduping batch path answers already-solved
        fingerprints from the result store, so replay is idempotent.  The
        id counter resumes past every journaled sequence, and recovery
        ignores ``max_queue_depth``: these jobs were already acknowledged.
        Returns the number of jobs re-enqueued.
        """
        if self.wal is None:
            return 0
        records, max_sequence = self.wal.replay()
        # Reserve the journaled id range *before* re-enqueuing anything: a
        # submission racing this replay must never be issued a sequence that
        # collides with a job about to be recovered.
        with self._lock:
            self._next_id = max(self._next_id, max_sequence)
        recovered = 0
        for record in records:
            try:
                requests = [
                    request_from_dict(document) for document in record["requests"]
                ]
            except Exception:
                # A journaled document that no longer parses (schema drift
                # across versions) must not wedge recovery of the rest.
                continue
            sequence = int(record.get("seq", 0))
            job = Job(
                id=str(record["job_id"]),
                total=len(requests),
                created_unix=float(record.get("created_unix", self._clock())),
                requests=requests,
                sequence=sequence,
                recovered=True,
            )
            with self._lock:
                if self._closed:
                    break
                if job.id in self._jobs:  # already recovered (double call)
                    continue
                self._jobs[job.id] = job
                self.submitted += 1
                self.recovered += 1
                self._ensure_workers_locked()
                self._queue.put(job.id)
            recovered += 1
        return recovered

    def get(self, job_id: str, include_outcomes: bool = True) -> dict[str, Any] | None:
        """Current document of one job, or ``None`` for unknown ids."""
        with self._lock:
            job = self._jobs.get(job_id)
            return None if job is None else job.as_dict(include_outcomes=include_outcomes)

    def list_jobs(self) -> list[dict[str, Any]]:
        """Summaries (no outcome payloads) of every retained job, oldest first."""
        with self._lock:
            jobs = sorted(self._jobs.values(), key=lambda job: job.id)
            return [job.as_dict(include_outcomes=False) for job in jobs]

    def wait(self, job_id: str, timeout_seconds: float = 60.0) -> dict[str, Any]:
        """Block until a job finishes (in-process convenience for tests/CLI).

        Waits on the job's completion event -- no polling latency, so a warm
        async batch costs barely more than its synchronous twin.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"unknown job {job_id!r}")
            event = job.finished_event
        if not event.wait(timeout=timeout_seconds):
            document = self.get(job_id)
            status = document["status"] if document else "pruned"
            raise TimeoutError(f"job {job_id} still {status} after {timeout_seconds} s")
        document = self.get(job_id)
        if document is None:  # pruned between completion and this read
            raise KeyError(f"job {job_id} finished but was pruned before the read")
        return document

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        with self._lock:
            by_status = {status: 0 for status in JOB_STATUSES}
            for job in self._jobs.values():
                by_status[job.status] += 1
            # by_status first: its "failed" key (retained failed jobs) must
            # not shadow the cumulative failure counter below.
            return {
                **by_status,
                "workers": self.workers,
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "pruned": self.pruned,
                "recovered": self.recovered,
                "rejected": self.rejected,
                "max_queue_depth": self.max_queue_depth,
                "retained": len(self._jobs),
                "queue_depth": by_status["queued"] + self._pending_submits,
                "wait_seconds_total": self.wait_seconds_total,
                "run_seconds_total": self.run_seconds_total,
            }

    # ------------------------------------------------------------------ #
    # Worker pool
    # ------------------------------------------------------------------ #
    def _ensure_workers_locked(self) -> None:
        if not self._start_workers:
            return
        while len(self._threads) < self.workers:
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-job-worker-{len(self._threads)}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _worker_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:  # shutdown sentinel
                self._queue.task_done()
                return
            self._run_job(job_id)
            self._queue.task_done()

    def _run_job(self, job_id: str) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:  # pruned before it ran (close() drained it)
                return
            job.status = "running"
            job.started_unix = self._clock()
            requests = job.requests
        # The start marker is buffered, not fsynced: losing it just means a
        # restart replays the batch, and replay is idempotent (the result
        # store answers every already-solved fingerprint).
        inject("jobs.run.start")
        if self.wal is not None:
            try:
                self.wal.journal_start(job.id, job.sequence)
            except OSError:
                pass  # journaling is best-effort past the ack
        try:
            outcomes, report = self._runner(requests)
            # Duplicate requests share one outcome object; serialise each
            # distinct outcome once (a 1000-request/64-unique batch performs
            # 64 ``to_dict`` calls, not 1000).
            documents_by_identity: dict[int, dict[str, Any]] = {}
            documents = []
            for outcome in outcomes:
                document = documents_by_identity.get(id(outcome))
                if document is None:
                    document = outcome.to_dict()
                    documents_by_identity[id(outcome)] = document
                documents.append(document)
            with self._lock:
                job.report = report.as_dict()
                job.fingerprints = list(report.fingerprints)
                job.outcomes = documents
                job.status = "done"
                job.finished_unix = self._clock()
                job.requests = []
                self.completed += 1
                self.wait_seconds_total += job.wait_seconds or 0.0
                self.run_seconds_total += job.run_seconds or 0.0
                self._finished_order.append(job.id)
                job.finished_event.set()
                self._prune_locked()
        except Exception as error:  # a failed batch must not kill the worker
            with self._lock:
                job.status = "failed"
                job.error = f"{type(error).__name__}: {error}"
                job.finished_unix = self._clock()
                job.requests = []
                self.failed += 1
                self.wait_seconds_total += job.wait_seconds or 0.0
                self.run_seconds_total += job.run_seconds or 0.0
                self._finished_order.append(job.id)
                job.finished_event.set()
                self._prune_locked()
        self._journal_complete(job)
        self._notify_finished(job)

    def _journal_complete(self, job: Job) -> None:
        """Journal the terminal state (buffered; may trigger compaction).

        A crash between completion and this marker re-runs the job on
        recovery -- wasteful but correct, since every outcome was already
        written to the result store and the replay dedupes against it.
        """
        inject("jobs.run.complete")
        if self.wal is None:
            return
        try:
            self.wal.journal_complete(job.id, job.sequence, job.status)
        except OSError:
            pass  # journaling is best-effort past the ack

    def _notify_finished(self, job: Job) -> None:
        if self._on_finished is None:
            return
        try:
            self._on_finished(job)
        except Exception:  # pragma: no cover - observers must not kill workers
            pass

    def _prune_locked(self) -> None:
        while len(self._jobs) > self.max_retained and self._finished_order:
            oldest = self._finished_order.popleft()
            if self._jobs.pop(oldest, None) is not None:
                self.pruned += 1

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self, timeout_seconds: float = 30.0) -> None:
        """Stop accepting work and join the workers (pending jobs finish)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            threads = list(self._threads)
        for _ in threads:
            self._queue.put(None)
        for thread in threads:
            thread.join(timeout=timeout_seconds)

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
