"""Result store tiers: bounded LRU memory + SQLite disk, optionally sharded.

Payloads are opaque JSON strings (serialised :class:`~repro.core.solution.
SolveOutcome` documents) keyed by the canonical request fingerprint of
:mod:`repro.service.canonical`.  The memory tier answers repeat queries
within a process in microseconds; the SQLite tier survives restarts, so a
rebooted server keeps answering warm queries without re-solving.  Hits,
misses, evictions and writes are counted per tier and surfaced through the
reporting layer (:func:`repro.reporting.service.cache_stats_table`) and the
server's ``/stats`` endpoint.

Two store shapes share one interface (``get``/``put``/``stats``/``sizes``/
``close``):

* :class:`ResultStore` -- one LRU front + one SQLite file behind one lock
  (the PR 2 design, still the right choice for a single-threaded client);
* :class:`ShardedResultStore` -- ``N`` independent :class:`ResultStore`
  shards selected by fingerprint prefix, each with its own lock, LRU front
  and SQLite file, so concurrent writers on distinct fingerprints stop
  serialising behind one global lock.

Both tiers accept :class:`StoreLimits`: entry caps, byte caps and a TTL.
Admission is never refused -- an acknowledged ``put`` is always readable
immediately afterwards (the just-written entry is exempt from the eviction
pass that its own insert triggers); instead the *oldest* entries are evicted
once a cap is exceeded, and expired entries are dropped lazily on access.
Every eviction is counted (``evictions``, ``disk_evictions``,
``ttl_evictions``) so capacity pressure is visible in ``/stats`` long before
it becomes an incident.

All operations are thread-safe: the HTTP server handles requests on a
thread pool and shares one store with the async job workers.

Durability hardening (PR 8): every SQLite connection runs with
``journal_mode=WAL``, ``synchronous=NORMAL`` and a 5 s ``busy_timeout``
(concurrent shard writers stop failing fast on lock contention), and a
corrupt database file -- at open *or* mid-operation -- is **quarantined**:
renamed to ``results.sqlite.corrupt-<n>`` next to a fresh empty file, the
``quarantines`` counter incremented, and the store continues cold.  Losing
a cache shard costs recomputation, never availability.
"""

from __future__ import annotations

import sqlite3
import threading
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from .faults import inject

#: File name of the SQLite tier inside a cache directory.
SQLITE_FILENAME = "results.sqlite"


@dataclass(frozen=True)
class StoreLimits:
    """Admission-control knobs of one store (``None`` means unbounded).

    ``memory_entries`` keeps the historical default of the PR 2 store; every
    other cap defaults to unbounded so existing callers see no behaviour
    change until they opt in.
    """

    memory_entries: int = 4096
    memory_bytes: int | None = None
    disk_entries: int | None = None
    disk_bytes: int | None = None
    ttl_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.memory_entries < 1:
            raise ValueError("memory_entries must be >= 1")
        for name in ("memory_bytes", "disk_entries", "disk_bytes"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 (or None for unbounded)")
        if self.ttl_seconds is not None and self.ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None for no expiry)")

    def per_shard(self, num_shards: int) -> "StoreLimits":
        """Split the caps evenly across ``num_shards`` independent shards.

        Entry/byte caps are divided (rounding up, and never below one entry
        per shard) so the fleet-wide total stays at most ``caps + shards``;
        the TTL applies to every shard unchanged.
        """

        def split(value: int | None) -> int | None:
            return None if value is None else max(1, -(-value // num_shards))

        return StoreLimits(
            memory_entries=max(1, -(-self.memory_entries // num_shards)),
            memory_bytes=split(self.memory_bytes),
            disk_entries=split(self.disk_entries),
            disk_bytes=split(self.disk_bytes),
            ttl_seconds=self.ttl_seconds,
        )


@dataclass
class CacheStats:
    """Counters of one result store (cumulative since creation)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    disk_evictions: int = 0
    ttl_evictions: int = 0
    rebalances: int = 0
    quarantines: int = 0

    @property
    def lookups(self) -> int:
        return self.memory_hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return (self.memory_hits + self.disk_hits) / lookups if lookups else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "disk_evictions": self.disk_evictions,
            "ttl_evictions": self.ttl_evictions,
            "rebalances": self.rebalances,
            "quarantines": self.quarantines,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
        }

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            memory_hits=self.memory_hits,
            disk_hits=self.disk_hits,
            misses=self.misses,
            puts=self.puts,
            evictions=self.evictions,
            disk_evictions=self.disk_evictions,
            ttl_evictions=self.ttl_evictions,
            rebalances=self.rebalances,
            quarantines=self.quarantines,
        )

    def add(self, other: "CacheStats") -> "CacheStats":
        """Sum per-shard counters into one fleet-wide view (in place)."""
        self.memory_hits += other.memory_hits
        self.disk_hits += other.disk_hits
        self.misses += other.misses
        self.puts += other.puts
        self.evictions += other.evictions
        self.disk_evictions += other.disk_evictions
        self.ttl_evictions += other.ttl_evictions
        self.rebalances += other.rebalances
        self.quarantines += other.quarantines
        return self


class MemoryTier:
    """A bounded LRU mapping of fingerprint -> payload string.

    Besides the entry cap of the PR 2 tier, the tier can bound its payload
    bytes (``max_bytes``) and expire entries after ``ttl_seconds``.  Expiry
    is lazy -- an expired entry is dropped when it is next touched (or when
    it reaches the LRU head during an eviction pass) -- which is exactly
    right for deterministic solver results: the TTL exists to bound staleness
    across *schema* changes, not to free memory on a deadline.  Telemetry
    that must not overreport warm capacity calls :meth:`sweep_expired` at
    collection time.

    TTL arithmetic uses ``time.monotonic()`` by default: the tier dies with
    the process, so its timestamps never need to survive a restart, and a
    wall-clock step (NTP correction, container suspend/resume) must neither
    mass-expire a warm cache nor immortalise entries.  The disk tier keeps
    wall-clock times for restart semantics; the owning store converts at the
    promotion boundary.
    """

    def __init__(
        self,
        capacity: int = 4096,
        max_bytes: int | None = None,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 1:
            raise ValueError("memory tier capacity must be >= 1")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        #: fingerprint -> (payload, stored_at, payload_bytes); ordered
        #: least-recently-used first.  The byte length is computed once per
        #: insert (encoding a large payload on every eviction-loop iteration
        #: would tax eviction-pressure workloads).
        self._entries: OrderedDict[str, tuple[str, float, int]] = OrderedDict()
        self._bytes = 0
        self.evictions = 0
        self.ttl_evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def payload_bytes(self) -> int:
        return self._bytes

    def __contains__(self, fingerprint: str) -> bool:
        return self.get(fingerprint) is not None

    def _expired(self, stored_at: float, now: float) -> bool:
        return self.ttl_seconds is not None and now - stored_at > self.ttl_seconds

    def _drop(self, fingerprint: str) -> None:
        _, _, payload_bytes = self._entries.pop(fingerprint)
        self._bytes -= payload_bytes

    def get(self, fingerprint: str) -> str | None:
        entry = self._entries.get(fingerprint)
        if entry is None:
            return None
        payload, stored_at, _ = entry
        if self._expired(stored_at, self._clock()):
            self._drop(fingerprint)
            self.ttl_evictions += 1
            return None
        self._entries.move_to_end(fingerprint)
        return payload

    def put(self, fingerprint: str, payload: str, stored_at: float | None = None) -> int:
        """Insert (or refresh) an entry; returns the number of cap evictions.

        ``stored_at`` back-dates the entry's TTL clock -- a disk hit promoted
        into this tier must keep its original write time, or promotion would
        stretch the configured expiry to nearly twice its length.
        """
        now = self._clock()
        if fingerprint in self._entries:
            self._drop(fingerprint)
        self._entries[fingerprint] = (
            payload,
            now if stored_at is None else stored_at,
            len(payload.encode("utf-8")),
        )
        self._bytes += self._entries[fingerprint][2]
        return self._evict_over_caps(now)

    def _evict_over_caps(self, now: float) -> int:
        """Evict LRU-head entries until the caps hold; returns cap evictions.

        The most recently touched entry always survives: a just-written entry
        sits at the tail, so an acknowledged put outlives its own eviction
        pass even when it alone exceeds the byte cap.
        """
        evicted = 0
        while len(self._entries) > 1 and (
            len(self._entries) > self.capacity
            or (self.max_bytes is not None and self._bytes > self.max_bytes)
        ):
            oldest, (_, oldest_stored_at, _) = next(iter(self._entries.items()))
            self._drop(oldest)
            if self._expired(oldest_stored_at, now):
                self.ttl_evictions += 1
            else:
                evicted += 1
        self.evictions += evicted
        return evicted

    def set_caps(self, capacity: int, max_bytes: int | None) -> int:
        """Re-cap the tier in place (load-aware rebalancing); evicts if shrunk."""
        if capacity < 1:
            raise ValueError("memory tier capacity must be >= 1")
        self.capacity = capacity
        self.max_bytes = max_bytes
        return self._evict_over_caps(self._clock())

    def sweep_expired(self) -> int:
        """Drop every expired entry now (telemetry-time sweep); returns count.

        Lazy expiry only fires on access, so entries that expire and are
        never touched again would keep inflating the size gauges forever.
        Stats/scrape collection calls this so capacity telemetry reports
        live entries only; each drop counts as a ``ttl_eviction``.
        """
        if self.ttl_seconds is None:
            return 0
        now = self._clock()
        expired = [
            fingerprint
            for fingerprint, (_, stored_at, _) in self._entries.items()
            if self._expired(stored_at, now)
        ]
        for fingerprint in expired:
            self._drop(fingerprint)
        self.ttl_evictions += len(expired)
        return len(expired)


class SqliteTier:
    """On-disk fingerprint -> payload table backed by SQLite.

    A single connection is shared across threads behind the owning store's
    lock (SQLite connections are not concurrency-safe by themselves).  Writes
    are committed immediately: a crashed or killed server loses nothing that
    was already answered.  Entry/byte caps evict the oldest rows first
    (``created_unix`` order), and expired rows are dropped lazily on access;
    both are counted on the tier (``evictions`` / ``ttl_evictions``).

    Connections run with ``journal_mode=WAL`` (readers never block the
    writer), ``synchronous=NORMAL`` (durable past an application crash; the
    cache is rebuildable, so the power-cut window is acceptable) and a 5 s
    ``busy_timeout``.  A corrupt database file -- detected at open or when
    any statement raises ``sqlite3.DatabaseError`` -- is quarantined
    (renamed to ``<name>.corrupt-<n>``) and replaced with a fresh empty
    tier; the operation that tripped it degrades to a cache miss.
    """

    def __init__(
        self,
        path: str | Path,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] = time.time,
    ):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self.evictions = 0
        self.ttl_evictions = 0
        self.quarantines = 0
        self._entries = 0
        self._bytes = 0
        try:
            self._connection = self._open()
        except sqlite3.DatabaseError:
            self._quarantine_files()
            self._connection = self._open()

    def _open(self) -> sqlite3.Connection:
        """Connect, apply the hardening pragmas, ensure the schema, count."""
        connection = sqlite3.connect(str(self.path), check_same_thread=False)
        try:
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            connection.execute("PRAGMA busy_timeout=5000")
            connection.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                " fingerprint TEXT PRIMARY KEY,"
                " payload TEXT NOT NULL,"
                " created_unix REAL NOT NULL)"
            )
            connection.commit()
            row = connection.execute(
                "SELECT COUNT(*), COALESCE(SUM(LENGTH(CAST(payload AS BLOB))), 0) FROM results"
            ).fetchone()
        except sqlite3.DatabaseError:
            connection.close()
            raise
        self._entries = int(row[0])
        self._bytes = int(row[1])
        return connection

    def _quarantine_files(self) -> None:
        """Move the corrupt database (and its WAL/SHM siblings) aside."""
        self.quarantines += 1
        suffix = 0
        while True:
            target = self.path.with_name(f"{self.path.name}.corrupt-{suffix}")
            if not target.exists():
                break
            suffix += 1
        if self.path.exists():
            self.path.replace(target)
        for sibling in ("-wal", "-shm"):
            companion = self.path.with_name(self.path.name + sibling)
            if companion.exists():
                companion.replace(target.with_name(target.name + sibling))

    def _recover_from_corruption(self) -> None:
        """Quarantine the live database and reopen cold (mid-operation)."""
        try:
            self._connection.close()
        except sqlite3.Error:
            pass
        self._quarantine_files()
        self._connection = self._open()

    def __len__(self) -> int:
        return self._entries

    @property
    def payload_bytes(self) -> int:
        return self._bytes

    def _delete(self, fingerprint: str, payload_bytes: int) -> None:
        self._connection.execute(
            "DELETE FROM results WHERE fingerprint = ?", (fingerprint,)
        )
        self._entries -= 1
        self._bytes -= payload_bytes

    def get_entry(self, fingerprint: str) -> tuple[str, float] | None:
        """Payload plus its original write time (``None`` on miss/expiry).

        Corruption surfaces as a miss: the tier quarantines itself, reopens
        cold and lets the caller recompute -- never an exception upward.
        """
        try:
            return self._get_entry(fingerprint)
        except sqlite3.DatabaseError:
            self._recover_from_corruption()
            return None

    def _get_entry(self, fingerprint: str) -> tuple[str, float] | None:
        row = self._connection.execute(
            "SELECT payload, created_unix FROM results WHERE fingerprint = ?",
            (fingerprint,),
        ).fetchone()
        if row is None:
            return None
        payload, created_unix = row
        if self.ttl_seconds is not None and self._clock() - created_unix > self.ttl_seconds:
            self._delete(fingerprint, len(payload.encode("utf-8")))
            self._connection.commit()
            self.ttl_evictions += 1
            return None
        return payload, float(created_unix)

    def get(self, fingerprint: str) -> str | None:
        entry = self.get_entry(fingerprint)
        return None if entry is None else entry[0]

    def put(self, fingerprint: str, payload: str) -> int:
        """Write a payload; returns the number of cap evictions it caused.

        A corrupt database quarantines itself and the write is retried once
        against the fresh file, so the entry an acknowledged solve produced
        still lands on disk.
        """
        try:
            return self._put(fingerprint, payload)
        except sqlite3.DatabaseError:
            self._recover_from_corruption()
            return self._put(fingerprint, payload)

    def _put(self, fingerprint: str, payload: str) -> int:
        now = self._clock()
        previous = self._connection.execute(
            "SELECT LENGTH(CAST(payload AS BLOB)) FROM results WHERE fingerprint = ?",
            (fingerprint,),
        ).fetchone()
        self._connection.execute(
            "INSERT OR REPLACE INTO results (fingerprint, payload, created_unix) VALUES (?, ?, ?)",
            (fingerprint, payload, now),
        )
        if previous is None:
            self._entries += 1
        else:
            self._bytes -= int(previous[0])
        self._bytes += len(payload.encode("utf-8"))
        evicted = self._evict_over_caps(protect=fingerprint, now=now)
        self._connection.commit()
        return evicted

    def _evict_over_caps(self, protect: str, now: float) -> int:
        """Evict oldest-first until the caps hold, never touching ``protect``."""
        evicted = 0
        while self._entries > 1 and (
            (self.max_entries is not None and self._entries > self.max_entries)
            or (self.max_bytes is not None and self._bytes > self.max_bytes)
        ):
            row = self._connection.execute(
                "SELECT fingerprint, LENGTH(CAST(payload AS BLOB)), created_unix FROM results"
                " WHERE fingerprint != ? ORDER BY created_unix ASC, fingerprint ASC LIMIT 1",
                (protect,),
            ).fetchone()
            if row is None:  # only the protected entry remains
                break
            fingerprint, payload_bytes, created_unix = row
            self._delete(fingerprint, int(payload_bytes))
            if self.ttl_seconds is not None and now - created_unix > self.ttl_seconds:
                self.ttl_evictions += 1
            else:
                evicted += 1
        self.evictions += evicted
        return evicted

    def sweep_expired(self) -> int:
        """Drop every expired row now (telemetry-time sweep); returns count.

        Rows that expire and are never queried again would otherwise keep
        inflating the disk-size gauges forever (expiry is lazy on access).
        Each dropped row counts as a ``ttl_eviction``; corruption degrades
        to a no-op sweep after quarantining, as everywhere else.
        """
        if self.ttl_seconds is None:
            return 0
        try:
            return self._sweep_expired()
        except sqlite3.DatabaseError:
            self._recover_from_corruption()
            return 0

    def _sweep_expired(self) -> int:
        cutoff = self._clock() - self.ttl_seconds
        row = self._connection.execute(
            "SELECT COUNT(*), COALESCE(SUM(LENGTH(CAST(payload AS BLOB))), 0)"
            " FROM results WHERE created_unix < ?",
            (cutoff,),
        ).fetchone()
        count = int(row[0])
        if count == 0:
            return 0
        self._connection.execute(
            "DELETE FROM results WHERE created_unix < ?", (cutoff,)
        )
        self._connection.commit()
        self._entries -= count
        self._bytes -= int(row[1])
        self.ttl_evictions += count
        return count

    def set_caps(self, max_entries: int | None, max_bytes: int | None) -> int:
        """Re-cap the tier in place (load-aware rebalancing); evicts if shrunk.

        The newest row is protected, mirroring the put-path guarantee that an
        acknowledged write is never evicted by the pass it triggered.
        """
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        newest = self._connection.execute(
            "SELECT fingerprint FROM results ORDER BY created_unix DESC, fingerprint DESC LIMIT 1"
        ).fetchone()
        if newest is None:
            return 0
        evicted = self._evict_over_caps(protect=newest[0], now=self._clock())
        self._connection.commit()
        return evicted

    def close(self) -> None:
        self._connection.close()


@dataclass
class StoreLookup:
    """Result of one store lookup: the payload (if any) and the tier it hit."""

    payload: str | None
    tier: str | None  # "memory", "disk" or None on a miss

    @property
    def hit(self) -> bool:
        return self.payload is not None


class ResultStore:
    """LRU memory tier in front of an optional SQLite disk tier.

    Parameters
    ----------
    cache_dir:
        Directory for the SQLite tier (created if missing).  ``None`` keeps
        the store memory-only -- fine for tests and throwaway servers, but
        results then die with the process.
    memory_capacity:
        Maximum number of payloads held by the LRU tier (shorthand for
        ``limits.memory_entries``; ignored when ``limits`` is passed).
    limits:
        Full admission-control configuration (byte caps, disk caps, TTL).
    """

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        memory_capacity: int = 4096,
        limits: StoreLimits | None = None,
        clock: Callable[[], float] = time.time,
        monotonic_clock: Callable[[], float] | None = None,
    ):
        self.limits = limits if limits is not None else StoreLimits(memory_entries=memory_capacity)
        self._lock = threading.Lock()
        # The wall clock stamps the SQLite tier (its timestamps must survive
        # restarts); the memory tier ages on a monotonic clock so a wall-clock
        # step can neither mass-expire a warm cache nor immortalise entries.
        # A test that injects one fake ``clock`` drives both tiers unless it
        # also injects ``monotonic_clock``.
        self._wall_clock = clock
        if monotonic_clock is None:
            monotonic_clock = time.monotonic if clock is time.time else clock
        self._monotonic_clock = monotonic_clock
        self._memory = MemoryTier(
            capacity=self.limits.memory_entries,
            max_bytes=self.limits.memory_bytes,
            ttl_seconds=self.limits.ttl_seconds,
            clock=monotonic_clock,
        )
        self._disk = (
            SqliteTier(
                Path(cache_dir) / SQLITE_FILENAME,
                max_entries=self.limits.disk_entries,
                max_bytes=self.limits.disk_bytes,
                ttl_seconds=self.limits.ttl_seconds,
                clock=clock,
            )
            if cache_dir
            else None
        )
        self._disk_size_at_close: int | None = None
        self._disk_counters_at_close = (0, 0, 0)
        self._stats = CacheStats()

    # ------------------------------------------------------------------ #
    # Lookup / insert
    # ------------------------------------------------------------------ #
    def get(self, fingerprint: str) -> StoreLookup:
        """Look a fingerprint up, promoting disk hits into the memory tier."""
        inject("store.get")
        with self._lock:
            payload = self._memory.get(fingerprint)
            if payload is not None:
                self._stats.memory_hits += 1
                return StoreLookup(payload=payload, tier="memory")
            if self._disk is not None:
                entry = self._disk.get_entry(fingerprint)
                if entry is not None:
                    payload, created_unix = entry
                    self._stats.disk_hits += 1
                    # Promote with the entry's original *age* re-expressed on
                    # the memory tier's monotonic clock: promotion must not
                    # restart the TTL, and the disk tier's wall-clock write
                    # time is not comparable to a monotonic reading directly.
                    age = max(0.0, self._wall_clock() - created_unix)
                    self._memory.put(
                        fingerprint, payload, stored_at=self._monotonic_clock() - age
                    )
                    return StoreLookup(payload=payload, tier="disk")
            self._stats.misses += 1
            return StoreLookup(payload=None, tier=None)

    def put(self, fingerprint: str, payload: str) -> None:
        """Write a payload into every tier."""
        inject("store.put")
        with self._lock:
            self._stats.puts += 1
            self._memory.put(fingerprint, payload)
            if self._disk is not None:
                self._disk.put(fingerprint, payload)

    def apply_limits(self, limits: StoreLimits) -> None:
        """Re-cap both tiers in place (load-aware shard rebalancing).

        Shrinking a cap evicts oldest-first immediately, so the store honours
        its new budget as soon as the call returns; growing a cap simply
        stops future evictions.  The TTL is not changed -- expiry bounds
        staleness, not capacity, so rebalancing must not touch it.
        """
        with self._lock:
            self.limits = StoreLimits(
                memory_entries=limits.memory_entries,
                memory_bytes=limits.memory_bytes,
                disk_entries=limits.disk_entries,
                disk_bytes=limits.disk_bytes,
                ttl_seconds=self.limits.ttl_seconds,
            )
            self._memory.set_caps(limits.memory_entries, limits.memory_bytes)
            if self._disk is not None:
                self._disk.set_caps(limits.disk_entries, limits.disk_bytes)

    def sweep_expired(self) -> int:
        """Drop expired entries in both tiers now; returns the total dropped.

        Called at stats/scrape collection time so the size gauges report
        live entries only -- lazy expiry alone lets never-touched-again
        entries inflate them indefinitely.  Every drop is a ``ttl_eviction``.
        """
        with self._lock:
            swept = self._memory.sweep_expired()
            if self._disk is not None:
                swept += self._disk.sweep_expired()
            return swept

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> CacheStats:
        """Snapshot of the cumulative counters (safe to mutate)."""
        with self._lock:
            snapshot = self._stats.snapshot()
            disk_evictions, disk_ttl, disk_quarantines = self._disk_counters_at_close
            if self._disk is not None:
                disk_evictions = self._disk.evictions
                disk_ttl = self._disk.ttl_evictions
                disk_quarantines = self._disk.quarantines
            snapshot.evictions = self._memory.evictions
            snapshot.disk_evictions = disk_evictions
            snapshot.ttl_evictions = self._memory.ttl_evictions + disk_ttl
            snapshot.quarantines = disk_quarantines
            return snapshot

    def sizes(self) -> dict[str, int]:
        """Current entry counts per tier."""
        with self._lock:
            sizes = {"memory": len(self._memory)}
            if self._disk is not None:
                sizes["disk"] = len(self._disk)
            elif self._disk_size_at_close is not None:
                sizes["disk"] = self._disk_size_at_close
            return sizes

    def payload_bytes(self) -> dict[str, int]:
        """Current payload byte totals per tier (admission-control telemetry)."""
        with self._lock:
            totals = {"memory": self._memory.payload_bytes}
            if self._disk is not None:
                totals["disk"] = self._disk.payload_bytes
            return totals

    @property
    def has_disk_tier(self) -> bool:
        return self._disk is not None

    def close(self) -> None:
        """Close the disk tier; the store degrades to memory-only.

        Idempotent, and every other operation stays safe afterwards (the
        CLI renders a final stats table after shutting the service down).
        """
        with self._lock:
            if self._disk is not None:
                self._disk_size_at_close = len(self._disk)
                self._disk_counters_at_close = (
                    self._disk.evictions,
                    self._disk.ttl_evictions,
                    self._disk.quarantines,
                )
                self._disk.close()
                self._disk = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def split_cap_by_weight(cap: int | None, weights: list[int]) -> list[int | None]:
    """Split an integer cap across shards proportionally to demand weights.

    Largest-remainder rounding keeps the total at ``cap`` exactly, except
    that every shard is floored at one entry/byte (matching the
    :meth:`StoreLimits.per_shard` contract of at most ``cap + shards``
    fleet-wide).  Zero total weight degrades to an even split.
    """
    if cap is None:
        return [None] * len(weights)
    total = sum(weights)
    if total <= 0:
        return [max(1, -(-cap // len(weights)))] * len(weights)
    raw = [cap * weight / total for weight in weights]
    shares = [int(value) for value in raw]
    remainder = cap - sum(shares)
    by_fraction = sorted(range(len(raw)), key=lambda i: raw[i] - shares[i], reverse=True)
    for index in by_fraction[:remainder]:
        shares[index] += 1
    return [max(1, share) for share in shares]


def shard_of(fingerprint: str, num_shards: int) -> int:
    """Deterministic shard index of a fingerprint.

    Fingerprints are SHA-256 hex digests, so the leading 32 bits are already
    uniformly distributed; anything else (tests, ad hoc keys) falls back to a
    CRC so the mapping stays stable across processes and restarts -- shard
    files written by one server must be found by the next.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    try:
        prefix = int(fingerprint[:8], 16)
    except ValueError:
        prefix = zlib.crc32(fingerprint.encode("utf-8"))
    return prefix % num_shards


class ShardedResultStore:
    """``N`` independent :class:`ResultStore` shards behind one interface.

    The shard of a fingerprint is chosen by its hex prefix
    (:func:`shard_of`), so each fingerprint lives in exactly one shard and a
    restart with the same ``num_shards`` finds every entry again.  Each shard
    owns its lock, LRU front and SQLite file (``shard-<i>/results.sqlite``
    under ``cache_dir``); concurrent operations on different shards never
    contend.  Store-level caps start evenly split across the shards via
    :meth:`StoreLimits.per_shard`.

    Load-aware rebalancing
    ----------------------
    Fingerprints hash uniformly, but real workloads do not: a sweep replay
    can hammer a handful of shards while the rest sit idle, and an even cap
    split then makes the hot shards thrash (evict entries the next request
    needs) while cold shards hoard unused budget.  :meth:`rebalance`
    re-splits the store-level caps by *observed* per-shard pressure --
    current occupancy plus the evictions suffered since the last rebalance
    -- so hot shards grow at the expense of cold ones while the fleet-wide
    total stays within the configured caps.  Pass ``rebalance_interval=N``
    to trigger it automatically every ``N`` puts; each pass increments the
    ``rebalances`` counter surfaced through ``stats()`` and ``/stats``.
    """

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        num_shards: int = 4,
        memory_capacity: int = 4096,
        limits: StoreLimits | None = None,
        clock: Callable[[], float] = time.time,
        monotonic_clock: Callable[[], float] | None = None,
        rebalance_interval: int | None = None,
    ):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if rebalance_interval is not None and rebalance_interval < 1:
            raise ValueError("rebalance_interval must be >= 1 (or None to disable)")
        self.limits = limits if limits is not None else StoreLimits(memory_entries=memory_capacity)
        self.num_shards = num_shards
        shard_limits = self.limits.per_shard(num_shards)
        self._shards = [
            ResultStore(
                cache_dir=(Path(cache_dir) / f"shard-{index:02d}") if cache_dir else None,
                limits=shard_limits,
                clock=clock,
                monotonic_clock=monotonic_clock,
            )
            for index in range(num_shards)
        ]
        self.rebalances = 0
        self._rebalance_interval = rebalance_interval
        self._rebalance_lock = threading.Lock()
        self._puts_since_rebalance = 0
        self._evictions_at_rebalance = [0] * num_shards
        self._disk_evictions_at_rebalance = [0] * num_shards

    def shard_index(self, fingerprint: str) -> int:
        return shard_of(fingerprint, self.num_shards)

    def shard(self, fingerprint: str) -> ResultStore:
        return self._shards[self.shard_index(fingerprint)]

    # ------------------------------------------------------------------ #
    # Lookup / insert (route to the owning shard)
    # ------------------------------------------------------------------ #
    def get(self, fingerprint: str) -> StoreLookup:
        return self.shard(fingerprint).get(fingerprint)

    def put(self, fingerprint: str, payload: str) -> None:
        self.shard(fingerprint).put(fingerprint, payload)
        if self._rebalance_interval is not None:
            with self._rebalance_lock:
                self._puts_since_rebalance += 1
                due = self._puts_since_rebalance >= self._rebalance_interval
                if due:
                    self._puts_since_rebalance = 0
            if due:
                self.rebalance()

    # ------------------------------------------------------------------ #
    # Load-aware cap rebalancing
    # ------------------------------------------------------------------ #
    def rebalance(self) -> list[StoreLimits]:
        """Re-split the store caps by observed per-shard pressure.

        A shard's pressure is its current occupancy plus the cap evictions it
        suffered since the last rebalance (entries that *wanted* to be there
        but were pushed out -- the thrashing signal).  Memory and disk tiers
        are weighted independently; every shard keeps at least one entry of
        budget, so a cold shard can always warm back up and earn budget at
        the next pass.  Returns the limits applied to each shard.
        """
        with self._rebalance_lock:
            stats = [shard.stats() for shard in self._shards]
            sizes = [shard.sizes() for shard in self._shards]
            memory_weights = []
            disk_weights = []
            for index, shard_stats in enumerate(stats):
                evicted = shard_stats.evictions - self._evictions_at_rebalance[index]
                disk_evicted = (
                    shard_stats.disk_evictions
                    - self._disk_evictions_at_rebalance[index]
                )
                # "+ 1" keeps an idle shard's weight positive so a burst of
                # traffic toward it is never starved down to a zero share.
                memory_weights.append(sizes[index].get("memory", 0) + max(0, evicted) + 1)
                disk_weights.append(sizes[index].get("disk", 0) + max(0, disk_evicted) + 1)
                self._evictions_at_rebalance[index] = shard_stats.evictions
                self._disk_evictions_at_rebalance[index] = shard_stats.disk_evictions
            # Byte caps follow the same pressure weights as entry caps: the
            # shards store payloads of one service, so entry skew and byte
            # skew track each other closely.
            memory_entries = split_cap_by_weight(self.limits.memory_entries, memory_weights)
            memory_bytes = split_cap_by_weight(self.limits.memory_bytes, memory_weights)
            disk_entries = split_cap_by_weight(self.limits.disk_entries, disk_weights)
            disk_bytes = split_cap_by_weight(self.limits.disk_bytes, disk_weights)
            applied = []
            for index, shard in enumerate(self._shards):
                shard_limits = StoreLimits(
                    memory_entries=memory_entries[index],
                    memory_bytes=memory_bytes[index],
                    disk_entries=disk_entries[index],
                    disk_bytes=disk_bytes[index],
                    ttl_seconds=self.limits.ttl_seconds,
                )
                shard.apply_limits(shard_limits)
                applied.append(shard_limits)
            self.rebalances += 1
            return applied

    def shard_limits(self) -> list[StoreLimits]:
        """The cap split currently in force (one entry per shard)."""
        return [shard.limits for shard in self._shards]

    def sweep_expired(self) -> int:
        """Drop expired entries in every shard now; returns the total dropped."""
        return sum(shard.sweep_expired() for shard in self._shards)

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> CacheStats:
        """Fleet-wide counters (the sum over every shard)."""
        total = CacheStats()
        for shard in self._shards:
            total.add(shard.stats())
        total.rebalances = self.rebalances
        return total

    def per_shard_stats(self) -> list[CacheStats]:
        return [shard.stats() for shard in self._shards]

    def per_shard_sizes(self) -> list[dict[str, int]]:
        """Entry counts per tier for each shard (shard-skew observability)."""
        return [shard.sizes() for shard in self._shards]

    def sizes(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for shard in self._shards:
            for tier, size in shard.sizes().items():
                totals[tier] = totals.get(tier, 0) + size
        return totals

    def payload_bytes(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for shard in self._shards:
            for tier, size in shard.payload_bytes().items():
                totals[tier] = totals.get(tier, 0) + size
        return totals

    @property
    def has_disk_tier(self) -> bool:
        return any(shard.has_disk_tier for shard in self._shards)

    def close(self) -> None:
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "ShardedResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
