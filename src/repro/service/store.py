"""Multi-tier result store: in-memory LRU in front of an on-disk SQLite tier.

Payloads are opaque JSON strings (serialised :class:`~repro.core.solution.
SolveOutcome` documents) keyed by the canonical request fingerprint of
:mod:`repro.service.canonical`.  The memory tier answers repeat queries
within a process in microseconds; the SQLite tier survives restarts, so a
rebooted server keeps answering warm queries without re-solving.  Hits,
misses, evictions and writes are counted per tier and surfaced through the
reporting layer (:func:`repro.reporting.service.cache_stats_table`) and the
server's ``/stats`` endpoint.

All operations are thread-safe: the HTTP server handles requests on a
thread pool and shares one store.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any

#: File name of the SQLite tier inside a cache directory.
SQLITE_FILENAME = "results.sqlite"


@dataclass
class CacheStats:
    """Counters of one :class:`ResultStore` (cumulative since creation)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.memory_hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return (self.memory_hits + self.disk_hits) / lookups if lookups else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
        }

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            memory_hits=self.memory_hits,
            disk_hits=self.disk_hits,
            misses=self.misses,
            puts=self.puts,
            evictions=self.evictions,
        )


class MemoryTier:
    """A plain LRU mapping of fingerprint -> payload string."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("memory tier capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[str, str] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def get(self, fingerprint: str) -> str | None:
        payload = self._entries.get(fingerprint)
        if payload is not None:
            self._entries.move_to_end(fingerprint)
        return payload

    def put(self, fingerprint: str, payload: str) -> int:
        """Insert (or refresh) an entry; returns the number of evictions."""
        if fingerprint in self._entries:
            self._entries.move_to_end(fingerprint)
            self._entries[fingerprint] = payload
            return 0
        self._entries[fingerprint] = payload
        evicted = 0
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            evicted += 1
        return evicted


class SqliteTier:
    """On-disk fingerprint -> payload table backed by SQLite.

    A single connection is shared across threads behind the store's lock
    (SQLite connections are not concurrency-safe by themselves).  Writes are
    committed immediately: a crashed or killed server loses nothing that was
    already answered.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._connection = sqlite3.connect(str(self.path), check_same_thread=False)
        self._connection.execute(
            "CREATE TABLE IF NOT EXISTS results ("
            " fingerprint TEXT PRIMARY KEY,"
            " payload TEXT NOT NULL,"
            " created_unix REAL NOT NULL)"
        )
        self._connection.commit()

    def __len__(self) -> int:
        row = self._connection.execute("SELECT COUNT(*) FROM results").fetchone()
        return int(row[0])

    def get(self, fingerprint: str) -> str | None:
        row = self._connection.execute(
            "SELECT payload FROM results WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        return None if row is None else row[0]

    def put(self, fingerprint: str, payload: str) -> None:
        self._connection.execute(
            "INSERT OR REPLACE INTO results (fingerprint, payload, created_unix) VALUES (?, ?, ?)",
            (fingerprint, payload, time.time()),
        )
        self._connection.commit()

    def close(self) -> None:
        self._connection.close()


@dataclass
class StoreLookup:
    """Result of one store lookup: the payload (if any) and the tier it hit."""

    payload: str | None
    tier: str | None  # "memory", "disk" or None on a miss

    @property
    def hit(self) -> bool:
        return self.payload is not None


class ResultStore:
    """LRU memory tier in front of an optional SQLite disk tier.

    Parameters
    ----------
    cache_dir:
        Directory for the SQLite tier (created if missing).  ``None`` keeps
        the store memory-only -- fine for tests and throwaway servers, but
        results then die with the process.
    memory_capacity:
        Maximum number of payloads held by the LRU tier.
    """

    def __init__(self, cache_dir: str | Path | None = None, memory_capacity: int = 4096):
        self._lock = threading.Lock()
        self._memory = MemoryTier(capacity=memory_capacity)
        self._disk = SqliteTier(Path(cache_dir) / SQLITE_FILENAME) if cache_dir else None
        self._disk_size_at_close: int | None = None
        self._stats = CacheStats()

    # ------------------------------------------------------------------ #
    # Lookup / insert
    # ------------------------------------------------------------------ #
    def get(self, fingerprint: str) -> StoreLookup:
        """Look a fingerprint up, promoting disk hits into the memory tier."""
        with self._lock:
            payload = self._memory.get(fingerprint)
            if payload is not None:
                self._stats.memory_hits += 1
                return StoreLookup(payload=payload, tier="memory")
            if self._disk is not None:
                payload = self._disk.get(fingerprint)
                if payload is not None:
                    self._stats.disk_hits += 1
                    self._stats.evictions += self._memory.put(fingerprint, payload)
                    return StoreLookup(payload=payload, tier="disk")
            self._stats.misses += 1
            return StoreLookup(payload=None, tier=None)

    def put(self, fingerprint: str, payload: str) -> None:
        """Write a payload into every tier."""
        with self._lock:
            self._stats.puts += 1
            self._stats.evictions += self._memory.put(fingerprint, payload)
            if self._disk is not None:
                self._disk.put(fingerprint, payload)

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> CacheStats:
        """Snapshot of the cumulative counters (safe to mutate)."""
        with self._lock:
            return self._stats.snapshot()

    def sizes(self) -> dict[str, int]:
        """Current entry counts per tier."""
        with self._lock:
            sizes = {"memory": len(self._memory)}
            if self._disk is not None:
                sizes["disk"] = len(self._disk)
            elif self._disk_size_at_close is not None:
                sizes["disk"] = self._disk_size_at_close
            return sizes

    @property
    def has_disk_tier(self) -> bool:
        return self._disk is not None

    def close(self) -> None:
        """Close the disk tier; the store degrades to memory-only.

        Idempotent, and every other operation stays safe afterwards (the
        CLI renders a final stats table after shutting the service down).
        """
        with self._lock:
            if self._disk is not None:
                self._disk_size_at_close = len(self._disk)
                self._disk.close()
                self._disk = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
