"""Allocation-as-a-service: fingerprints, result cache, batch API, server.

The service layer turns the one-shot solver stack into a long-running,
cache-backed engine:

* :mod:`repro.service.canonical` -- stable content fingerprints of
  ``(problem, method, settings)`` requests;
* :mod:`repro.service.store` -- bounded in-memory LRU + on-disk SQLite
  result tiers, single-store or sharded by fingerprint prefix;
* :mod:`repro.service.batch` -- deduped, memo-grouped batch solving;
* :mod:`repro.service.jobs` -- the async batch job queue and worker pool;
* :mod:`repro.service.server` -- the resident service and its HTTP JSON API;
* :mod:`repro.service.client` -- a small stdlib client (sync + async polls).
"""

from .batch import BatchReport, SolveRequest, request_from_dict, solve_batch
from .canonical import canonical_json, canonical_request, fingerprint, group_key
from .client import ServiceClient, ServiceError, request_to_dict
from .jobs import Job, JobQueue
from .server import AllocationHTTPServer, AllocationService, run_server, start_server
from .store import (
    CacheStats,
    MemoryTier,
    ResultStore,
    ShardedResultStore,
    SqliteTier,
    StoreLimits,
    StoreLookup,
    shard_of,
)

__all__ = [
    "AllocationHTTPServer",
    "AllocationService",
    "BatchReport",
    "CacheStats",
    "Job",
    "JobQueue",
    "MemoryTier",
    "ResultStore",
    "ServiceClient",
    "ServiceError",
    "ShardedResultStore",
    "SolveRequest",
    "SqliteTier",
    "StoreLimits",
    "StoreLookup",
    "canonical_json",
    "canonical_request",
    "fingerprint",
    "group_key",
    "request_from_dict",
    "request_to_dict",
    "run_server",
    "shard_of",
    "solve_batch",
    "start_server",
]
