"""Allocation-as-a-service: fingerprints, result cache, batch API, server.

The service layer turns the one-shot solver stack into a long-running,
cache-backed engine:

* :mod:`repro.service.canonical` -- stable content fingerprints of
  ``(problem, method, settings)`` requests;
* :mod:`repro.service.store` -- bounded in-memory LRU + on-disk SQLite
  result tiers, single-store or sharded by fingerprint prefix;
* :mod:`repro.service.batch` -- deduped, memo-grouped batch solving;
* :mod:`repro.service.jobs` -- the async batch job queue and worker pool;
* :mod:`repro.service.wal` -- the per-shard write-ahead job journal that
  makes async acks durable across ``kill -9``;
* :mod:`repro.service.faults` -- seeded fault injection (crashes, IO
  errors, latency) at named sites, for the durability test harness;
* :mod:`repro.service.server` -- the resident service and its HTTP JSON API;
* :mod:`repro.service.client` -- a small stdlib client (sync + async polls)
  with capped-exponential retry/backoff on 429/503;
* :mod:`repro.service.hashing` -- the consistent hash ring mapping request
  fingerprints onto shard groups (minimal remap on resize);
* :mod:`repro.service.pool` -- the shard-group worker *processes*: spawn,
  heartbeat, graceful drain, crash restart + WAL replay;
* :mod:`repro.service.router` -- the front-end that routes the whole HTTP
  surface across the pool and aggregates /stats and /metrics.
"""

from .batch import BatchReport, SolveRequest, request_from_dict, request_to_dict, solve_batch
from .canonical import canonical_json, canonical_request, fingerprint, group_key
from .client import RetryPolicy, ServiceClient, ServiceError
from .faults import (
    FaultInjector,
    FaultPlanError,
    FaultSpec,
    InjectedIOError,
    parse_fault_plan,
    set_injector,
)
from .hashing import DEFAULT_REPLICAS, HashRing, ring, ring_of
from .jobs import Job, JobQueue, QueueFullError
from .pool import WorkerPool, WorkerSpec, build_worker_service, group_dir, worker_main
from .router import (
    RouterHTTPServer,
    RouterService,
    WorkerUnavailableError,
    merge_prometheus,
    run_router,
    start_router,
)
from .server import (
    AllocationHTTPServer,
    AllocationService,
    BackpressureError,
    run_server,
    start_server,
)
from .store import (
    CacheStats,
    MemoryTier,
    ResultStore,
    ShardedResultStore,
    SqliteTier,
    StoreLimits,
    StoreLookup,
    shard_of,
)
from .wal import JobWal, WalError, WalSegment, decode_records, encode_record

__all__ = [
    "AllocationHTTPServer",
    "AllocationService",
    "BackpressureError",
    "BatchReport",
    "CacheStats",
    "DEFAULT_REPLICAS",
    "FaultInjector",
    "FaultPlanError",
    "FaultSpec",
    "HashRing",
    "InjectedIOError",
    "Job",
    "JobQueue",
    "JobWal",
    "MemoryTier",
    "QueueFullError",
    "ResultStore",
    "RetryPolicy",
    "RouterHTTPServer",
    "RouterService",
    "ServiceClient",
    "ServiceError",
    "ShardedResultStore",
    "SolveRequest",
    "SqliteTier",
    "StoreLimits",
    "StoreLookup",
    "WalError",
    "WalSegment",
    "WorkerPool",
    "WorkerSpec",
    "WorkerUnavailableError",
    "build_worker_service",
    "canonical_json",
    "canonical_request",
    "decode_records",
    "encode_record",
    "fingerprint",
    "group_dir",
    "group_key",
    "merge_prometheus",
    "parse_fault_plan",
    "request_from_dict",
    "request_to_dict",
    "ring",
    "ring_of",
    "run_router",
    "run_server",
    "set_injector",
    "shard_of",
    "solve_batch",
    "start_router",
    "start_server",
    "worker_main",
]
