"""FPGA platform models: resource vectors, devices and multi-FPGA clusters."""

from .fpga import FPGADevice, FPGAState
from .multi_fpga import DeviceClass, MultiFPGAPlatform
from .presets import (
    XCKU115,
    XCVU9P,
    aws_f1,
    derated_die_platform,
    generic_platform,
    mixed_fleet,
    relative_bandwidth,
    relative_capacity,
)
from .resources import (
    ALL_DIMENSIONS,
    FEASIBILITY_TOLERANCE,
    RESOURCE_KINDS,
    ResourceVector,
    sum_resources,
)

__all__ = [
    "ALL_DIMENSIONS",
    "FEASIBILITY_TOLERANCE",
    "DeviceClass",
    "FPGADevice",
    "FPGAState",
    "MultiFPGAPlatform",
    "RESOURCE_KINDS",
    "ResourceVector",
    "XCKU115",
    "XCVU9P",
    "aws_f1",
    "derated_die_platform",
    "generic_platform",
    "mixed_fleet",
    "relative_bandwidth",
    "relative_capacity",
    "sum_resources",
]
