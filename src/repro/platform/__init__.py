"""FPGA platform models: resource vectors, devices and multi-FPGA clusters."""

from .fpga import FPGADevice, FPGAState
from .multi_fpga import MultiFPGAPlatform
from .presets import XCVU9P, aws_f1, generic_platform
from .resources import (
    ALL_DIMENSIONS,
    FEASIBILITY_TOLERANCE,
    RESOURCE_KINDS,
    ResourceVector,
    sum_resources,
)

__all__ = [
    "ALL_DIMENSIONS",
    "FEASIBILITY_TOLERANCE",
    "FPGADevice",
    "FPGAState",
    "MultiFPGAPlatform",
    "RESOURCE_KINDS",
    "ResourceVector",
    "XCVU9P",
    "aws_f1",
    "generic_platform",
    "sum_resources",
]
