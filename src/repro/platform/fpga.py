"""Single-FPGA device model.

An :class:`FPGADevice` describes one FPGA of the target platform: its absolute
on-chip resource counts, its DRAM bandwidth, and helpers to convert between
absolute quantities and the percentage units used by the optimisation model
(Tables 2-3 of the paper express every per-CU cost as a percent of one
device).  In a heterogeneous platform each
:class:`~repro.platform.multi_fpga.DeviceClass` carries one device; the
percentage caps of every class are expressed relative to the platform's
*reference* device (see :func:`repro.platform.presets.relative_capacity`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .resources import ResourceVector


@dataclass(frozen=True)
class FPGADevice:
    """One FPGA device of a multi-FPGA platform.

    Parameters
    ----------
    name:
        Human-readable device name (e.g. ``"xcvu9p"``).
    bram_blocks, dsp_slices, luts, ffs:
        Absolute resource counts of the device.
    dram_bandwidth_gbps:
        Peak external DRAM bandwidth available to the device, in GB/s.
    dram_banks:
        Number of DRAM channels attached to the device.
    """

    name: str
    bram_blocks: int
    dsp_slices: int
    luts: int
    ffs: int
    dram_bandwidth_gbps: float
    dram_banks: int = 4

    def __post_init__(self) -> None:
        for attr in ("bram_blocks", "dsp_slices", "luts", "ffs", "dram_banks"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive, got {getattr(self, attr)}")
        if self.dram_bandwidth_gbps <= 0:
            raise ValueError("dram_bandwidth_gbps must be positive")

    # ------------------------------------------------------------------ #
    # Percentage conversions
    # ------------------------------------------------------------------ #
    @property
    def capacity_percent(self) -> ResourceVector:
        """Full-device capacity expressed in percent (always 100 per kind)."""
        return ResourceVector.full(100.0)

    def absolute_counts(self) -> dict[str, float]:
        """Return absolute resource counts keyed by resource kind."""
        return {
            "bram": float(self.bram_blocks),
            "dsp": float(self.dsp_slices),
            "lut": float(self.luts),
            "ff": float(self.ffs),
        }

    def to_percent(self, usage: dict[str, float]) -> ResourceVector:
        """Convert absolute resource usage counts to a percent ResourceVector."""
        counts = self.absolute_counts()
        return ResourceVector.from_mapping(
            {kind: 100.0 * usage.get(kind, 0.0) / counts[kind] for kind in counts}
        )

    def to_absolute(self, usage_percent: ResourceVector) -> dict[str, float]:
        """Convert a percent ResourceVector back to absolute counts."""
        counts = self.absolute_counts()
        return {kind: counts[kind] * usage_percent[kind] / 100.0 for kind in counts}

    def bandwidth_percent(self, gbps: float) -> float:
        """Convert an absolute bandwidth demand (GB/s) to percent of the device."""
        if gbps < 0:
            raise ValueError("bandwidth demand must be non-negative")
        return 100.0 * gbps / self.dram_bandwidth_gbps

    def bandwidth_gbps(self, percent: float) -> float:
        """Convert a bandwidth percentage back to GB/s."""
        if percent < 0:
            raise ValueError("bandwidth percentage must be non-negative")
        return self.dram_bandwidth_gbps * percent / 100.0


@dataclass(frozen=True)
class FPGAState:
    """Mutable-in-spirit record of how much of one FPGA is in use.

    The allocator never mutates these in place; it builds new states as it
    assigns compute units, which keeps backtracking trivially correct.
    """

    device: FPGADevice
    used: ResourceVector = field(default_factory=ResourceVector.zeros)
    used_bandwidth: float = 0.0

    def __post_init__(self) -> None:
        if self.used_bandwidth < 0:
            raise ValueError("used_bandwidth must be non-negative")

    def with_additional(self, usage: ResourceVector, bandwidth: float) -> "FPGAState":
        """Return a new state with the given usage added."""
        return FPGAState(
            device=self.device,
            used=self.used + usage,
            used_bandwidth=self.used_bandwidth + bandwidth,
        )

    def slack(self, capacity: ResourceVector) -> ResourceVector:
        """Remaining resources relative to a (possibly derated) capacity."""
        return capacity - self.used

    def bandwidth_slack(self, bandwidth_capacity: float) -> float:
        """Remaining bandwidth (percent) relative to a capacity."""
        return max(0.0, bandwidth_capacity - self.used_bandwidth)
