"""Resource vectors for FPGA capacity accounting.

The paper's model (Section 3, Table 1) abstracts each compute unit's cost as a
fraction of one FPGA's resources (BRAM, DSP, LUT, FF) plus a fraction of the
FPGA's external DRAM bandwidth.  All optimisation constraints are of the form
"the sum of per-CU fractions on one FPGA must not exceed a cap" -- so the
natural datatype is a small named vector of fractions with element-wise
arithmetic and an "any component exceeds" comparison.

Resources are expressed in *percent of one FPGA* throughout, exactly as in
Tables 2 and 3 of the paper.  100.0 means the full device.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

#: Canonical ordering of the on-chip resource kinds tracked by the model.
RESOURCE_KINDS: tuple[str, ...] = ("bram", "dsp", "lut", "ff")

#: Resource kinds plus the off-chip DRAM bandwidth dimension.
ALL_DIMENSIONS: tuple[str, ...] = RESOURCE_KINDS + ("bandwidth",)

#: Absolute tolerance (in percentage points) used by feasibility checks.
FEASIBILITY_TOLERANCE = 1e-6


@dataclass(frozen=True)
class ResourceVector:
    """A vector of FPGA resource fractions, in percent of one device.

    Instances are immutable and support element-wise addition, subtraction,
    scalar multiplication, and dominance comparisons.  They are used both for
    per-CU costs (``Rk`` in the paper) and for capacities/constraints
    (``R``).

    Parameters
    ----------
    bram, dsp, lut, ff:
        On-chip resource usage, percent of one FPGA.  Negative values are
        rejected because neither costs nor capacities can be negative.
    """

    bram: float = 0.0
    dsp: float = 0.0
    lut: float = 0.0
    ff: float = 0.0

    def __post_init__(self) -> None:
        for kind in RESOURCE_KINDS:
            value = getattr(self, kind)
            if not math.isfinite(value):
                raise ValueError(f"resource {kind!r} must be finite, got {value!r}")
            if value < 0:
                raise ValueError(f"resource {kind!r} must be non-negative, got {value!r}")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def zeros(cls) -> "ResourceVector":
        """Return the all-zero resource vector."""
        return cls()

    @classmethod
    def full(cls, value: float = 100.0) -> "ResourceVector":
        """Return a vector with every component equal to ``value``."""
        return cls(bram=value, dsp=value, lut=value, ff=value)

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, float]) -> "ResourceVector":
        """Build a vector from a mapping; missing kinds default to zero.

        Unknown keys raise ``ValueError`` so that typos in workload
        definitions are caught early.
        """
        unknown = set(mapping) - set(RESOURCE_KINDS)
        if unknown:
            raise ValueError(f"unknown resource kinds: {sorted(unknown)}")
        return cls(**{kind: float(mapping.get(kind, 0.0)) for kind in RESOURCE_KINDS})

    # ------------------------------------------------------------------ #
    # Mapping-like access
    # ------------------------------------------------------------------ #
    def as_dict(self) -> dict[str, float]:
        """Return the vector as a plain ``{kind: value}`` dictionary."""
        return {kind: getattr(self, kind) for kind in RESOURCE_KINDS}

    def __getitem__(self, kind: str) -> float:
        if kind not in RESOURCE_KINDS:
            raise KeyError(kind)
        return getattr(self, kind)

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(self.as_dict().items())

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        if not isinstance(other, ResourceVector):
            return NotImplemented
        return ResourceVector(
            **{kind: getattr(self, kind) + getattr(other, kind) for kind in RESOURCE_KINDS}
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        """Element-wise difference, clamped at zero.

        Clamping keeps slack computations well-defined when floating point
        rounding would otherwise produce values like ``-1e-15``.
        """
        if not isinstance(other, ResourceVector):
            return NotImplemented
        return ResourceVector(
            **{
                kind: max(0.0, getattr(self, kind) - getattr(other, kind))
                for kind in RESOURCE_KINDS
            }
        )

    def __mul__(self, factor: float) -> "ResourceVector":
        if not isinstance(factor, (int, float)):
            return NotImplemented
        if factor < 0:
            raise ValueError("cannot scale a ResourceVector by a negative factor")
        return ResourceVector(
            **{kind: getattr(self, kind) * factor for kind in RESOURCE_KINDS}
        )

    __rmul__ = __mul__

    def __truediv__(self, divisor: float) -> "ResourceVector":
        if not isinstance(divisor, (int, float)):
            return NotImplemented
        if divisor <= 0:
            raise ValueError("cannot divide a ResourceVector by a non-positive factor")
        return self * (1.0 / divisor)

    # ------------------------------------------------------------------ #
    # Comparisons and aggregates
    # ------------------------------------------------------------------ #
    def fits_within(
        self, capacity: "ResourceVector", tolerance: float = FEASIBILITY_TOLERANCE
    ) -> bool:
        """Return True if every component is within ``capacity`` (+tolerance)."""
        return all(
            getattr(self, kind) <= getattr(capacity, kind) + tolerance
            for kind in RESOURCE_KINDS
        )

    def exceeds(self, capacity: "ResourceVector", tolerance: float = FEASIBILITY_TOLERANCE) -> bool:
        """Return True if any component exceeds ``capacity`` (+tolerance)."""
        return not self.fits_within(capacity, tolerance=tolerance)

    def dominates(self, other: "ResourceVector") -> bool:
        """Return True if every component is >= the corresponding one in ``other``."""
        return all(getattr(self, kind) >= getattr(other, kind) for kind in RESOURCE_KINDS)

    def max_component(self) -> float:
        """Return the largest component (the binding resource fraction)."""
        return max(getattr(self, kind) for kind in RESOURCE_KINDS)

    def max_kind(self) -> str:
        """Return the name of the largest component."""
        return max(RESOURCE_KINDS, key=lambda kind: getattr(self, kind))

    def total(self) -> float:
        """Return the sum of all components (useful for coarse sorting)."""
        return sum(getattr(self, kind) for kind in RESOURCE_KINDS)

    def utilization_of(self, capacity: "ResourceVector") -> float:
        """Return the maximum component-wise ratio ``self / capacity``.

        Components whose capacity is zero are ignored unless the usage is
        non-zero, in which case the ratio is infinite.
        """
        worst = 0.0
        for kind in RESOURCE_KINDS:
            usage = getattr(self, kind)
            cap = getattr(capacity, kind)
            if cap <= 0:
                if usage > FEASIBILITY_TOLERANCE:
                    return math.inf
                continue
            worst = max(worst, usage / cap)
        return worst

    def is_zero(self, tolerance: float = FEASIBILITY_TOLERANCE) -> bool:
        """Return True if every component is (numerically) zero."""
        return all(abs(getattr(self, kind)) <= tolerance for kind in RESOURCE_KINDS)

    def isclose(self, other: "ResourceVector", rel_tol: float = 1e-9, abs_tol: float = 1e-9) -> bool:
        """Return True if the two vectors are element-wise close."""
        return all(
            math.isclose(getattr(self, kind), getattr(other, kind), rel_tol=rel_tol, abs_tol=abs_tol)
            for kind in RESOURCE_KINDS
        )

    def __str__(self) -> str:
        parts = ", ".join(f"{kind.upper()}={getattr(self, kind):.2f}%" for kind in RESOURCE_KINDS)
        return f"ResourceVector({parts})"


def sum_resources(vectors: Iterable[ResourceVector]) -> ResourceVector:
    """Sum an iterable of resource vectors (empty sum is the zero vector)."""
    total = ResourceVector.zeros()
    for vector in vectors:
        total = total + vector
    return total
