"""Multi-FPGA platform model.

The paper targets an AWS F1 instance: a host CPU orchestrating up to eight
identical Xilinx UltraScale+ FPGAs, each with its own DRAM banks (Fig. 1).
The optimisation model only needs to know (i) how many identical FPGAs are
available, (ii) the per-FPGA resource cap ``R`` and (iii) the per-FPGA
bandwidth cap ``B``.  :class:`MultiFPGAPlatform` carries that information and
the derating knob ("resource constraint" sweep of Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .fpga import FPGADevice
from .resources import ResourceVector


@dataclass(frozen=True)
class MultiFPGAPlatform:
    """A cluster of identical FPGAs sharing a host CPU.

    Parameters
    ----------
    device:
        The FPGA device replicated across the platform.
    num_fpgas:
        Number of identical FPGAs (``F`` in the paper).
    resource_limit:
        Per-FPGA resource cap ``R``, percent of one device.  The paper sweeps
        this value (the "resource constraint") between roughly 40 % and 90 %.
    bandwidth_limit:
        Per-FPGA DRAM bandwidth cap ``B``, percent of one device's bandwidth.
    name:
        Optional human-readable platform name.
    """

    device: FPGADevice
    num_fpgas: int
    resource_limit: ResourceVector
    bandwidth_limit: float = 100.0
    name: str = "multi-fpga"

    def __post_init__(self) -> None:
        if self.num_fpgas < 1:
            raise ValueError(f"num_fpgas must be >= 1, got {self.num_fpgas}")
        if self.bandwidth_limit <= 0:
            raise ValueError("bandwidth_limit must be positive")
        if self.resource_limit.max_component() <= 0:
            raise ValueError("resource_limit must have at least one positive component")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def fpga_indices(self) -> range:
        """Indices of the FPGAs, 0-based (the paper uses 1-based ``f``)."""
        return range(self.num_fpgas)

    def total_resources(self) -> ResourceVector:
        """Aggregate resource capacity of the whole platform."""
        return self.resource_limit * self.num_fpgas

    def total_bandwidth(self) -> float:
        """Aggregate bandwidth capacity (percent-of-one-FPGA units)."""
        return self.bandwidth_limit * self.num_fpgas

    # ------------------------------------------------------------------ #
    # Constraint sweeps
    # ------------------------------------------------------------------ #
    def with_resource_limit(self, limit_percent: float) -> "MultiFPGAPlatform":
        """Return a copy with a uniform per-FPGA resource cap.

        This is the knob swept on the x-axis of Figures 2-5 ("Resource
        Constraint (%)"): the same percentage cap applied to every resource
        kind of every FPGA.
        """
        if limit_percent <= 0:
            raise ValueError("resource limit must be positive")
        return replace(self, resource_limit=ResourceVector.full(limit_percent))

    def with_bandwidth_limit(self, limit_percent: float) -> "MultiFPGAPlatform":
        """Return a copy with a different per-FPGA bandwidth cap."""
        if limit_percent <= 0:
            raise ValueError("bandwidth limit must be positive")
        return replace(self, bandwidth_limit=limit_percent)

    def with_num_fpgas(self, num_fpgas: int) -> "MultiFPGAPlatform":
        """Return a copy with a different FPGA count."""
        return replace(self, num_fpgas=num_fpgas)

    def scaled_resource_limit(self, extra_percent: float) -> ResourceVector:
        """Resource cap relaxed by ``extra_percent`` points (Algorithm 1's Rc).

        The heuristic allocator searches "in the vicinity of the initial
        resource constraint": ``Rc = R + i * delta`` while ``Rc < R + T``.
        The relaxed cap never exceeds the full device (100 %).
        """
        relaxed = {
            kind: min(100.0, value + extra_percent)
            for kind, value in self.resource_limit.as_dict().items()
        }
        return ResourceVector.from_mapping(relaxed)

    def describe(self) -> str:
        """One-line human readable description."""
        return (
            f"{self.name}: {self.num_fpgas} x {self.device.name}, "
            f"R={self.resource_limit.max_component():.1f}%, "
            f"B={self.bandwidth_limit:.1f}%"
        )
