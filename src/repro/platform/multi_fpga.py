"""Multi-FPGA platform model, homogeneous or heterogeneous.

The paper targets an AWS F1 instance: a host CPU orchestrating up to eight
identical Xilinx UltraScale+ FPGAs, each with its own DRAM banks (Fig. 1).
Real deployments are rarely that uniform -- mixed-generation fleets and
multi-die devices with uneven per-die capacity are the norm -- so the model
generalises: a platform is a list of per-FPGA ``(device, resource cap,
bandwidth cap)`` entries grouped into :class:`DeviceClass` *device classes*.
FPGAs inside one class are interchangeable; FPGAs of different classes are
not.  The homogeneous case is exactly one class, and every legacy constructor,
accessor and serialised document keeps working unchanged for it.

All capacities are expressed in percent of the platform's *reference device*
(the device of the first class), matching the workload tables: a kernel's
per-CU cost is a percentage of that reference device, and a smaller FPGA in
the fleet is modelled as a class whose resource cap is the smaller device's
capacity expressed as a percentage of the reference (see
:func:`repro.platform.presets.relative_capacity`).

The optimisation model reads the platform through the per-FPGA expansion
(:meth:`MultiFPGAPlatform.fpga_resource_limits` /
:meth:`~MultiFPGAPlatform.fpga_bandwidth_limits`, in class-major order) plus
the class grouping (:meth:`~MultiFPGAPlatform.fpga_class_indices`), which the
solvers use to restrict symmetry breaking to interchangeable FPGAs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .fpga import FPGADevice
from .resources import ResourceVector


@dataclass(frozen=True)
class DeviceClass:
    """A group of identical FPGAs within a (possibly mixed) platform.

    Parameters
    ----------
    device:
        The FPGA device of this class.  Descriptive for reporting and the
        HLS cost model; the optimisation model reads only the percentage
        caps below.
    count:
        Number of identical FPGAs in this class.
    resource_limit:
        Per-FPGA resource cap, in percent of the platform's *reference
        device* (the device of the platform's first class).
    bandwidth_limit:
        Per-FPGA DRAM bandwidth cap, percent of the reference device's
        bandwidth.
    """

    device: FPGADevice
    count: int
    resource_limit: ResourceVector
    bandwidth_limit: float = 100.0

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"device class count must be >= 1, got {self.count}")
        if self.bandwidth_limit <= 0:
            raise ValueError("bandwidth_limit must be positive")
        if self.resource_limit.max_component() <= 0:
            raise ValueError("resource_limit must have at least one positive component")

    def describe(self) -> str:
        """One-line human readable description of the class."""
        return (
            f"{self.count} x {self.device.name} "
            f"(R={self.resource_limit.max_component():.1f}%, "
            f"B={self.bandwidth_limit:.1f}%)"
        )


@dataclass(frozen=True)
class MultiFPGAPlatform:
    """A cluster of FPGAs sharing a host CPU, grouped into device classes.

    The legacy homogeneous constructor is unchanged: ``device``,
    ``num_fpgas``, ``resource_limit`` and ``bandwidth_limit`` describe ``F``
    identical FPGAs and ``classes`` stays ``None``.  Heterogeneous platforms
    are built with :meth:`from_classes`; their legacy fields mirror the
    *first* class (the reference device) and ``classes`` carries the full
    fleet.  A single-class :meth:`from_classes` platform is normalised onto
    the legacy representation, so it compares equal to the equivalent
    homogeneous platform.

    Parameters
    ----------
    device:
        The reference FPGA device (the device of the first class).
    num_fpgas:
        Total number of FPGAs over all classes (``F`` in the paper).
    resource_limit:
        Per-FPGA resource cap ``R`` of the first class, percent of the
        reference device.  The paper sweeps this value (the "resource
        constraint") between roughly 40 % and 90 %.
    bandwidth_limit:
        Per-FPGA DRAM bandwidth cap ``B`` of the first class, percent of the
        reference device's bandwidth.
    name:
        Optional human-readable platform name.
    classes:
        ``None`` for a homogeneous platform; otherwise the full tuple of
        device classes (two or more entries), whose counts sum to
        ``num_fpgas``.
    """

    device: FPGADevice
    num_fpgas: int
    resource_limit: ResourceVector
    bandwidth_limit: float = 100.0
    name: str = "multi-fpga"
    classes: "tuple[DeviceClass, ...] | None" = None

    def __post_init__(self) -> None:
        if self.num_fpgas < 1:
            raise ValueError(f"num_fpgas must be >= 1, got {self.num_fpgas}")
        if self.bandwidth_limit <= 0:
            raise ValueError("bandwidth_limit must be positive")
        if self.resource_limit.max_component() <= 0:
            raise ValueError("resource_limit must have at least one positive component")
        if self.classes is not None:
            classes = tuple(self.classes)
            if len(classes) < 2:
                raise ValueError(
                    "classes must hold two or more device classes; "
                    "single-class platforms use the homogeneous constructor"
                )
            total = sum(device_class.count for device_class in classes)
            if total != self.num_fpgas:
                raise ValueError(
                    f"class counts sum to {total}, but num_fpgas is {self.num_fpgas}"
                )
            first = classes[0]
            if (
                first.device != self.device
                or first.resource_limit != self.resource_limit
                or first.bandwidth_limit != self.bandwidth_limit
            ):
                raise ValueError(
                    "the platform's legacy fields must mirror the first device class; "
                    "build heterogeneous platforms with MultiFPGAPlatform.from_classes"
                )
            object.__setattr__(self, "classes", classes)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_classes(
        cls, classes: "tuple[DeviceClass, ...] | list[DeviceClass]", name: str = "multi-fpga"
    ) -> "MultiFPGAPlatform":
        """Build a platform from a list of device classes.

        A single class yields the equivalent homogeneous platform (and
        compares equal to one built with the legacy constructor); two or
        more classes yield a heterogeneous platform whose FPGAs are indexed
        class-major (every FPGA of class 0 first, then class 1, ...).
        """
        classes = tuple(classes)
        if not classes:
            raise ValueError("a platform needs at least one device class")
        first = classes[0]
        return cls(
            device=first.device,
            num_fpgas=sum(device_class.count for device_class in classes),
            resource_limit=first.resource_limit,
            bandwidth_limit=first.bandwidth_limit,
            name=name,
            classes=classes if len(classes) > 1 else None,
        )

    # ------------------------------------------------------------------ #
    # Device-class view
    # ------------------------------------------------------------------ #
    @property
    def is_homogeneous(self) -> bool:
        """True when every FPGA is identical (exactly one device class)."""
        return self.classes is None

    @property
    def device_classes(self) -> tuple[DeviceClass, ...]:
        """The platform's device classes (one synthesised class when homogeneous)."""
        if self.classes is not None:
            return self.classes
        return (
            DeviceClass(
                device=self.device,
                count=self.num_fpgas,
                resource_limit=self.resource_limit,
                bandwidth_limit=self.bandwidth_limit,
            ),
        )

    def fpga_class_indices(self) -> tuple[int, ...]:
        """Class index of every FPGA, in platform (class-major) FPGA order."""
        indices: list[int] = []
        for class_index, device_class in enumerate(self.device_classes):
            indices.extend([class_index] * device_class.count)
        return tuple(indices)

    def class_of_fpga(self, fpga_index: int) -> DeviceClass:
        """The device class hosting one FPGA."""
        if not 0 <= fpga_index < self.num_fpgas:
            raise IndexError(f"FPGA index {fpga_index} out of range 0..{self.num_fpgas - 1}")
        if self.classes is None:
            return self.device_classes[0]
        remaining = fpga_index
        for device_class in self.classes:
            if remaining < device_class.count:
                return device_class
            remaining -= device_class.count
        raise IndexError(fpga_index)  # pragma: no cover - guarded above

    # ------------------------------------------------------------------ #
    # Per-FPGA expansion
    # ------------------------------------------------------------------ #
    def fpga_resource_limits(self) -> tuple[ResourceVector, ...]:
        """Per-FPGA resource caps in platform FPGA order."""
        if self.classes is None:
            return (self.resource_limit,) * self.num_fpgas
        limits: list[ResourceVector] = []
        for device_class in self.classes:
            limits.extend([device_class.resource_limit] * device_class.count)
        return tuple(limits)

    def fpga_bandwidth_limits(self) -> tuple[float, ...]:
        """Per-FPGA bandwidth caps in platform FPGA order."""
        if self.classes is None:
            return (self.bandwidth_limit,) * self.num_fpgas
        limits: list[float] = []
        for device_class in self.classes:
            limits.extend([device_class.bandwidth_limit] * device_class.count)
        return tuple(limits)

    def fpga_resource_limit(self, fpga_index: int) -> ResourceVector:
        """Resource cap of one FPGA."""
        return self.class_of_fpga(fpga_index).resource_limit

    def fpga_bandwidth_limit(self, fpga_index: int) -> float:
        """Bandwidth cap of one FPGA."""
        return self.class_of_fpga(fpga_index).bandwidth_limit

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def fpga_indices(self) -> range:
        """Indices of the FPGAs, 0-based (the paper uses 1-based ``f``)."""
        return range(self.num_fpgas)

    def total_resources(self) -> ResourceVector:
        """Aggregate resource capacity of the whole platform."""
        if self.classes is None:
            return self.resource_limit * self.num_fpgas
        total = ResourceVector.zeros()
        for device_class in self.classes:
            total = total + device_class.resource_limit * device_class.count
        return total

    def total_bandwidth(self) -> float:
        """Aggregate bandwidth capacity (percent-of-reference-FPGA units)."""
        if self.classes is None:
            return self.bandwidth_limit * self.num_fpgas
        return sum(
            device_class.bandwidth_limit * device_class.count for device_class in self.classes
        )

    # ------------------------------------------------------------------ #
    # Constraint sweeps
    # ------------------------------------------------------------------ #
    def with_resource_limit(
        self, limit_percent: float, preserve_skew: bool = False
    ) -> "MultiFPGAPlatform":
        """Return a copy with the per-FPGA resource cap set to ``limit_percent``.

        This is the knob swept on the x-axis of Figures 2-5 ("Resource
        Constraint (%)").  By default the same percentage cap is applied to
        every resource kind of every FPGA -- on a heterogeneous platform this
        flattens any per-class skew.  With ``preserve_skew=True`` the cap is
        applied to the *reference class* (the first class) and every other
        class is scaled by its existing per-kind ratio to the reference, so
        the resource-constraint sweeps of Figures 3-5 run unchanged over
        heterogeneous presets: the sweep moves the whole fleet's capacity
        while the class gap stays proportionally intact.
        """
        if limit_percent <= 0:
            raise ValueError("resource limit must be positive")
        uniform = ResourceVector.full(limit_percent)
        if self.classes is None:
            return replace(self, resource_limit=uniform)
        if not preserve_skew:
            classes = tuple(
                replace(device_class, resource_limit=uniform) for device_class in self.classes
            )
            return replace(self, resource_limit=uniform, classes=classes)
        reference = self.classes[0].resource_limit.as_dict()
        classes = tuple(
            replace(
                device_class,
                resource_limit=ResourceVector.from_mapping(
                    {
                        kind: (
                            limit_percent * value / reference[kind]
                            if reference[kind] > 0
                            else limit_percent
                        )
                        for kind, value in device_class.resource_limit.as_dict().items()
                    }
                ),
            )
            for device_class in self.classes
        )
        return replace(self, resource_limit=uniform, classes=classes)

    def with_bandwidth_limit(self, limit_percent: float) -> "MultiFPGAPlatform":
        """Return a copy with a uniform per-FPGA bandwidth cap on every class."""
        if limit_percent <= 0:
            raise ValueError("bandwidth limit must be positive")
        if self.classes is None:
            return replace(self, bandwidth_limit=limit_percent)
        classes = tuple(
            replace(device_class, bandwidth_limit=limit_percent)
            for device_class in self.classes
        )
        return replace(self, bandwidth_limit=limit_percent, classes=classes)

    def with_num_fpgas(self, num_fpgas: int) -> "MultiFPGAPlatform":
        """Return a copy with a different FPGA count (homogeneous platforms only).

        Heterogeneous platforms have no single count to scale; rebuild them
        from classes instead.
        """
        if self.classes is not None:
            raise ValueError(
                "with_num_fpgas is ambiguous on a heterogeneous platform; "
                "rebuild it with MultiFPGAPlatform.from_classes"
            )
        return replace(self, num_fpgas=num_fpgas)

    def scaled_resource_limit(self, extra_percent: float) -> ResourceVector:
        """First-class resource cap relaxed by ``extra_percent`` points.

        Algorithm 1 searches "in the vicinity of the initial resource
        constraint": ``Rc = R + i * delta`` while ``Rc < R + T``; the relaxed
        cap never exceeds the full device (100 %).  On a heterogeneous
        platform this describes the first class only -- the allocator uses
        :meth:`fpga_scaled_resource_limits` for the whole fleet.
        """
        return self._relaxed(self.resource_limit, extra_percent)

    def fpga_scaled_resource_limits(self, extra_percent: float) -> tuple[ResourceVector, ...]:
        """Per-FPGA resource caps relaxed by ``extra_percent`` points each."""
        return tuple(
            self._relaxed(limit, extra_percent) for limit in self.fpga_resource_limits()
        )

    @staticmethod
    def _relaxed(limit: ResourceVector, extra_percent: float) -> ResourceVector:
        relaxed = {
            kind: min(100.0, value + extra_percent) for kind, value in limit.as_dict().items()
        }
        return ResourceVector.from_mapping(relaxed)

    def describe(self) -> str:
        """One-line human readable description."""
        if self.classes is None:
            return (
                f"{self.name}: {self.num_fpgas} x {self.device.name}, "
                f"R={self.resource_limit.max_component():.1f}%, "
                f"B={self.bandwidth_limit:.1f}%"
            )
        parts = " + ".join(device_class.describe() for device_class in self.classes)
        return f"{self.name}: {parts}"
