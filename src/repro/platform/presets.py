"""Platform presets, homogeneous and heterogeneous.

The paper evaluates on AWS F1 instances with up to eight Xilinx Virtex
UltraScale+ VU9P FPGAs, each attached to four DDR4 channels (Fig. 1).  The
:func:`aws_f1` preset models that platform; per-CU costs in the workload
tables are already expressed as percentages of one such device, so the
absolute counts matter only for the HLS characterisation cost model and for
reporting.

Two heterogeneous presets model the mixed fleets the generalised platform
abstraction exists for:

* :func:`mixed_fleet` -- VU9P boards plus smaller KU115 boards, the
  "multi-generation cluster" case.  The smaller device's capacity is
  expressed as a percentage of the reference VU9P via
  :func:`relative_capacity`, so the workload tables keep their meaning.
* :func:`derated_die_platform` -- one device model with a subset of
  full-capacity dies and a subset of derated dies (floorplan-constrained
  SLRs), the "multi-die with uneven per-die capacity" case.
"""

from __future__ import annotations

from .fpga import FPGADevice
from .multi_fpga import DeviceClass, MultiFPGAPlatform
from .resources import ResourceVector

#: Xilinx Virtex UltraScale+ VU9P, the FPGA used on AWS F1 instances.
#: Counts are the publicly documented device totals; bandwidth is 4 x DDR4-2400
#: 64-bit channels (~19.2 GB/s each).
XCVU9P = FPGADevice(
    name="xcvu9p",
    bram_blocks=2160,
    dsp_slices=6840,
    luts=1_182_240,
    ffs=2_364_480,
    dram_bandwidth_gbps=76.8,
    dram_banks=4,
)

#: Xilinx Kintex UltraScale KU115, a common smaller acceleration device
#: (e.g. the KCU1500 board): roughly half the VU9P's BRAM/DSP and a quarter
#: of its DRAM channels' bandwidth in this board configuration.
XCKU115 = FPGADevice(
    name="xcku115",
    bram_blocks=2160,
    dsp_slices=5520,
    luts=663_360,
    ffs=1_326_720,
    dram_bandwidth_gbps=38.4,
    dram_banks=2,
)


def relative_capacity(device: FPGADevice, reference: FPGADevice = XCVU9P) -> ResourceVector:
    """Full capacity of ``device`` as a percentage of ``reference``.

    The optimisation model expresses every quantity in percent of one
    reference device (the workload tables of the paper), so a different
    device joins a platform as a class whose resource cap is its capacity
    relative to that reference -- capped at 100 % because per-CU costs are
    only characterised up to one full reference device.
    """
    reference_counts = reference.absolute_counts()
    device_counts = device.absolute_counts()
    return ResourceVector.from_mapping(
        {
            kind: min(100.0, 100.0 * device_counts[kind] / reference_counts[kind])
            for kind in reference_counts
        }
    )


def relative_bandwidth(device: FPGADevice, reference: FPGADevice = XCVU9P) -> float:
    """DRAM bandwidth of ``device`` as a percentage of ``reference``."""
    return min(100.0, 100.0 * device.dram_bandwidth_gbps / reference.dram_bandwidth_gbps)


def aws_f1(
    num_fpgas: int = 8,
    resource_limit_percent: float = 100.0,
    bandwidth_limit_percent: float = 100.0,
) -> MultiFPGAPlatform:
    """Return an AWS F1 style platform with ``num_fpgas`` VU9P devices.

    Parameters
    ----------
    num_fpgas:
        Number of FPGAs in the instance.  The paper uses 2, 4 and 8
        (f1.2xlarge has 1, f1.4xlarge has 2, f1.16xlarge has 8).
    resource_limit_percent:
        Per-FPGA resource cap ``R`` applied uniformly to all resource kinds.
    bandwidth_limit_percent:
        Per-FPGA DRAM bandwidth cap ``B``.
    """
    if not 1 <= num_fpgas <= 8:
        raise ValueError(f"AWS F1 instances provide 1 to 8 FPGAs, got {num_fpgas}")
    return MultiFPGAPlatform(
        device=XCVU9P,
        num_fpgas=num_fpgas,
        resource_limit=ResourceVector.full(resource_limit_percent),
        bandwidth_limit=bandwidth_limit_percent,
        name=f"aws-f1-{num_fpgas}x",
    )


def generic_platform(
    num_fpgas: int,
    resource_limit_percent: float = 100.0,
    bandwidth_limit_percent: float = 100.0,
    device: FPGADevice = XCVU9P,
    name: str = "generic",
) -> MultiFPGAPlatform:
    """Return a platform with ``num_fpgas`` copies of an arbitrary device."""
    return MultiFPGAPlatform(
        device=device,
        num_fpgas=num_fpgas,
        resource_limit=ResourceVector.full(resource_limit_percent),
        bandwidth_limit=bandwidth_limit_percent,
        name=name,
    )


def mixed_fleet(
    num_large: int = 4,
    num_small: int = 4,
    resource_limit_percent: float = 100.0,
    bandwidth_limit_percent: float = 100.0,
    small_device: FPGADevice = XCKU115,
) -> MultiFPGAPlatform:
    """A mixed fleet: VU9P boards plus smaller boards, two device classes.

    The resource cap of the small class is the small device's capacity
    relative to the VU9P, scaled by the same ``resource_limit_percent``
    sweep knob as the large class (the "resource constraint" of Section 4
    applies fleet-wide as a fraction of each device).
    """
    if num_large < 1 or num_small < 1:
        raise ValueError("a mixed fleet needs at least one FPGA of each class")
    if not 0 < resource_limit_percent <= 100.0:
        raise ValueError("resource_limit_percent must be in (0, 100]")
    scale = resource_limit_percent / 100.0
    bandwidth_scale = bandwidth_limit_percent / 100.0
    small_resources = relative_capacity(small_device) * scale
    small_bandwidth = relative_bandwidth(small_device) * bandwidth_scale
    classes = (
        DeviceClass(
            device=XCVU9P,
            count=num_large,
            resource_limit=ResourceVector.full(resource_limit_percent),
            bandwidth_limit=bandwidth_limit_percent,
        ),
        DeviceClass(
            device=small_device,
            count=num_small,
            resource_limit=small_resources,
            bandwidth_limit=small_bandwidth,
        ),
    )
    return MultiFPGAPlatform.from_classes(
        classes, name=f"mixed-{num_large}x{XCVU9P.name}+{num_small}x{small_device.name}"
    )


def derated_die_platform(
    num_full: int = 4,
    num_derated: int = 4,
    resource_limit_percent: float = 100.0,
    derate_percent: float = 80.0,
    bandwidth_limit_percent: float = 100.0,
) -> MultiFPGAPlatform:
    """A multi-die model: full-capacity dies plus floorplan-derated dies.

    Multi-die HLS floorplanning leaves some SLRs with less routable area
    (crossing nets, shell logic); the derated class caps those dies at
    ``derate_percent`` of the swept resource constraint.  Bandwidth is not
    derated -- every die keeps its DRAM channels.
    """
    if num_full < 1 or num_derated < 1:
        raise ValueError("the derated-die model needs at least one die of each class")
    if not 0 < derate_percent < 100.0:
        raise ValueError("derate_percent must be in (0, 100)")
    derated_limit = resource_limit_percent * derate_percent / 100.0
    classes = (
        DeviceClass(
            device=XCVU9P,
            count=num_full,
            resource_limit=ResourceVector.full(resource_limit_percent),
            bandwidth_limit=bandwidth_limit_percent,
        ),
        DeviceClass(
            device=XCVU9P,
            count=num_derated,
            resource_limit=ResourceVector.full(derated_limit),
            bandwidth_limit=bandwidth_limit_percent,
        ),
    )
    return MultiFPGAPlatform.from_classes(
        classes, name=f"derated-{num_full}+{num_derated}@{derate_percent:.0f}%"
    )
