"""Platform presets.

The paper evaluates on AWS F1 instances with up to eight Xilinx Virtex
UltraScale+ VU9P FPGAs, each attached to four DDR4 channels (Fig. 1).  The
preset below models that platform; per-CU costs in the workload tables are
already expressed as percentages of one such device, so the absolute counts
matter only for the HLS characterisation cost model and for reporting.
"""

from __future__ import annotations

from .fpga import FPGADevice
from .multi_fpga import MultiFPGAPlatform
from .resources import ResourceVector

#: Xilinx Virtex UltraScale+ VU9P, the FPGA used on AWS F1 instances.
#: Counts are the publicly documented device totals; bandwidth is 4 x DDR4-2400
#: 64-bit channels (~19.2 GB/s each).
XCVU9P = FPGADevice(
    name="xcvu9p",
    bram_blocks=2160,
    dsp_slices=6840,
    luts=1_182_240,
    ffs=2_364_480,
    dram_bandwidth_gbps=76.8,
    dram_banks=4,
)


def aws_f1(
    num_fpgas: int = 8,
    resource_limit_percent: float = 100.0,
    bandwidth_limit_percent: float = 100.0,
) -> MultiFPGAPlatform:
    """Return an AWS F1 style platform with ``num_fpgas`` VU9P devices.

    Parameters
    ----------
    num_fpgas:
        Number of FPGAs in the instance.  The paper uses 2, 4 and 8
        (f1.2xlarge has 1, f1.4xlarge has 2, f1.16xlarge has 8).
    resource_limit_percent:
        Per-FPGA resource cap ``R`` applied uniformly to all resource kinds.
    bandwidth_limit_percent:
        Per-FPGA DRAM bandwidth cap ``B``.
    """
    if not 1 <= num_fpgas <= 8:
        raise ValueError(f"AWS F1 instances provide 1 to 8 FPGAs, got {num_fpgas}")
    return MultiFPGAPlatform(
        device=XCVU9P,
        num_fpgas=num_fpgas,
        resource_limit=ResourceVector.full(resource_limit_percent),
        bandwidth_limit=bandwidth_limit_percent,
        name=f"aws-f1-{num_fpgas}x",
    )


def generic_platform(
    num_fpgas: int,
    resource_limit_percent: float = 100.0,
    bandwidth_limit_percent: float = 100.0,
    device: FPGADevice = XCVU9P,
    name: str = "generic",
) -> MultiFPGAPlatform:
    """Return a platform with ``num_fpgas`` copies of an arbitrary device."""
    return MultiFPGAPlatform(
        device=device,
        num_fpgas=num_fpgas,
        resource_limit=ResourceVector.full(resource_limit_percent),
        bandwidth_limit=bandwidth_limit_percent,
        name=name,
    )
