"""Analytic HLS characterisation (offline substitute for AWS F1 profiling)."""

from .cost_model import (
    CUDesignPoint,
    FIXED16,
    FLOAT32,
    HLSCostModel,
    Precision,
    characterize_alexnet,
    characterize_vgg16,
)

__all__ = [
    "CUDesignPoint",
    "FIXED16",
    "FLOAT32",
    "HLSCostModel",
    "Precision",
    "characterize_alexnet",
    "characterize_vgg16",
]
