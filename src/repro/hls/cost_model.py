"""Analytic HLS characterisation cost model.

The paper obtains each kernel's per-CU cost (resource %, bandwidth %, WCET)
by synthesising CU variants with Xilinx SDAccel and running them on an AWS F1
instance.  Neither the toolchain nor the hardware is available offline, so
this module provides the closest synthetic equivalent: an analytic model of a
tiled, unrolled convolution/pooling/normalisation accelerator in the style of
Zhang et al. (FPGA'15), the design the paper's kernels follow.

The model exercises the same code path the measured tables exercise -- it
produces a :class:`~repro.workloads.kernel.Kernel` per layer, so new networks
can be characterised and allocated without touching the optimisation code.
The calibration constants were chosen so that AlexNet/VGG characterisations
land in the same range as Tables 2-3; exact agreement is neither possible nor
required (the optimisation consumes whatever numbers the characterisation
provides).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..platform.fpga import FPGADevice
from ..platform.presets import XCVU9P
from ..platform.resources import ResourceVector
from ..workloads.cnn_layers import ConvLayer, Layer, NormLayer, PoolLayer
from ..workloads.kernel import Kernel
from ..workloads.pipeline import Pipeline


@dataclass(frozen=True)
class Precision:
    """Arithmetic precision of a CU datapath."""

    name: str
    bytes_per_element: int
    dsp_per_mac: float
    lut_per_mac: float
    #: Pipeline clock achievable at this precision (MHz); fixed point closes
    #: timing more easily than single-precision floating point.
    clock_mhz: float


FLOAT32 = Precision(name="fp32", bytes_per_element=4, dsp_per_mac=5.0, lut_per_mac=250.0, clock_mhz=220.0)
FIXED16 = Precision(name="fx16", bytes_per_element=2, dsp_per_mac=1.0, lut_per_mac=90.0, clock_mhz=280.0)


@dataclass(frozen=True)
class CUDesignPoint:
    """One compute-unit implementation choice.

    Parameters
    ----------
    unroll_out:
        Output-channel unroll factor (parallel MAC lanes over output maps).
    unroll_in:
        Input-channel unroll factor.
    tile_size:
        Spatial tile edge kept in on-chip buffers.
    """

    unroll_out: int = 8
    unroll_in: int = 8
    tile_size: int = 14

    def __post_init__(self) -> None:
        for attr in ("unroll_out", "unroll_in", "tile_size"):
            if getattr(self, attr) < 1:
                raise ValueError(f"{attr} must be >= 1")

    @property
    def mac_lanes(self) -> int:
        return self.unroll_out * self.unroll_in


@dataclass(frozen=True)
class HLSCostModel:
    """Estimate per-CU resources, bandwidth and latency for CNN layers."""

    device: FPGADevice = XCVU9P
    precision: Precision = FIXED16
    #: Fraction of the theoretical MAC throughput actually sustained (pipeline
    #: stalls, edge tiles, memory waits).
    efficiency: float = 0.65
    #: BRAM blocks (18 kib) consumed per KiB of on-chip buffer.
    bram_blocks_per_kib: float = 0.6
    #: Fixed per-CU control/infrastructure overheads.
    control_luts: int = 12_000
    control_brams: int = 12

    # ------------------------------------------------------------------ #
    # Per-layer characterisation
    # ------------------------------------------------------------------ #
    def characterize_layer(self, layer: Layer, design: CUDesignPoint = CUDesignPoint()) -> Kernel:
        """Return the single-CU characterisation of one layer."""
        if isinstance(layer, ConvLayer):
            return self._characterize_conv(layer, design)
        if isinstance(layer, PoolLayer):
            return self._characterize_pool(layer, design)
        if isinstance(layer, NormLayer):
            return self._characterize_norm(layer, design)
        raise TypeError(f"unsupported layer type: {type(layer).__name__}")

    def characterize_network(
        self, name: str, layers: tuple[Layer, ...], design: CUDesignPoint = CUDesignPoint()
    ) -> Pipeline:
        """Characterise a whole network into a pipeline of kernels."""
        return Pipeline(name=name, kernels=[self.characterize_layer(layer, design) for layer in layers])

    # ------------------------------------------------------------------ #
    # Layer-specific models
    # ------------------------------------------------------------------ #
    def _characterize_conv(self, layer: ConvLayer, design: CUDesignPoint) -> Kernel:
        lanes = design.mac_lanes
        dsp = lanes * self.precision.dsp_per_mac
        luts = lanes * self.precision.lut_per_mac + self.control_luts

        # On-chip buffers: input tile, output tile, weight slice (double buffered).
        element_bytes = self.precision.bytes_per_element
        tile_in = design.tile_size**2 * design.unroll_in * element_bytes
        tile_out = design.tile_size**2 * design.unroll_out * element_bytes
        weights = layer.kernel_size**2 * design.unroll_in * design.unroll_out * element_bytes
        buffer_kib = 2.0 * (tile_in + tile_out + weights) / 1024.0
        brams = buffer_kib * self.bram_blocks_per_kib + self.control_brams

        cycles = layer.macs / (lanes * self.efficiency)
        wcet_ms = cycles / (self.precision.clock_mhz * 1e3)

        # Off-chip traffic per inference: inputs + outputs + weights (with the
        # tiling reuse of the paper, weights stream once, feature maps once).
        traffic_bytes = (
            layer.input_elements + layer.output_elements + layer.weight_count
        ) * element_bytes
        bandwidth_percent = self._bandwidth_percent(traffic_bytes, wcet_ms)

        return Kernel(
            name=layer.name,
            resources=self._resource_percent(brams, dsp, luts),
            bandwidth=bandwidth_percent,
            wcet_ms=wcet_ms,
        )

    def _characterize_pool(self, layer: PoolLayer, design: CUDesignPoint) -> Kernel:
        lanes = max(1, design.unroll_out // 2)
        dsp = 0.0  # comparisons map to LUTs, not DSP slices
        luts = lanes * 40.0 + self.control_luts / 2
        element_bytes = self.precision.bytes_per_element
        buffer_kib = 2.0 * layer.kernel_size * layer.in_size * lanes * element_bytes / 1024.0
        brams = buffer_kib * self.bram_blocks_per_kib + 1

        cycles = layer.macs / (lanes * self.efficiency)
        wcet_ms = cycles / (self.precision.clock_mhz * 1e3)
        traffic_bytes = (layer.input_elements + layer.output_elements) * element_bytes
        bandwidth_percent = self._bandwidth_percent(traffic_bytes, wcet_ms)
        return Kernel(
            name=layer.name,
            resources=self._resource_percent(brams, dsp, luts),
            bandwidth=bandwidth_percent,
            wcet_ms=wcet_ms,
        )

    def _characterize_norm(self, layer: NormLayer, design: CUDesignPoint) -> Kernel:
        lanes = max(1, design.unroll_out // 2)
        dsp = lanes * self.precision.dsp_per_mac * 0.5
        luts = lanes * 60.0 + self.control_luts / 2
        element_bytes = self.precision.bytes_per_element
        buffer_kib = 2.0 * layer.window * layer.in_size * lanes * element_bytes / 1024.0
        brams = buffer_kib * self.bram_blocks_per_kib + 2

        cycles = layer.macs / (lanes * self.efficiency)
        wcet_ms = cycles / (self.precision.clock_mhz * 1e3)
        traffic_bytes = (layer.input_elements + layer.output_elements) * element_bytes
        bandwidth_percent = self._bandwidth_percent(traffic_bytes, wcet_ms)
        return Kernel(
            name=layer.name,
            resources=self._resource_percent(brams, dsp, luts),
            bandwidth=bandwidth_percent,
            wcet_ms=wcet_ms,
        )

    # ------------------------------------------------------------------ #
    # Unit conversions
    # ------------------------------------------------------------------ #
    def _resource_percent(self, brams: float, dsp: float, luts: float) -> ResourceVector:
        counts = self.device.absolute_counts()
        return ResourceVector(
            bram=min(100.0, 100.0 * brams / counts["bram"]),
            dsp=min(100.0, 100.0 * dsp / counts["dsp"]),
            lut=min(100.0, 100.0 * luts / counts["lut"]),
            ff=min(100.0, 100.0 * luts * 1.3 / counts["ff"]),
        )

    def _bandwidth_percent(self, traffic_bytes: float, wcet_ms: float) -> float:
        seconds = wcet_ms / 1e3
        gbps = traffic_bytes / seconds / 1e9
        return min(100.0, self.device.bandwidth_percent(gbps))


def characterize_alexnet(precision: Precision = FIXED16) -> Pipeline:
    """Characterise AlexNet with the analytic cost model (synthetic Table 2)."""
    from ..workloads.cnn_layers import alexnet_layers

    model = HLSCostModel(precision=precision)
    suffix = "16" if precision is FIXED16 else "32"
    return model.characterize_network(f"alex-{suffix}-modeled", alexnet_layers())


def characterize_vgg16(precision: Precision = FIXED16) -> Pipeline:
    """Characterise VGG-16 with the analytic cost model (synthetic Table 3)."""
    from ..workloads.cnn_layers import vgg16_layers

    model = HLSCostModel(precision=precision)
    return model.characterize_network("vgg-16-modeled", vgg16_layers())
