"""Kernel model.

A *kernel* is one stage of the application's task-level pipeline (one CNN
layer, or a fused group of layers).  The optimisation model only needs its
single-CU characterisation: the FPGA resources one compute unit consumes
(``Rk``), the DRAM bandwidth it consumes (``Bk``) and its worst-case execution
time with one CU (``WCETk``).  These are exactly the columns of Tables 2 and 3
in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..platform.resources import ResourceVector


@dataclass(frozen=True)
class Kernel:
    """Single-CU characterisation of one pipeline kernel.

    Parameters
    ----------
    name:
        Kernel name (e.g. ``"CONV1"``).
    resources:
        Resources used by one compute unit of this kernel, percent of one
        FPGA (``Rk``).
    bandwidth:
        DRAM bandwidth used by one compute unit, percent of one FPGA's
        bandwidth (``Bk``).
    wcet_ms:
        Worst-case execution time of the kernel with a single CU, in
        milliseconds (``WCETk``).
    max_cus:
        Optional upper bound on the number of CUs that make sense for this
        kernel (e.g. limited by the amount of exploitable data parallelism).
        ``None`` means unbounded.
    """

    name: str
    resources: ResourceVector
    bandwidth: float
    wcet_ms: float
    max_cus: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("kernel name must be non-empty")
        if self.bandwidth < 0 or not math.isfinite(self.bandwidth):
            raise ValueError(f"bandwidth must be finite and >= 0, got {self.bandwidth}")
        if self.wcet_ms <= 0 or not math.isfinite(self.wcet_ms):
            raise ValueError(f"wcet_ms must be finite and > 0, got {self.wcet_ms}")
        if self.max_cus is not None and self.max_cus < 1:
            raise ValueError("max_cus must be >= 1 when given")

    # ------------------------------------------------------------------ #
    # Derived quantities used by the optimisation model
    # ------------------------------------------------------------------ #
    def execution_time(self, num_cus: float) -> float:
        """Execution time with ``num_cus`` compute units (eq. 1 of the paper).

        The model assumes perfect CU-level scaling: ``ET = WCET / N``.
        ``num_cus`` may be fractional during the GP relaxation.
        """
        if num_cus <= 0:
            raise ValueError("num_cus must be positive")
        return self.wcet_ms / num_cus

    def cus_for_latency(self, latency_ms: float) -> float:
        """Minimum (fractional) CU count achieving ``latency_ms`` or better."""
        if latency_ms <= 0:
            raise ValueError("latency_ms must be positive")
        return self.wcet_ms / latency_ms

    def resource_demand(self, num_cus: float) -> ResourceVector:
        """Total resources consumed by ``num_cus`` CUs of this kernel."""
        if num_cus < 0:
            raise ValueError("num_cus must be non-negative")
        return self.resources * num_cus

    def bandwidth_demand(self, num_cus: float) -> float:
        """Total DRAM bandwidth consumed by ``num_cus`` CUs of this kernel."""
        if num_cus < 0:
            raise ValueError("num_cus must be non-negative")
        return self.bandwidth * num_cus

    def max_cus_per_fpga(self, capacity: ResourceVector, bandwidth_capacity: float) -> int:
        """Largest integer CU count of this kernel that fits in one FPGA."""
        limit = math.inf
        for kind, usage in self.resources:
            if usage > 0:
                limit = min(limit, capacity[kind] / usage)
        if self.bandwidth > 0:
            limit = min(limit, bandwidth_capacity / self.bandwidth)
        if math.isinf(limit):
            return self.max_cus if self.max_cus is not None else 10**9
        count = int(math.floor(limit + 1e-9))
        if self.max_cus is not None:
            count = min(count, self.max_cus)
        return max(0, count)

    def with_scaled_wcet(self, factor: float) -> "Kernel":
        """Return a copy with the WCET scaled by ``factor`` (>0)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(self, wcet_ms=self.wcet_ms * factor)

    def critical_resource(self) -> str:
        """Name of this kernel's most demanded resource kind."""
        return self.resources.max_kind()

    def __str__(self) -> str:
        return (
            f"Kernel({self.name}: R={self.resources.max_component():.2f}% "
            f"[{self.critical_resource()}], B={self.bandwidth:.2f}%, "
            f"WCET={self.wcet_ms:.3f} ms)"
        )
