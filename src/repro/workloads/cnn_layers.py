"""CNN layer geometry.

The paper's flow starts "from CNN models which have already been partitioned
into kernels and individually optimized for FPGA implementation" -- each
convolutional / pooling / normalisation layer becomes one kernel.  This
module records the layer shapes of AlexNet and VGG-16 so that the HLS cost
model (:mod:`repro.hls`) can derive a synthetic characterisation (resource %,
bandwidth %, WCET) for arbitrary networks, which is the offline substitute
for profiling CU variants on an AWS F1 instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable


class LayerType(Enum):
    """Kind of CNN layer mapped to a kernel."""

    CONVOLUTION = "conv"
    POOLING = "pool"
    NORMALIZATION = "norm"


@dataclass(frozen=True)
class ConvLayer:
    """Geometry of one convolutional layer.

    All dimensions follow the usual CNN convention: ``in_channels`` input
    feature maps of size ``in_size x in_size`` are convolved with
    ``out_channels`` filters of size ``kernel_size x kernel_size`` using the
    given ``stride`` and ``padding``.
    """

    name: str
    in_channels: int
    out_channels: int
    in_size: int
    kernel_size: int
    stride: int = 1
    padding: int = 0
    groups: int = 1

    def __post_init__(self) -> None:
        for attr in ("in_channels", "out_channels", "in_size", "kernel_size", "stride", "groups"):
            if getattr(self, attr) < 1:
                raise ValueError(f"{attr} must be >= 1")
        if self.padding < 0:
            raise ValueError("padding must be >= 0")

    @property
    def layer_type(self) -> LayerType:
        return LayerType.CONVOLUTION

    @property
    def out_size(self) -> int:
        """Spatial size of the output feature maps."""
        return (self.in_size + 2 * self.padding - self.kernel_size) // self.stride + 1

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations for one inference of this layer."""
        per_output = self.kernel_size**2 * self.in_channels // self.groups
        return per_output * self.out_channels * self.out_size**2

    @property
    def weight_count(self) -> int:
        """Number of weights (excluding biases)."""
        return self.kernel_size**2 * self.in_channels * self.out_channels // self.groups

    @property
    def input_elements(self) -> int:
        return self.in_channels * self.in_size**2

    @property
    def output_elements(self) -> int:
        return self.out_channels * self.out_size**2


@dataclass(frozen=True)
class PoolLayer:
    """Geometry of one pooling layer (max or average)."""

    name: str
    channels: int
    in_size: int
    kernel_size: int
    stride: int

    def __post_init__(self) -> None:
        for attr in ("channels", "in_size", "kernel_size", "stride"):
            if getattr(self, attr) < 1:
                raise ValueError(f"{attr} must be >= 1")

    @property
    def layer_type(self) -> LayerType:
        return LayerType.POOLING

    @property
    def out_size(self) -> int:
        return (self.in_size - self.kernel_size) // self.stride + 1

    @property
    def macs(self) -> int:
        """Comparison/accumulate operations, counted like MACs for costing."""
        return self.kernel_size**2 * self.channels * self.out_size**2

    @property
    def input_elements(self) -> int:
        return self.channels * self.in_size**2

    @property
    def output_elements(self) -> int:
        return self.channels * self.out_size**2

    @property
    def weight_count(self) -> int:
        return 0


@dataclass(frozen=True)
class NormLayer:
    """Geometry of a local response normalisation layer (AlexNet-style)."""

    name: str
    channels: int
    in_size: int
    window: int = 5

    def __post_init__(self) -> None:
        for attr in ("channels", "in_size", "window"):
            if getattr(self, attr) < 1:
                raise ValueError(f"{attr} must be >= 1")

    @property
    def layer_type(self) -> LayerType:
        return LayerType.NORMALIZATION

    @property
    def out_size(self) -> int:
        return self.in_size

    @property
    def macs(self) -> int:
        return self.window * self.channels * self.in_size**2

    @property
    def input_elements(self) -> int:
        return self.channels * self.in_size**2

    @property
    def output_elements(self) -> int:
        return self.channels * self.in_size**2

    @property
    def weight_count(self) -> int:
        return 0


Layer = ConvLayer | PoolLayer | NormLayer


def alexnet_layers() -> tuple[Layer, ...]:
    """AlexNet feature-extraction layers, with POOL2/POOL5 merged into the
    preceding convolutions as in the paper (footnote 1)."""
    return (
        ConvLayer("CONV1", in_channels=3, out_channels=96, in_size=227, kernel_size=11, stride=4),
        PoolLayer("POOL1", channels=96, in_size=55, kernel_size=3, stride=2),
        NormLayer("NORM1", channels=96, in_size=27),
        ConvLayer("CONV2", in_channels=96, out_channels=256, in_size=27, kernel_size=5, padding=2, groups=2),
        NormLayer("NORM2", channels=256, in_size=27),
        ConvLayer("CONV3", in_channels=256, out_channels=384, in_size=13, kernel_size=3, padding=1),
        ConvLayer("CONV4", in_channels=384, out_channels=384, in_size=13, kernel_size=3, padding=1, groups=2),
        ConvLayer("CONV5", in_channels=384, out_channels=256, in_size=13, kernel_size=3, padding=1, groups=2),
    )


def vgg16_layers() -> tuple[Layer, ...]:
    """VGG-16 convolutional and pooling layers as kernelised in the paper.

    Pooling layers 1, 3 and 5 are merged with the preceding convolution
    (which is why only POOL2, POOL4, POOL7 and POOL10 appear in Table 3);
    fully connected layers are not implemented.
    """
    return (
        ConvLayer("CONV1", in_channels=3, out_channels=64, in_size=224, kernel_size=3, padding=1),
        ConvLayer("CONV2", in_channels=64, out_channels=64, in_size=224, kernel_size=3, padding=1),
        PoolLayer("POOL2", channels=64, in_size=224, kernel_size=2, stride=2),
        ConvLayer("CONV3", in_channels=64, out_channels=128, in_size=112, kernel_size=3, padding=1),
        ConvLayer("CONV4", in_channels=128, out_channels=128, in_size=112, kernel_size=3, padding=1),
        PoolLayer("POOL4", channels=128, in_size=112, kernel_size=2, stride=2),
        ConvLayer("CONV5", in_channels=128, out_channels=256, in_size=56, kernel_size=3, padding=1),
        ConvLayer("CONV6", in_channels=256, out_channels=256, in_size=56, kernel_size=3, padding=1),
        ConvLayer("CONV7", in_channels=256, out_channels=256, in_size=56, kernel_size=3, padding=1),
        PoolLayer("POOL7", channels=256, in_size=56, kernel_size=2, stride=2),
        ConvLayer("CONV8", in_channels=256, out_channels=512, in_size=28, kernel_size=3, padding=1),
        ConvLayer("CONV9", in_channels=512, out_channels=512, in_size=28, kernel_size=3, padding=1),
        ConvLayer("CONV10", in_channels=512, out_channels=512, in_size=28, kernel_size=3, padding=1),
        PoolLayer("POOL10", channels=512, in_size=28, kernel_size=2, stride=2),
        ConvLayer("CONV11", in_channels=512, out_channels=512, in_size=14, kernel_size=3, padding=1),
        ConvLayer("CONV12", in_channels=512, out_channels=512, in_size=14, kernel_size=3, padding=1),
        ConvLayer("CONV13", in_channels=512, out_channels=512, in_size=14, kernel_size=3, padding=1),
    )


def total_macs(layers: Iterable[Layer]) -> int:
    """Total multiply-accumulate count of a layer sequence."""
    return sum(layer.macs for layer in layers)
