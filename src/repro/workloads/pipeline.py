"""Linear kernel pipeline (the application model of the paper).

An application is a set ``K`` of kernels organised in a linear pipeline
(Section 3).  Kernels communicate through DRAM buffers orchestrated by the
host; application throughput is the inverse of the initiation interval,
``II = max_k ET_k``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from ..platform.resources import ResourceVector, sum_resources
from .kernel import Kernel


@dataclass(frozen=True)
class Pipeline:
    """A linear task-level pipeline of kernels.

    Parameters
    ----------
    name:
        Application name (e.g. ``"alexnet-16"``).
    kernels:
        Pipeline stages in execution order.  Names must be unique: the
        optimisation variables are indexed by kernel name.
    """

    name: str
    kernels: tuple[Kernel, ...] = field(default_factory=tuple)

    def __init__(self, name: str, kernels: Iterable[Kernel]):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "kernels", tuple(kernels))
        if not self.name:
            raise ValueError("pipeline name must be non-empty")
        if not self.kernels:
            raise ValueError("a pipeline needs at least one kernel")
        names = [kernel.name for kernel in self.kernels]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(f"duplicate kernel names: {sorted(duplicates)}")

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.kernels)

    def __iter__(self) -> Iterator[Kernel]:
        return iter(self.kernels)

    def __getitem__(self, key: int | str) -> Kernel:
        if isinstance(key, int):
            return self.kernels[key]
        for kernel in self.kernels:
            if kernel.name == key:
                return kernel
        raise KeyError(key)

    def __contains__(self, name: object) -> bool:
        return any(kernel.name == name for kernel in self.kernels)

    @property
    def kernel_names(self) -> tuple[str, ...]:
        """Names of the kernels, in pipeline order."""
        return tuple(kernel.name for kernel in self.kernels)

    def index_of(self, name: str) -> int:
        """Return the pipeline position of kernel ``name``."""
        for index, kernel in enumerate(self.kernels):
            if kernel.name == name:
                return index
        raise KeyError(name)

    # ------------------------------------------------------------------ #
    # Aggregate characterisation (the "SUM" rows of Tables 2-3)
    # ------------------------------------------------------------------ #
    def total_resources(self) -> ResourceVector:
        """Sum of single-CU resources over all kernels."""
        return sum_resources(kernel.resources for kernel in self.kernels)

    def total_bandwidth(self) -> float:
        """Sum of single-CU bandwidth over all kernels."""
        return sum(kernel.bandwidth for kernel in self.kernels)

    def total_wcet_ms(self) -> float:
        """Sum of the single-CU WCETs (the single-CU pipeline latency)."""
        return sum(kernel.wcet_ms for kernel in self.kernels)

    # ------------------------------------------------------------------ #
    # Performance model (eqs. 1-2)
    # ------------------------------------------------------------------ #
    def initiation_interval(self, cu_counts: Mapping[str, float]) -> float:
        """Initiation interval for the given (possibly fractional) CU counts.

        ``II = max_k WCET_k / N_k``.  Every kernel must be present with a
        strictly positive count.
        """
        ii = 0.0
        for kernel in self.kernels:
            if kernel.name not in cu_counts:
                raise KeyError(f"missing CU count for kernel {kernel.name!r}")
            ii = max(ii, kernel.execution_time(cu_counts[kernel.name]))
        return ii

    def throughput(self, cu_counts: Mapping[str, float]) -> float:
        """Steady-state throughput in items per second (1000 / II[ms])."""
        ii = self.initiation_interval(cu_counts)
        if ii <= 0:
            return math.inf
        return 1000.0 / ii

    def bottleneck_kernel(self, cu_counts: Mapping[str, float]) -> Kernel:
        """The kernel whose execution time determines the II."""
        return max(self.kernels, key=lambda k: k.execution_time(cu_counts[k.name]))

    def min_feasible_ii(self, total_resources: ResourceVector, total_bandwidth: float) -> float:
        """Lower bound on II imposed by the aggregate platform capacity.

        With every kernel perfectly parallelised, the total amount of work
        that fits on the platform bounds the II from below:
        ``II >= sum_k WCET_k * r_k / capacity`` per resource kind (and per the
        bandwidth dimension), a standard work-conservation argument.
        """
        bound = 0.0
        totals = total_resources.as_dict()
        for kind, capacity in totals.items():
            if capacity <= 0:
                continue
            work = sum(kernel.wcet_ms * kernel.resources[kind] for kernel in self.kernels)
            bound = max(bound, work / capacity)
        if total_bandwidth > 0:
            work = sum(kernel.wcet_ms * kernel.bandwidth for kernel in self.kernels)
            bound = max(bound, work / total_bandwidth)
        return bound

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def subset(self, names: Sequence[str]) -> "Pipeline":
        """Return a new pipeline containing only the named kernels (in order)."""
        missing = [name for name in names if name not in self]
        if missing:
            raise KeyError(f"kernels not in pipeline: {missing}")
        kept = [kernel for kernel in self.kernels if kernel.name in set(names)]
        return Pipeline(name=f"{self.name}-subset", kernels=kept)

    def renamed(self, name: str) -> "Pipeline":
        """Return a copy of the pipeline with a different name."""
        return Pipeline(name=name, kernels=self.kernels)

    def describe(self) -> str:
        """Multi-line human readable summary (mirrors Tables 2-3)."""
        lines = [f"Pipeline {self.name!r} with {len(self)} kernels:"]
        for kernel in self.kernels:
            lines.append(
                f"  {kernel.name:<10s} BRAM={kernel.resources.bram:6.2f}% "
                f"DSP={kernel.resources.dsp:6.2f}% BW={kernel.bandwidth:5.2f}% "
                f"WCET={kernel.wcet_ms:8.3f} ms"
            )
        totals = self.total_resources()
        lines.append(
            f"  {'SUM':<10s} BRAM={totals.bram:6.2f}% DSP={totals.dsp:6.2f}% "
            f"BW={self.total_bandwidth():5.2f}% WCET={self.total_wcet_ms():8.3f} ms"
        )
        return "\n".join(lines)
