"""JSON serialisation of workloads and allocation results.

The paper's flow starts from kernels that were characterised elsewhere (HLS
reports, on-board profiling).  In practice those characterisations live in
files, so the library can read and write pipelines — and solved allocations —
as plain JSON.  The format is deliberately flat and versioned so it can be
produced by simple scripts around vendor tools.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from ..platform.fpga import FPGADevice
from ..platform.multi_fpga import DeviceClass, MultiFPGAPlatform
from ..platform.resources import ResourceVector
from .kernel import Kernel
from .pipeline import Pipeline

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..core.problem import AllocationProblem

#: Format version written into every file; bump on incompatible changes.
FORMAT_VERSION = 1


class SerializationError(ValueError):
    """Raised when a document cannot be interpreted as a pipeline/allocation."""


# --------------------------------------------------------------------------- #
# Pipelines
# --------------------------------------------------------------------------- #
def kernel_to_dict(kernel: Kernel) -> dict[str, Any]:
    """Convert one kernel to a JSON-compatible dictionary."""
    payload: dict[str, Any] = {
        "name": kernel.name,
        "resources": kernel.resources.as_dict(),
        "bandwidth_percent": kernel.bandwidth,
        "wcet_ms": kernel.wcet_ms,
    }
    if kernel.max_cus is not None:
        payload["max_cus"] = kernel.max_cus
    return payload


def kernel_from_dict(payload: Mapping[str, Any]) -> Kernel:
    """Build a kernel from a dictionary produced by :func:`kernel_to_dict`."""
    try:
        return Kernel(
            name=str(payload["name"]),
            resources=ResourceVector.from_mapping(dict(payload.get("resources", {}))),
            bandwidth=float(payload.get("bandwidth_percent", 0.0)),
            wcet_ms=float(payload["wcet_ms"]),
            max_cus=int(payload["max_cus"]) if "max_cus" in payload else None,
        )
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"invalid kernel record: {error}") from error


def pipeline_to_dict(pipeline: Pipeline) -> dict[str, Any]:
    """Convert a pipeline to a JSON-compatible dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "name": pipeline.name,
        "kernels": [kernel_to_dict(kernel) for kernel in pipeline],
    }


def pipeline_from_dict(payload: Mapping[str, Any]) -> Pipeline:
    """Build a pipeline from a dictionary produced by :func:`pipeline_to_dict`."""
    version = payload.get("format_version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise SerializationError(f"unsupported format_version {version!r}")
    kernels = payload.get("kernels")
    if not isinstance(kernels, list) or not kernels:
        raise SerializationError("a pipeline document needs a non-empty 'kernels' list")
    try:
        name = str(payload["name"])
    except KeyError as error:
        raise SerializationError("a pipeline document needs a 'name'") from error
    return Pipeline(name=name, kernels=[kernel_from_dict(entry) for entry in kernels])


def save_pipeline(pipeline: Pipeline, path: str | Path) -> Path:
    """Write a pipeline to a JSON file and return its path."""
    path = Path(path)
    path.write_text(json.dumps(pipeline_to_dict(pipeline), indent=2) + "\n")
    return path


def load_pipeline(path: str | Path) -> Pipeline:
    """Read a pipeline from a JSON file."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise SerializationError(f"not valid JSON: {error}") from error
    return pipeline_from_dict(payload)


# --------------------------------------------------------------------------- #
# Allocations
# --------------------------------------------------------------------------- #
def allocation_to_dict(counts: Mapping[str, tuple[int, ...]], pipeline_name: str) -> dict[str, Any]:
    """Serialise per-FPGA CU counts (as produced by AllocationSolution.counts)."""
    return {
        "format_version": FORMAT_VERSION,
        "pipeline": pipeline_name,
        "counts": {name: list(per_fpga) for name, per_fpga in counts.items()},
    }


def allocation_from_dict(payload: Mapping[str, Any]) -> dict[str, tuple[int, ...]]:
    """Deserialise per-FPGA CU counts."""
    counts = payload.get("counts")
    if not isinstance(counts, Mapping) or not counts:
        raise SerializationError("an allocation document needs a non-empty 'counts' mapping")
    result: dict[str, tuple[int, ...]] = {}
    for name, per_fpga in counts.items():
        if not isinstance(per_fpga, (list, tuple)) or not per_fpga:
            raise SerializationError(f"kernel {name!r} has an invalid per-FPGA list")
        try:
            result[str(name)] = tuple(int(value) for value in per_fpga)
        except (TypeError, ValueError) as error:
            raise SerializationError(f"kernel {name!r} has non-integer counts") from error
    return result


def save_allocation(
    counts: Mapping[str, tuple[int, ...]], pipeline_name: str, path: str | Path
) -> Path:
    """Write an allocation to a JSON file and return its path."""
    path = Path(path)
    path.write_text(json.dumps(allocation_to_dict(counts, pipeline_name), indent=2) + "\n")
    return path


def load_allocation(path: str | Path) -> dict[str, tuple[int, ...]]:
    """Read an allocation from a JSON file."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise SerializationError(f"not valid JSON: {error}") from error
    return allocation_from_dict(payload)


# --------------------------------------------------------------------------- #
# Platforms and whole allocation problems
# --------------------------------------------------------------------------- #
def device_to_dict(device: FPGADevice) -> dict[str, Any]:
    """Convert an FPGA device to a JSON-compatible dictionary."""
    return {
        "name": device.name,
        "bram_blocks": device.bram_blocks,
        "dsp_slices": device.dsp_slices,
        "luts": device.luts,
        "ffs": device.ffs,
        "dram_bandwidth_gbps": device.dram_bandwidth_gbps,
        "dram_banks": device.dram_banks,
    }


def device_from_dict(payload: Mapping[str, Any]) -> FPGADevice:
    """Build an FPGA device from a dictionary produced by :func:`device_to_dict`."""
    try:
        return FPGADevice(
            name=str(payload["name"]),
            bram_blocks=int(payload["bram_blocks"]),
            dsp_slices=int(payload["dsp_slices"]),
            luts=int(payload["luts"]),
            ffs=int(payload["ffs"]),
            dram_bandwidth_gbps=float(payload["dram_bandwidth_gbps"]),
            dram_banks=int(payload.get("dram_banks", 4)),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"invalid device record: {error}") from error


def device_class_to_dict(device_class: DeviceClass) -> dict[str, Any]:
    """Convert one device class to a JSON-compatible dictionary."""
    return {
        "device": device_to_dict(device_class.device),
        "count": device_class.count,
        "resource_limit": device_class.resource_limit.as_dict(),
        "bandwidth_limit": device_class.bandwidth_limit,
    }


def device_class_from_dict(payload: Mapping[str, Any]) -> DeviceClass:
    """Build a device class from :func:`device_class_to_dict` output."""
    try:
        return DeviceClass(
            device=device_from_dict(payload["device"]),
            count=int(payload["count"]),
            resource_limit=ResourceVector.from_mapping(dict(payload["resource_limit"])),
            bandwidth_limit=float(payload.get("bandwidth_limit", 100.0)),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"invalid device class record: {error}") from error


def platform_to_dict(platform: MultiFPGAPlatform) -> dict[str, Any]:
    """Convert a multi-FPGA platform to a JSON-compatible dictionary.

    Homogeneous platforms keep the original flat document (older readers
    stay compatible); heterogeneous platforms add a ``classes`` list with
    one entry per device class, in platform (class-major) order.
    """
    document = {
        "format_version": FORMAT_VERSION,
        "name": platform.name,
        "device": device_to_dict(platform.device),
        "num_fpgas": platform.num_fpgas,
        "resource_limit": platform.resource_limit.as_dict(),
        "bandwidth_limit": platform.bandwidth_limit,
    }
    if not platform.is_homogeneous:
        document["classes"] = [
            device_class_to_dict(device_class) for device_class in platform.device_classes
        ]
    return document


def platform_from_dict(payload: Mapping[str, Any]) -> MultiFPGAPlatform:
    """Build a platform from a dictionary produced by :func:`platform_to_dict`."""
    classes_payload = payload.get("classes")
    if classes_payload is not None:
        if not isinstance(classes_payload, list) or not classes_payload:
            raise SerializationError("'classes' must be a non-empty list")
        classes = tuple(device_class_from_dict(entry) for entry in classes_payload)
        name = str(payload.get("name", "multi-fpga"))
        try:
            platform = MultiFPGAPlatform.from_classes(classes, name=name)
        except ValueError as error:
            raise SerializationError(f"invalid platform record: {error}") from error
        if "num_fpgas" in payload and int(payload["num_fpgas"]) != platform.num_fpgas:
            raise SerializationError(
                f"num_fpgas {payload['num_fpgas']} does not match the class counts "
                f"({platform.num_fpgas})"
            )
        return platform
    try:
        return MultiFPGAPlatform(
            device=device_from_dict(payload["device"]),
            num_fpgas=int(payload["num_fpgas"]),
            resource_limit=ResourceVector.from_mapping(dict(payload["resource_limit"])),
            bandwidth_limit=float(payload.get("bandwidth_limit", 100.0)),
            name=str(payload.get("name", "multi-fpga")),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"invalid platform record: {error}") from error


def save_platform(platform: MultiFPGAPlatform, path: str | Path) -> Path:
    """Write a platform spec to a JSON file and return its path."""
    path = Path(path)
    path.write_text(json.dumps(platform_to_dict(platform), indent=2) + "\n")
    return path


def load_platform(path: str | Path) -> MultiFPGAPlatform:
    """Read a platform spec from a JSON file (the CLI ``--platform-spec``)."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise SerializationError(f"not valid JSON: {error}") from error
    return platform_from_dict(payload)


def problem_to_dict(problem: "AllocationProblem") -> dict[str, Any]:
    """Convert a whole allocation problem to a JSON-compatible dictionary.

    The document embeds the pipeline, the platform and the objective weights,
    so a problem can travel over the wire (the allocation service) or live on
    disk next to solved results.
    """
    return {
        "format_version": FORMAT_VERSION,
        "pipeline": pipeline_to_dict(problem.pipeline),
        "platform": platform_to_dict(problem.platform),
        "weights": {"alpha": problem.weights.alpha, "beta": problem.weights.beta},
    }


def problem_from_dict(payload: Mapping[str, Any]) -> "AllocationProblem":
    """Build an allocation problem from a dictionary of :func:`problem_to_dict`."""
    # Imported lazily: repro.core imports repro.workloads at module load time.
    from ..core.objective import ObjectiveWeights
    from ..core.problem import AllocationProblem

    for key in ("pipeline", "platform"):
        if key not in payload:
            raise SerializationError(f"a problem document needs a {key!r} section")
    weights_payload = payload.get("weights", {})
    if not isinstance(weights_payload, Mapping):
        raise SerializationError("'weights' must be a mapping")
    try:
        weights = ObjectiveWeights(
            alpha=float(weights_payload.get("alpha", 1.0)),
            beta=float(weights_payload.get("beta", 0.0)),
        )
    except (TypeError, ValueError) as error:
        raise SerializationError(f"invalid weights record: {error}") from error
    return AllocationProblem(
        pipeline=pipeline_from_dict(payload["pipeline"]),
        platform=platform_from_dict(payload["platform"]),
        weights=weights,
    )


def save_problem(problem: "AllocationProblem", path: str | Path) -> Path:
    """Write an allocation problem to a JSON file and return its path."""
    path = Path(path)
    path.write_text(json.dumps(problem_to_dict(problem), indent=2) + "\n")
    return path


def load_problem(path: str | Path) -> "AllocationProblem":
    """Read an allocation problem from a JSON file."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise SerializationError(f"not valid JSON: {error}") from error
    return problem_from_dict(payload)
