"""Multi-tenant fleet workload generators.

Deterministic builders of :class:`~repro.fleet.state.FleetState` instances
for the fleet differential suite, the ``repro fleet`` CLI demo and the
``fleet-smoke`` CI scenario.  Each tenant gets a small synthetic pipeline
(:func:`repro.workloads.synthetic.random_pipeline` under a per-tenant
seed) and a priority weight drawn from a small deterministic cycle, so the
weighted min-max objective has something to trade off.

The fleet classes are imported lazily inside the builders:
``repro.fleet.state`` imports this package's serialisation layer, so a
module-level import here would be a cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..platform.presets import XCVU9P
from ..platform.resources import ResourceVector
from .synthetic import SyntheticSpec, random_pipeline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..fleet.state import FleetState, Tenant

#: Priority weights cycled over the generated tenants: one heavy tenant
#: (tight SLA), one light, the rest at par.
_WEIGHT_CYCLE = (2.0, 1.0, 0.5)


def synthetic_tenant(
    tenant_id: str,
    num_kernels: int = 2,
    weight: float = 1.0,
    seed: int = 0,
) -> "Tenant":
    """One tenant with a small random pipeline (same id+seed, same tenant)."""
    from ..fleet.state import Tenant

    spec = SyntheticSpec(
        num_kernels=num_kernels,
        min_wcet_ms=1.0,
        max_wcet_ms=8.0,
        min_resource=15.0,
        max_resource=45.0,
        min_bandwidth=5.0,
        max_bandwidth=20.0,
    )
    pipeline = random_pipeline(spec, seed=seed).renamed(f"app-{tenant_id}")
    return Tenant(id=tenant_id, pipeline=pipeline, weight=weight)


def fleet_classes(
    counts: Sequence[int] = (2, 2),
    derate_percent: float = 20.0,
) -> tuple:
    """A pool of device classes: a full-capacity class plus derated ones.

    ``counts[0]`` devices at 100% capacity; every further class loses
    ``derate_percent`` more resource/bandwidth headroom than the one
    before, modelling mixed-generation hardware.
    """
    from ..platform.multi_fpga import DeviceClass

    classes = []
    for index, count in enumerate(counts):
        cap = max(10.0, 100.0 - derate_percent * index)
        classes.append(
            DeviceClass(
                device=XCVU9P,
                count=count,
                resource_limit=ResourceVector.full(cap),
                bandwidth_limit=cap,
            )
        )
    return tuple(classes)


def synthetic_fleet(
    num_tenants: int = 3,
    class_counts: Sequence[int] = (2, 2),
    kernels_per_tenant: int = 2,
    seed: int = 0,
    name: str = "synthetic-fleet",
) -> "FleetState":
    """A deterministic multi-tenant fleet (same arguments, same fleet)."""
    from ..fleet.state import FleetState

    if num_tenants < 1:
        raise ValueError("num_tenants must be >= 1")
    tenants = tuple(
        synthetic_tenant(
            tenant_id=f"tenant-{index}",
            num_kernels=kernels_per_tenant,
            weight=_WEIGHT_CYCLE[index % len(_WEIGHT_CYCLE)],
            seed=seed * 1000 + index,
        )
        for index in range(num_tenants)
    )
    return FleetState(
        tenants=tenants, classes=fleet_classes(class_counts), name=name
    )


def arrival_sequence(
    num_tenants: int = 3,
    kernels_per_tenant: int = 2,
    seed: int = 0,
) -> "list[Tenant]":
    """The tenants of :func:`synthetic_fleet` as an arrival order, for
    driving the service's ``POST /fleet/tenants`` path in scenarios."""
    return [
        synthetic_tenant(
            tenant_id=f"tenant-{index}",
            num_kernels=kernels_per_tenant,
            weight=_WEIGHT_CYCLE[index % len(_WEIGHT_CYCLE)],
            seed=seed * 1000 + index,
        )
        for index in range(num_tenants)
    ]
