"""VGG-16 workload (Table 3 of the paper).

The paper characterises the 16-bit fixed point VGG-16 kernels on one AWS F1
FPGA.  Rows listing several layers (e.g. ``CONV6, 7`` or ``CONV11,12,13``)
describe identical per-layer characterisations; the pipeline expands them to
individual kernels (17 in total: 13 convolutions and 4 pooling layers), which
matches the 17 kernels shown in Figure 6.
"""

from __future__ import annotations

from ..platform.resources import ResourceVector
from .kernel import Kernel
from .pipeline import Pipeline

#: Table 3 rows: (names, BRAM %, DSP %, BW %, WCET ms).  A row with several
#: names expands into several identical kernels.
VGG16_TABLE: tuple[tuple[tuple[str, ...], float, float, float, float], ...] = (
    (("CONV1",), 3.67, 2.95, 2.0, 28.8),
    (("CONV2",), 9.97, 15.14, 2.1, 67.8),
    (("POOL2",), 11.62, 0.03, 5.2, 13.3),
    (("CONV3",), 9.97, 15.14, 2.3, 22.7),
    (("CONV4",), 9.97, 15.14, 2.4, 32.1),
    (("POOL4",), 2.94, 0.03, 5.1, 6.9),
    (("CONV5",), 8.32, 15.07, 2.0, 22.8),
    (("CONV6", "CONV7"), 8.32, 15.05, 2.3, 32.9),
    (("POOL7",), 1.50, 0.03, 5.0, 3.5),
    (("CONV8",), 2.12, 15.02, 2.1, 24.5),
    (("CONV9", "CONV10"), 2.12, 15.02, 2.5, 37.7),
    (("POOL10",), 0.05, 0.01, 4.0, 2.1),
    (("CONV11", "CONV12", "CONV13"), 2.12, 14.99, 2.6, 20.3),
)


def vgg16_fx16() -> Pipeline:
    """VGG-16, 16-bit fixed point kernels (Table 3), expanded to 17 kernels."""
    kernels: list[Kernel] = []
    for names, bram, dsp, bandwidth, wcet in VGG16_TABLE:
        for kernel_name in names:
            kernels.append(
                Kernel(
                    name=kernel_name,
                    resources=ResourceVector(bram=bram, dsp=dsp),
                    bandwidth=bandwidth,
                    wcet_ms=wcet,
                )
            )
    return Pipeline(name="vgg-16", kernels=kernels)


#: Expected aggregate values from the SUM row of Table 3 (WCET in ms; the
#: paper prints 0.4 s, which is the rounded 426.6 ms).
VGG16_EXPECTED_SUM = {"bram": 87.37, "dsp": 183.67, "bw": 49.7, "wcet": 426.6}
