"""Workload models: kernels, pipelines, CNN characterisations and generators."""

from .alexnet import (
    ALEX16_EXPECTED_SUM,
    ALEX16_TABLE,
    ALEX32_EXPECTED_SUM,
    ALEX32_TABLE,
    alexnet_fp32,
    alexnet_fx16,
)
from .cnn_layers import (
    ConvLayer,
    Layer,
    LayerType,
    NormLayer,
    PoolLayer,
    alexnet_layers,
    total_macs,
    vgg16_layers,
)
from .kernel import Kernel
from .pipeline import Pipeline
from .synthetic import SyntheticSpec, cnn_like_pipeline, random_pipeline, scaled_pipeline
from .tenants import arrival_sequence, fleet_classes, synthetic_fleet, synthetic_tenant
from .vgg import VGG16_EXPECTED_SUM, VGG16_TABLE, vgg16_fx16

__all__ = [
    "ALEX16_EXPECTED_SUM",
    "ALEX16_TABLE",
    "ALEX32_EXPECTED_SUM",
    "ALEX32_TABLE",
    "ConvLayer",
    "Kernel",
    "Layer",
    "LayerType",
    "NormLayer",
    "Pipeline",
    "PoolLayer",
    "SyntheticSpec",
    "VGG16_EXPECTED_SUM",
    "VGG16_TABLE",
    "alexnet_fp32",
    "alexnet_fx16",
    "alexnet_layers",
    "arrival_sequence",
    "cnn_like_pipeline",
    "fleet_classes",
    "random_pipeline",
    "scaled_pipeline",
    "synthetic_fleet",
    "synthetic_tenant",
    "total_macs",
    "vgg16_fx16",
    "vgg16_layers",
]
