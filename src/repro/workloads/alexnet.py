"""AlexNet workloads (Table 2 of the paper).

The paper characterises two AlexNet variants on one AWS F1 FPGA:

* **Alex-32** -- 32-bit floating point kernels,
* **Alex-16** -- 16-bit fixed point kernels.

Each row of Table 2 gives the BRAM %, DSP %, DRAM bandwidth % and WCET (ms)
of one compute unit of the kernel.  Max-pooling layers POOL2 and POOL5 are
merged into the preceding convolution (footnote 1 of the paper); the fully
connected layers are not implemented.  LUT/FF usage is not reported in the
paper ("these resources are much more critical"), so it defaults to zero and
DSP/BRAM remain the binding constraints, exactly as in the original
experiments.
"""

from __future__ import annotations

from ..platform.resources import ResourceVector
from .kernel import Kernel
from .pipeline import Pipeline

#: Table 2, Alex-32 columns: (name, BRAM %, DSP %, BW %, WCET ms).
ALEX32_TABLE: tuple[tuple[str, float, float, float, float], ...] = (
    ("CONV1", 13.07, 21.24, 1.3, 13.0),
    ("POOL1", 2.84, 0.0, 7.03, 1.78),
    ("NORM1", 6.10, 2.11, 5.7, 0.839),
    ("CONV2", 8.73, 37.59, 2.4, 7.19),
    ("NORM2", 7.75, 2.11, 3.7, 0.807),
    ("CONV3", 5.22, 28.13, 5.0, 7.78),
    ("CONV4", 2.13, 37.50, 3.7, 9.08),
    ("CONV5", 8.73, 37.50, 4.2, 4.84),
)

#: Table 2, Alex-16 columns: (name, BRAM %, DSP %, BW %, WCET ms).
ALEX16_TABLE: tuple[tuple[str, float, float, float, float], ...] = (
    ("CONV1", 10.59, 4.31, 1.8, 5.16),
    ("POOL1", 0.05, 0.0, 3.5, 1.78),
    ("NORM1", 2.53, 0.06, 3.1, 0.78),
    ("CONV2", 4.39, 7.63, 2.1, 4.11),
    ("NORM2", 6.66, 0.06, 2.2, 0.67),
    ("CONV3", 2.63, 5.66, 2.9, 6.70),
    ("CONV4", 1.91, 7.55, 3.2, 5.06),
    ("CONV5", 4.39, 7.55, 3.1, 3.29),
)


def _pipeline_from_table(
    name: str, table: tuple[tuple[str, float, float, float, float], ...]
) -> Pipeline:
    """Build a :class:`Pipeline` from a (name, bram, dsp, bw, wcet) table."""
    kernels = [
        Kernel(
            name=kernel_name,
            resources=ResourceVector(bram=bram, dsp=dsp),
            bandwidth=bandwidth,
            wcet_ms=wcet,
        )
        for kernel_name, bram, dsp, bandwidth, wcet in table
    ]
    return Pipeline(name=name, kernels=kernels)


def alexnet_fp32() -> Pipeline:
    """AlexNet, 32-bit floating point kernels (Alex-32, Table 2 left half)."""
    return _pipeline_from_table("alex-32", ALEX32_TABLE)


def alexnet_fx16() -> Pipeline:
    """AlexNet, 16-bit fixed point kernels (Alex-16, Table 2 right half)."""
    return _pipeline_from_table("alex-16", ALEX16_TABLE)


#: Expected aggregate values, used by tests to cross-check the tables against
#: the "SUM" row printed in the paper.
ALEX32_EXPECTED_SUM = {"bram": 54.57, "dsp": 166.18, "bw": 33.1, "wcet": 45.32}
ALEX16_EXPECTED_SUM = {"bram": 33.15, "dsp": 32.82, "bw": 21.9, "wcet": 27.55}
