"""Synthetic pipeline generators.

The paper's algorithms "do not depend at all on the considered networks"; the
CNNs are only illustrative.  For testing, property-based checks and scaling
benchmarks we generate random linear pipelines with controllable size and
tightness.  The generators are deterministic given a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..platform.resources import ResourceVector
from .kernel import Kernel
from .pipeline import Pipeline


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of a random pipeline.

    Parameters
    ----------
    num_kernels:
        Number of pipeline stages.
    min_wcet_ms, max_wcet_ms:
        Range of the per-kernel single-CU worst-case execution times.
    min_resource, max_resource:
        Range (percent of one FPGA) of each kernel's dominant resource usage.
    min_bandwidth, max_bandwidth:
        Range (percent) of each kernel's per-CU bandwidth usage.
    heavy_fraction:
        Fraction of kernels that are "heavy" (resource usage drawn from the
        top quarter of the resource range), mimicking the convolutional
        layers that dominate Tables 2-3.
    """

    num_kernels: int = 8
    min_wcet_ms: float = 0.5
    max_wcet_ms: float = 50.0
    min_resource: float = 0.5
    max_resource: float = 40.0
    min_bandwidth: float = 0.5
    max_bandwidth: float = 8.0
    heavy_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.num_kernels < 1:
            raise ValueError("num_kernels must be >= 1")
        if self.min_wcet_ms <= 0 or self.max_wcet_ms < self.min_wcet_ms:
            raise ValueError("invalid WCET range")
        if self.min_resource <= 0 or self.max_resource < self.min_resource:
            raise ValueError("invalid resource range")
        if self.min_bandwidth < 0 or self.max_bandwidth < self.min_bandwidth:
            raise ValueError("invalid bandwidth range")
        if not 0.0 <= self.heavy_fraction <= 1.0:
            raise ValueError("heavy_fraction must be in [0, 1]")


def random_pipeline(spec: SyntheticSpec = SyntheticSpec(), seed: int = 0) -> Pipeline:
    """Generate a random linear pipeline according to ``spec``.

    The same ``(spec, seed)`` pair always yields the same pipeline.
    """
    rng = random.Random(seed)
    kernels: list[Kernel] = []
    heavy_cutoff = spec.min_resource + 0.75 * (spec.max_resource - spec.min_resource)
    for index in range(spec.num_kernels):
        heavy = rng.random() < spec.heavy_fraction
        if heavy:
            dsp = rng.uniform(heavy_cutoff, spec.max_resource)
            bram = rng.uniform(spec.min_resource, heavy_cutoff)
        else:
            dsp = rng.uniform(spec.min_resource, heavy_cutoff)
            bram = rng.uniform(spec.min_resource, spec.max_resource * 0.4)
        kernels.append(
            Kernel(
                name=f"K{index + 1}",
                resources=ResourceVector(bram=bram, dsp=dsp),
                bandwidth=rng.uniform(spec.min_bandwidth, spec.max_bandwidth),
                wcet_ms=rng.uniform(spec.min_wcet_ms, spec.max_wcet_ms),
            )
        )
    return Pipeline(name=f"synthetic-{spec.num_kernels}k-seed{seed}", kernels=kernels)


def cnn_like_pipeline(num_conv: int = 10, num_pool: int = 3, seed: int = 0) -> Pipeline:
    """Generate a pipeline that statistically resembles a CNN (Tables 2-3).

    Convolutional kernels are DSP-heavy with moderate bandwidth; pooling
    kernels use almost no DSP but relatively high bandwidth, as in the paper's
    characterisation tables.  Pool layers are interleaved roughly evenly among
    the convolution layers.
    """
    if num_conv < 1:
        raise ValueError("num_conv must be >= 1")
    if num_pool < 0:
        raise ValueError("num_pool must be >= 0")
    rng = random.Random(seed)
    kernels: list[Kernel] = []
    pool_positions = set()
    if num_pool:
        stride = max(1, num_conv // (num_pool + 1))
        pool_positions = {stride * (i + 1) for i in range(num_pool)}
    conv_index = 0
    pool_index = 0
    for position in range(num_conv + num_pool):
        if position in pool_positions and pool_index < num_pool:
            pool_index += 1
            kernels.append(
                Kernel(
                    name=f"POOL{pool_index}",
                    resources=ResourceVector(bram=rng.uniform(0.05, 12.0), dsp=rng.uniform(0.0, 0.1)),
                    bandwidth=rng.uniform(3.5, 7.0),
                    wcet_ms=rng.uniform(1.5, 14.0),
                )
            )
        else:
            conv_index += 1
            kernels.append(
                Kernel(
                    name=f"CONV{conv_index}",
                    resources=ResourceVector(bram=rng.uniform(1.9, 13.1), dsp=rng.uniform(3.0, 38.0)),
                    bandwidth=rng.uniform(1.3, 5.0),
                    wcet_ms=rng.uniform(3.0, 70.0),
                )
            )
    # Ensure we emitted exactly num_conv CONV kernels even if positions collided.
    while conv_index < num_conv:
        conv_index += 1
        kernels.append(
            Kernel(
                name=f"CONV{conv_index}",
                resources=ResourceVector(bram=rng.uniform(1.9, 13.1), dsp=rng.uniform(3.0, 38.0)),
                bandwidth=rng.uniform(1.3, 5.0),
                wcet_ms=rng.uniform(3.0, 70.0),
            )
        )
    return Pipeline(name=f"cnn-like-{num_conv}c{num_pool}p-seed{seed}", kernels=kernels)


def scaled_pipeline(base: Pipeline, repetitions: int) -> Pipeline:
    """Tile a pipeline ``repetitions`` times (for scaling benchmarks).

    Kernel names are suffixed with the repetition index to keep them unique.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    kernels: list[Kernel] = []
    for repetition in range(repetitions):
        for kernel in base:
            kernels.append(
                Kernel(
                    name=f"{kernel.name}_r{repetition + 1}",
                    resources=kernel.resources,
                    bandwidth=kernel.bandwidth,
                    wcet_ms=kernel.wcet_ms,
                    max_cus=kernel.max_cus,
                )
            )
    return Pipeline(name=f"{base.name}-x{repetitions}", kernels=kernels)
