"""Minimal discrete-event simulation engine.

A deliberately small but general event-driven kernel (priority queue of
timestamped events with callbacks) used by the pipeline simulator.  Keeping
it separate makes the simulator logic readable and lets tests exercise the
engine in isolation.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventQueue:
    """A time-ordered queue of callbacks."""

    def __init__(self) -> None:
        self._heap: list[_ScheduledEvent] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> _ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("cannot schedule an event in the past")
        event = _ScheduledEvent(time=self._now + delay, sequence=next(self._counter), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> _ScheduledEvent:
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self._now:
            raise ValueError("cannot schedule an event in the past")
        event = _ScheduledEvent(time=time, sequence=next(self._counter), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: _ScheduledEvent) -> None:
        """Cancel a previously scheduled event (lazy removal)."""
        event.cancelled = True

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events in time order.

        Stops when the queue empties, when the next event lies beyond
        ``until``, or after ``max_events`` events.  Returns the simulation
        time reached.
        """
        while self._heap:
            if max_events is not None and self._processed >= max_events:
                break
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and event.time > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            self._now = event.time
            self._processed += 1
            event.callback()
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def is_empty(self) -> bool:
        return not any(not event.cancelled for event in self._heap)
