"""Discrete-event validation of allocations (substitute for AWS F1 runs)."""

from .dram import BandwidthContentionModel
from .engine import EventQueue
from .pipeline_sim import PipelineSimulator, SimulationResult, StageTiming, simulate_allocation

__all__ = [
    "BandwidthContentionModel",
    "EventQueue",
    "PipelineSimulator",
    "SimulationResult",
    "StageTiming",
    "simulate_allocation",
]
