"""Discrete-event simulation of a task-level pipeline on a CU allocation.

The optimisation model predicts ``II = max_k WCET_k / N_k`` analytically.
This simulator executes the pipeline image-by-image on the allocated CUs,
with (optional) DRAM bandwidth contention, and measures the steady-state
initiation interval and end-to-end latency.  It serves three purposes:

* validate that the analytic II matches the simulated II for feasible
  allocations (tests assert this),
* expose the penalty of over-committed DRAM bandwidth (the contention model
  stretches stage service times on oversubscribed FPGAs),
* exercise allocations end-to-end in the examples, standing in for the AWS F1
  runs of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.solution import AllocationSolution
from .dram import BandwidthContentionModel
from .engine import EventQueue


@dataclass(frozen=True)
class StageTiming:
    """Simulated timing of one pipeline stage."""

    kernel: str
    service_time_ms: float
    slowdown: float


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of simulating a number of images through the pipeline."""

    images: int
    measured_ii_ms: float
    analytic_ii_ms: float
    pipeline_latency_ms: float
    makespan_ms: float
    throughput_per_second: float
    stage_timings: tuple[StageTiming, ...]
    completion_times_ms: tuple[float, ...] = field(repr=False, default=())

    @property
    def ii_error(self) -> float:
        """Relative difference between measured and analytic II."""
        if self.analytic_ii_ms <= 0:
            return 0.0
        return abs(self.measured_ii_ms - self.analytic_ii_ms) / self.analytic_ii_ms


class PipelineSimulator:
    """Simulate the host-orchestrated kernel pipeline of the paper.

    Each kernel stage processes one image at a time: all its CUs work jointly
    on the image, so the per-image service time is ``WCET_k / N_k`` (scaled by
    the DRAM contention factor of the FPGAs hosting the CUs).  Stages are
    connected by host-managed DRAM buffers with the given depth (1 reproduces
    a strict pipeline; larger depths model multi-buffering).
    """

    def __init__(
        self,
        solution: AllocationSolution,
        contention: BandwidthContentionModel | None = None,
        buffer_depth: int = 1,
    ):
        if buffer_depth < 1:
            raise ValueError("buffer_depth must be >= 1")
        self.solution = solution
        self.problem = solution.problem
        self.contention = contention or BandwidthContentionModel.from_solution(solution)
        self.buffer_depth = buffer_depth
        self._stage_names = list(self.problem.kernel_names)
        self._service_times = {
            name: solution.execution_time(name) * self.contention.kernel_slowdown(name)
            for name in self._stage_names
        }

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def simulate(self, images: int = 64, warmup: int = 8) -> SimulationResult:
        """Push ``images`` images through the pipeline and measure timing."""
        if images < 1:
            raise ValueError("images must be >= 1")
        if warmup < 0 or warmup >= images:
            warmup = max(0, images // 4)

        queue = EventQueue()
        num_stages = len(self._stage_names)
        stage_free_at = [0.0] * num_stages
        stage_done: list[dict[int, float]] = [dict() for _ in range(num_stages)]
        completion: dict[int, float] = {}
        start_times: dict[int, float] = {}

        def schedule_stage(stage_index: int, image_index: int, ready_time: float) -> None:
            """Start an image on a stage as soon as the stage and input are ready."""
            service = self._service_times[self._stage_names[stage_index]]
            # Back-pressure: with finite buffering a stage cannot run more than
            # buffer_depth images ahead of its successor's completions.
            start = max(ready_time, stage_free_at[stage_index])
            if stage_index + 1 < num_stages:
                gate_image = image_index - self.buffer_depth
                if gate_image >= 0:
                    downstream_done = stage_done[stage_index + 1].get(gate_image)
                    if downstream_done is not None:
                        start = max(start, downstream_done)
            stage_free_at[stage_index] = start + service

            def complete() -> None:
                stage_done[stage_index][image_index] = queue.now
                if stage_index == 0:
                    start_times.setdefault(image_index, queue.now - service)
                if stage_index + 1 < num_stages:
                    schedule_stage(stage_index + 1, image_index, queue.now)
                else:
                    completion[image_index] = queue.now

            queue.schedule_at(start + service, complete)

        for image_index in range(images):
            schedule_stage(0, image_index, 0.0)
        queue.run()

        completions = [completion[i] for i in range(images)]
        measured_ii = self._steady_state_ii(completions, warmup)
        first_latency = completions[0]
        analytic_ii = self.solution.initiation_interval
        makespan = completions[-1]
        throughput = 1000.0 * (images - warmup) / (completions[-1] - completions[warmup - 1]) if warmup else (
            1000.0 * images / makespan
        )
        timings = tuple(
            StageTiming(
                kernel=name,
                service_time_ms=self._service_times[name],
                slowdown=self.contention.kernel_slowdown(name),
            )
            for name in self._stage_names
        )
        return SimulationResult(
            images=images,
            measured_ii_ms=measured_ii,
            analytic_ii_ms=analytic_ii,
            pipeline_latency_ms=first_latency,
            makespan_ms=makespan,
            throughput_per_second=throughput,
            stage_timings=timings,
            completion_times_ms=tuple(completions),
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _steady_state_ii(completions: list[float], warmup: int) -> float:
        """Average inter-completion gap after the warm-up images."""
        if len(completions) < 2:
            return completions[0] if completions else 0.0
        usable = completions[warmup:] if warmup < len(completions) - 1 else completions
        if len(usable) < 2:
            usable = completions
        gaps = [b - a for a, b in zip(usable, usable[1:])]
        return sum(gaps) / len(gaps)


def simulate_allocation(
    solution: AllocationSolution, images: int = 64, buffer_depth: int = 1
) -> SimulationResult:
    """Convenience wrapper: simulate an allocation with default settings."""
    return PipelineSimulator(solution, buffer_depth=buffer_depth).simulate(images=images)
