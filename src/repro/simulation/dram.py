"""DRAM bandwidth contention model.

The paper constrains the *sum* of per-CU bandwidth demands on each FPGA to
stay below the device bandwidth (constraint 10), precisely so that execution
times remain at their measured values.  The simulator uses this model to show
what happens when the constraint is violated: each FPGA whose aggregate
demand exceeds its capacity slows every CU it hosts proportionally, and a
kernel's service time is stretched by the worst slowdown among the FPGAs
hosting its CUs (they work in lock-step on the same image).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.solution import AllocationSolution


@dataclass(frozen=True)
class BandwidthContentionModel:
    """Per-FPGA slowdown factors derived from bandwidth oversubscription."""

    fpga_slowdowns: tuple[float, ...]
    kernel_fpgas: Mapping[str, tuple[int, ...]]

    @classmethod
    def from_solution(cls, solution: AllocationSolution) -> "BandwidthContentionModel":
        """Build the contention model for a concrete allocation."""
        problem = solution.problem
        capacities = problem.platform.fpga_bandwidth_limits()
        slowdowns: list[float] = []
        for fpga in range(problem.num_fpgas):
            demand = solution.fpga_bandwidth_usage(fpga)
            capacity = capacities[fpga]
            slowdowns.append(max(1.0, demand / capacity) if capacity > 0 else 1.0)
        hosting = {
            name: tuple(
                f for f in range(problem.num_fpgas) if solution.counts[name][f] > 0
            )
            for name in problem.kernel_names
        }
        return cls(fpga_slowdowns=tuple(slowdowns), kernel_fpgas=hosting)

    @classmethod
    def ideal(cls, solution: AllocationSolution) -> "BandwidthContentionModel":
        """A contention-free model (every slowdown is 1)."""
        problem = solution.problem
        hosting = {
            name: tuple(
                f for f in range(problem.num_fpgas) if solution.counts[name][f] > 0
            )
            for name in problem.kernel_names
        }
        return cls(
            fpga_slowdowns=tuple(1.0 for _ in range(problem.num_fpgas)),
            kernel_fpgas=hosting,
        )

    def fpga_slowdown(self, fpga_index: int) -> float:
        """Slowdown factor of one FPGA (1.0 means no contention)."""
        return self.fpga_slowdowns[fpga_index]

    def kernel_slowdown(self, kernel_name: str) -> float:
        """Slowdown of a kernel: the worst factor among its hosting FPGAs."""
        fpgas = self.kernel_fpgas.get(kernel_name, ())
        if not fpgas:
            return 1.0
        return max(self.fpga_slowdowns[f] for f in fpgas)

    @property
    def worst_slowdown(self) -> float:
        """Largest slowdown on the platform."""
        return max(self.fpga_slowdowns) if self.fpga_slowdowns else 1.0
