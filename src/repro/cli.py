"""Command-line interface.

Three sub-commands cover the common workflows::

    repro-fpga solve --app alex-16 --fpgas 2 --resource 70 --method gp+a
    repro-fpga solve --app alex-16 --platform-spec fleet.json --method minlp
    repro-fpga experiment table2
    repro-fpga experiment figure3 --output figure3.csv
    repro-fpga experiment figure2 --jobs 4   # sweep on a 4-worker process pool
    repro-fpga experiment hetero-skew        # heterogeneous class-skew sweep
    repro-fpga serve --port 8000 --jobs 4 --cache-dir ~/.cache/repro-fpga
    repro-fpga serve --shards 8 --workers 4 --cache-cap 268435456 --cache-ttl 86400
    repro-fpga serve --trace --quiet          # record solve traces, no access log
    repro-fpga fleet --tenants 3 --classes 2,2   # multi-tenant fleet allocation
    repro-fpga fleet --spec fleet.json --mode exact
    repro-fpga trace --output traces.jsonl    # traced runtime table + span breakdown
    repro-fpga trace --gate                   # assert traced wall vs the perf gate

``--platform-spec`` points at a JSON platform document (written by
``repro.workloads.serialization.save_platform``); a document with a
``classes`` list describes a heterogeneous fleet of device classes.

``serve`` starts the long-running allocation service: an HTTP JSON API
(``/solve``, ``/solve_batch`` with sync and async modes, ``/jobs``,
``/health``, ``/stats``) backed by the fingerprint-keyed result cache of
:mod:`repro.service` -- optionally sharded (``--shards``), bounded
(``--cache-cap``/``--cache-ttl``) and drained by an async job worker pool
(``--workers``).

``python -m repro`` is equivalent to ``repro-fpga``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .core.exact import ExactSettings
from .core.heuristic import HeuristicSettings
from .core.solvers import METHODS, solve
from .explore.executor import ExecutorSettings, SweepExecutor, available_workers
from .reporting import experiments
from .reporting.series import FigureData

_EXPERIMENTS = (
    "table2",
    "table3",
    "table4",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "runtime",
    "hetero-skew",
)


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-fpga",
        description="Exact and heuristic allocation of multi-kernel applications to multi-FPGA platforms",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve_parser = subparsers.add_parser("solve", help="solve one allocation problem")
    solve_parser.add_argument(
        "--app",
        choices=sorted(experiments.CASE_STUDIES),
        default="alex-16",
        help="built-in application (AlexNet fx16/fp32 or VGG-16)",
    )
    solve_parser.add_argument("--fpgas", type=int, default=None, help="number of FPGAs (default: the paper's choice)")
    solve_parser.add_argument(
        "--resource",
        type=float,
        default=None,
        help="per-FPGA resource constraint in percent (default: 70)",
    )
    solve_parser.add_argument(
        "--platform-spec",
        type=Path,
        default=None,
        help=(
            "JSON platform spec replacing the built-in platform; supports "
            "heterogeneous fleets via a 'classes' list (see "
            "workloads.serialization.save_platform).  Mutually exclusive "
            "with --fpgas/--resource."
        ),
    )
    solve_parser.add_argument("--method", choices=METHODS, default="gp+a")
    solve_parser.add_argument("--t", type=float, default=0.0, help="heuristic T parameter (percent)")
    solve_parser.add_argument("--delta", type=float, default=1.0, help="heuristic delta parameter (percent)")
    solve_parser.add_argument("--max-nodes", type=int, default=50, help="branch-and-bound node limit for exact methods")
    solve_parser.add_argument("--time-limit", type=float, default=120.0, help="exact-method time limit (seconds)")

    experiment_parser = subparsers.add_parser("experiment", help="regenerate a table or figure of the paper")
    experiment_parser.add_argument("name", choices=_EXPERIMENTS)
    experiment_parser.add_argument("--output", type=Path, default=None, help="write CSV output to this path")
    experiment_parser.add_argument("--quick", action="store_true", help="use a reduced grid for a faster run")
    experiment_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweep experiments (0 = one per CPU, 1 = serial)",
    )

    serve_parser = subparsers.add_parser(
        "serve", help="run the cache-backed allocation service over HTTP"
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument("--port", type=int, default=8000, help="TCP port (0 = ephemeral)")
    serve_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="persistent worker processes for batch fan-out (0 = one per CPU, 1 = in-process)",
    )
    serve_parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="directory for the on-disk result tier (omit for a memory-only cache)",
    )
    serve_parser.add_argument(
        "--memory-capacity",
        type=int,
        default=4096,
        help="entries held by the in-memory LRU tier (per store, split across shards)",
    )
    serve_parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="independent result-store shards selected by fingerprint prefix (1 = single store)",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="background worker threads draining async /solve_batch jobs",
    )
    serve_parser.add_argument(
        "--cache-cap",
        type=int,
        default=None,
        help="byte cap on the on-disk result tier (oldest entries evicted; omit for unbounded)",
    )
    serve_parser.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        help="seconds before a cached result expires (omit for no expiry)",
    )
    serve_parser.add_argument(
        "--wal-dir",
        type=Path,
        default=None,
        help="directory for the job write-ahead log: async submissions are fsynced "
        "before the ack and replayed after a crash (omit to disable durability)",
    )
    serve_parser.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        help="async jobs admitted to the queue before submissions get 429 + "
        "Retry-After (omit for unbounded)",
    )
    serve_parser.add_argument(
        "--max-inflight-solves",
        type=int,
        default=None,
        help="concurrent synchronous solve calls before requests are shed with "
        "503 (omit for unbounded)",
    )
    serve_parser.add_argument(
        "--worker-processes",
        type=int,
        default=1,
        help="shard-group worker processes behind a routing front-end "
        "(1 = the classic single-process server; N > 1 spawns N workers, "
        "each owning its group's cache + WAL under --data-dir, routed by "
        "consistent hashing)",
    )
    serve_parser.add_argument(
        "--data-dir",
        type=Path,
        default=None,
        help="root directory of the per-group cache/WAL tree used with "
        "--worker-processes > 1 (a temporary directory is used if omitted; "
        "pass a persistent path to survive restarts)",
    )
    serve_parser.add_argument(
        "--trace",
        action="store_true",
        help="record a span trace per solve (served at /trace/<fingerprint>; "
        "also enabled by REPRO_TRACE=1)",
    )
    serve_parser.add_argument(
        "--quiet",
        action="store_true",
        help="silence the structured JSON access log on stderr",
    )

    fleet_parser = subparsers.add_parser(
        "fleet",
        help="allocate a multi-tenant fleet (shared device pool, weighted min-max fairness)",
    )
    fleet_parser.add_argument(
        "--spec",
        type=Path,
        default=None,
        help="JSON fleet document (see repro.fleet.state.fleet_to_dict); "
        "omit to use a generated synthetic fleet",
    )
    fleet_parser.add_argument(
        "--tenants", type=int, default=3, help="synthetic fleet: number of tenants"
    )
    fleet_parser.add_argument(
        "--classes",
        default="2,2",
        help="synthetic fleet: comma-separated device count per class (e.g. 2,2)",
    )
    fleet_parser.add_argument(
        "--kernels", type=int, default=2, help="synthetic fleet: kernels per tenant app"
    )
    fleet_parser.add_argument(
        "--seed", type=int, default=0, help="synthetic fleet: generator seed"
    )
    fleet_parser.add_argument(
        "--mode",
        choices=("heuristic", "exact", "both"),
        default="both",
        help="allocation mode; 'both' also prints the quality comparison",
    )

    trace_parser = subparsers.add_parser(
        "trace",
        help="solve the runtime-table rows under tracing and print span breakdowns",
    )
    trace_parser.add_argument(
        "--resource",
        type=float,
        default=70.0,
        help="per-FPGA resource constraint in percent",
    )
    trace_parser.add_argument(
        "--max-nodes",
        type=int,
        default=8,
        help="branch-and-bound node limit for the exact rows",
    )
    trace_parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="write the recorded traces as JSON lines to this path",
    )
    trace_parser.add_argument(
        "--gate",
        action="store_true",
        help="also run the benchmark-shaped runtime table traced (warm) and "
        "assert its wall clock against the newest BENCH_<rev>.json at 1.3x",
    )

    return parser


def _executor_for(jobs: int) -> SweepExecutor:
    """Build the sweep executor requested by ``--jobs``."""
    if jobs == 0:
        jobs = available_workers()
    if jobs <= 1:
        return SweepExecutor(ExecutorSettings(parallel=False))
    return SweepExecutor(ExecutorSettings(parallel=True, max_workers=jobs))


def _run_solve(args: argparse.Namespace) -> int:
    resource = 70.0 if args.resource is None else args.resource
    problem = experiments.case_study(args.app, resource_limit_percent=resource)
    if args.platform_spec is not None:
        if args.fpgas is not None or args.resource is not None:
            print(
                "--platform-spec and --fpgas/--resource are mutually exclusive",
                file=sys.stderr,
            )
            return 2
        from .workloads.serialization import SerializationError, load_platform

        try:
            platform = load_platform(args.platform_spec)
        except (OSError, SerializationError) as error:
            print(f"cannot load platform spec {args.platform_spec}: {error}", file=sys.stderr)
            return 2
        problem = type(problem)(
            pipeline=problem.pipeline, platform=platform, weights=problem.weights
        )
        print(f"platform: {platform.describe()}")
    elif args.fpgas is not None:
        problem = type(problem)(
            pipeline=problem.pipeline,
            platform=problem.platform.with_num_fpgas(args.fpgas),
            weights=problem.weights,
        )
    outcome = solve(
        problem,
        method=args.method,
        heuristic_settings=HeuristicSettings(t_percent=args.t, delta_percent=args.delta),
        exact_settings=ExactSettings(max_nodes=args.max_nodes, time_limit_seconds=args.time_limit),
    )
    print(outcome.summary())
    if outcome.solution is not None:
        print()
        print(outcome.solution.describe())
        return 0
    reason = outcome.details.get("reason", "no solution")
    print(f"no allocation found: {reason}")
    return 1


def _write_or_print(text: str, output: Path | None) -> None:
    if output is None:
        print(text)
    else:
        output.write_text(text + "\n")
        print(f"wrote {output}")


def _run_experiment(args: argparse.Namespace) -> int:
    name = args.name
    executor = _executor_for(args.jobs)
    if name == "table2":
        _write_or_print(experiments.table2().render(), args.output)
    elif name == "table3":
        _write_or_print(experiments.table3().render(), args.output)
    elif name == "table4":
        _write_or_print(experiments.table4().render(), args.output)
    elif name == "figure2":
        constraints = (50, 60, 70, 80, 90) if args.quick else tuple(range(40, 91, 5))
        t_values = (0.0, 10.0, 30.0) if args.quick else (0.0, 2.5, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0)
        figure = experiments.figure2(constraints=constraints, t_values=t_values, executor=executor)
        _emit_figure(figure, args.output)
    elif name in ("figure3", "figure4", "figure5"):
        driver = getattr(experiments, name)
        methods = ("gp+a", "minlp") if args.quick else ("gp+a", "minlp", "minlp+g")
        result = driver(methods=methods, executor=executor)
        _emit_figure(result.versus_constraint, args.output)
        _emit_figure(result.versus_utilization, None)
    elif name == "figure6":
        methods = ("gp+a", "minlp") if args.quick else ("gp+a", "minlp", "minlp+g")
        tables = experiments.figure6(methods=methods)
        text = "\n\n".join(table.render() for table in tables.values())
        _write_or_print(text, args.output)
    elif name == "runtime":
        methods = ("gp+a", "minlp") if args.quick else ("gp+a", "minlp", "minlp+g")
        _write_or_print(
            experiments.runtime_table(methods=methods, executor=executor).render(), args.output
        )
    elif name == "hetero-skew":
        skews = (0.0, 10.0, 20.0) if args.quick else (0.0, 5.0, 10.0, 15.0, 20.0, 25.0)
        figure = experiments.hetero_skew(skews=skews, executor=executor)
        _emit_figure(figure, args.output)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(name)
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    # Imported here so plain solve/experiment invocations stay lean.
    from .reporting.service import service_stats_table
    from .service import (
        AllocationService,
        ResultStore,
        ShardedResultStore,
        StoreLimits,
        run_server,
    )

    if args.worker_processes < 1:
        print("--worker-processes must be >= 1", file=sys.stderr)
        return 2
    if args.worker_processes > 1:
        return _run_serve_pool(args)
    jobs = available_workers() if args.jobs == 0 else args.jobs
    if jobs <= 1:
        executor = SweepExecutor(ExecutorSettings(parallel=False))
    else:
        executor = SweepExecutor(
            ExecutorSettings(parallel=True, max_workers=jobs), persistent=True
        )
    if args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    limits = StoreLimits(
        memory_entries=args.memory_capacity,
        disk_bytes=args.cache_cap,
        ttl_seconds=args.cache_ttl,
    )
    if args.shards == 1:
        store = ResultStore(cache_dir=args.cache_dir, limits=limits)
    else:
        store = ShardedResultStore(
            cache_dir=args.cache_dir, num_shards=args.shards, limits=limits
        )
    service = AllocationService(
        store=store,
        executor=executor,
        job_workers=args.workers,
        tracing=True if args.trace else None,
        wal=args.wal_dir,
        max_queue_depth=args.max_queue_depth,
        max_inflight_solves=args.max_inflight_solves,
    )
    tier = f"memory+disk ({args.cache_dir})" if args.cache_dir else "memory-only"
    durability = f"wal ({args.wal_dir})" if args.wal_dir else "none"
    print(
        f"result cache: {tier}; shards: {args.shards}; batch workers: {jobs}; "
        f"async job workers: {args.workers}; tracing: "
        f"{'on' if service.tracing else 'off'}; durability: {durability}",
        flush=True,
    )
    if service.recovered_jobs:
        print(
            f"wal recovery: re-enqueued {service.recovered_jobs} unfinished "
            f"job(s) from {args.wal_dir}",
            flush=True,
        )
    try:
        run_server(service, host=args.host, port=args.port, quiet=args.quiet)
    finally:
        print(service_stats_table(service.stats()).render())
    return 0


def _run_serve_pool(args: argparse.Namespace) -> int:
    """``repro serve --worker-processes N``: the pool + router topology."""
    import json as _json
    import tempfile

    from .service import RouterService, WorkerPool, WorkerSpec, run_router

    if args.cache_dir is not None or args.wal_dir is not None:
        print(
            "--cache-dir/--wal-dir apply to the single-process server; with "
            "--worker-processes > 1 each group owns cache/ and wal/ under "
            "--data-dir",
            file=sys.stderr,
        )
        return 2
    if args.shards < 1 or args.workers < 1:
        print("--shards and --workers must be >= 1", file=sys.stderr)
        return 2
    data_dir = args.data_dir
    if data_dir is None:
        data_dir = Path(tempfile.mkdtemp(prefix="repro-pool-"))
        print(
            f"warning: no --data-dir given; group caches/WALs live in the "
            f"temporary directory {data_dir} and do not survive restarts",
            file=sys.stderr,
        )
    spec = WorkerSpec(
        group=0,
        data_dir="",
        host=args.host,
        shards=args.shards,
        job_workers=args.workers,
        memory_capacity=args.memory_capacity,
        cache_cap=args.cache_cap,
        cache_ttl=args.cache_ttl,
        max_queue_depth=args.max_queue_depth,
        max_inflight_solves=args.max_inflight_solves,
        tracing=True if args.trace else None,
        quiet=True,
    )

    def on_event(event: str, group: int) -> None:
        print(
            _json.dumps({"event": f"worker_{event}", "group": group}),
            file=sys.stderr,
            flush=True,
        )

    pool = WorkerPool(
        args.worker_processes,
        data_dir,
        spec=spec,
        on_event=None if args.quiet else on_event,
    )
    pool.start()
    router = RouterService(pool)
    print(
        f"worker pool: {args.worker_processes} shard-group processes under "
        f"{data_dir}; per-worker shards: {args.shards}; async job workers: "
        f"{args.workers}; durability: per-group wal",
        flush=True,
    )
    run_router(router, host=args.host, port=args.port, quiet=args.quiet)
    return 0


def _run_fleet(args: argparse.Namespace) -> int:
    """``repro fleet``: allocate a multi-tenant fleet and print the tables."""
    import json as _json

    from .fleet import FleetSolveMemo, allocate_fleet, fleet_from_dict
    from .reporting.fleet import (
        fairness_table,
        fleet_allocation_table,
        fleet_comparison_table,
    )
    from .workloads.serialization import SerializationError
    from .workloads.tenants import synthetic_fleet

    if args.spec is not None:
        try:
            fleet = fleet_from_dict(_json.loads(args.spec.read_text()))
        except (OSError, ValueError, SerializationError) as error:
            print(f"cannot load fleet spec {args.spec}: {error}", file=sys.stderr)
            return 2
    else:
        try:
            class_counts = tuple(int(part) for part in args.classes.split(","))
        except ValueError:
            print(f"--classes must be comma-separated integers, got {args.classes!r}", file=sys.stderr)
            return 2
        fleet = synthetic_fleet(
            num_tenants=args.tenants,
            class_counts=class_counts,
            kernels_per_tenant=args.kernels,
            seed=args.seed,
        )
    if not fleet.tenants:
        print("the fleet has no tenants to allocate", file=sys.stderr)
        return 2
    print(fleet.describe())
    print()
    memo = FleetSolveMemo()  # shared: the exact search reuses heuristic solves
    modes = ("heuristic", "exact") if args.mode == "both" else (args.mode,)
    outcomes = {}
    for mode in modes:
        outcome = allocate_fleet(fleet, mode=mode, memo=memo)
        outcomes[mode] = outcome
        print(fleet_allocation_table(outcome).render())
        print(fairness_table(outcome, title=f"Fairness ({mode})").render())
        print()
    if args.mode == "both":
        print(fleet_comparison_table(outcomes["heuristic"], outcomes["exact"]).render())
    final = outcomes[modes[-1]]
    if not final.succeeded:
        print("no feasible fleet allocation found", file=sys.stderr)
        return 1
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    """``repro trace``: traced runtime-table rows + span-breakdown tables."""
    from .core.exact import ExactSettings as _ExactSettings
    from .obs.trace import write_traces_jsonl
    from .reporting.trace import (
        span_breakdown_table,
        traced_runtime_rows,
        traced_runtime_table,
    )

    rows = traced_runtime_rows(
        resource_constraint=args.resource,
        exact_settings=_ExactSettings(
            max_nodes=args.max_nodes, time_limit_seconds=120.0
        ),
    )
    for row in rows:
        title = f"{row['case']} / {row['method']} ({row['wall_seconds']:.3f} s)"
        print(span_breakdown_table(row["trace"], title=title).render())
        print()
    print(traced_runtime_table(rows).render())
    if args.output is not None:
        write_traces_jsonl([row["trace"] for row in rows], str(args.output))
        print(f"wrote {args.output}")

    # Acceptance bar: every row's top-level phases cover >= 90% of its wall.
    exit_code = 0
    uncovered = [row for row in rows if row["trace"].coverage() < 0.9]
    for row in uncovered:
        print(
            f"FAIL: {row['case']}/{row['method']} phases cover only "
            f"{100.0 * row['trace'].coverage():.1f}% of the wall clock",
            file=sys.stderr,
        )
        exit_code = 1

    if args.gate:
        exit_code = max(exit_code, _run_trace_gate())
    return exit_code


def _run_trace_gate() -> int:
    """Assert the traced, benchmark-shaped runtime table against the newest
    ``BENCH_<rev>.json`` snapshot at the perf gate's 1.3x threshold.

    Mirrors the benchmark's conditions: same kwargs (``max_nodes=3``) and a
    warm process (one untraced warm-up call), so the comparison isolates
    tracing overhead rather than cold-start costs.
    """
    import json
    import time as _time

    from .core.exact import ExactSettings as _ExactSettings
    from .obs.trace import start_trace
    from .reporting.experiments import runtime_table

    snapshots = sorted(
        Path("benchmarks/results").glob("BENCH_*.json"),
        key=lambda path: json.loads(path.read_text()).get("unix_time", 0.0),
    )
    if not snapshots:
        print("trace gate: no benchmarks/results/BENCH_*.json snapshot found", file=sys.stderr)
        return 1
    snapshot_path = snapshots[-1]
    snapshot = json.loads(snapshot_path.read_text())
    key = "benchmarks/test_runtime_comparison.py::test_runtime_table"
    entry = snapshot.get("benchmarks", {}).get(key)
    if entry is None:
        print(f"trace gate: {snapshot_path} has no {key} entry", file=sys.stderr)
        return 1
    budget = 1.3 * float(entry["mean"])

    kwargs = dict(
        cases=("alex-16", "alex-32", "vgg-16"),
        methods=("gp+a", "minlp", "minlp+g"),
        resource_constraint=70.0,
        repetitions=1,
        exact_settings=_ExactSettings(max_nodes=3, time_limit_seconds=120.0),
    )
    runtime_table(**kwargs)  # warm-up, untraced (the benchmark runs warm)
    with start_trace("runtime_table"):
        start = _time.perf_counter()
        runtime_table(**kwargs)
        elapsed = _time.perf_counter() - start
    verdict = "OK" if elapsed <= budget else "FAIL"
    print(
        f"trace gate [{verdict}]: traced runtime table {elapsed * 1e3:.1f} ms vs "
        f"1.3x snapshot budget {budget * 1e3:.1f} ms ({snapshot_path.name})"
    )
    return 0 if elapsed <= budget else 1


def _emit_figure(figure: FigureData, output: Path | None) -> None:
    if output is not None:
        output.write_text(figure.to_csv() + "\n")
        print(f"wrote {output}")
    print(figure.to_ascii())


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "solve":
        return _run_solve(args)
    if args.command == "experiment":
        return _run_experiment(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "fleet":
        return _run_fleet(args)
    if args.command == "trace":
        return _run_trace(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
