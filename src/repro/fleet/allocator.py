"""Fleet allocators: joint exact search and partition-then-allocate heuristic.

Both allocators carve the fleet's device-class pool into disjoint per-tenant
shares and solve each tenant's application on its share with the *existing*
per-app machinery (:func:`repro.core.solvers.solve`); they differ in how the
carve is chosen:

* :func:`allocate_heuristic` apportions each class's devices by weighted
  demand (largest-remainder rounding), solves every tenant with the gp+a
  heuristic, then runs a residual-redistribution pass: while moving one
  device from a slack tenant to the worst-off tenant improves the fleet
  objective, move it.  Cost: a handful of per-app heuristic solves -- this
  is the production path.

* :func:`allocate_exact` searches *all* partitions of the pool
  (depth-first over per-tenant class-count vectors, the last tenant taking
  the remainder), solving each tenant share with the per-app exact solver
  and pruning with two lower bounds: the running max of already-assigned
  tenants, and the GP-relaxation bound ``weight * alpha * II_hat`` of every
  unassigned tenant granted all remaining devices (the GP step's relaxed II
  is a valid lower bound on the integer objective because ``beta * phi >= 0``
  and the aggregated relaxation is monotone in capacity).  The search is
  **seeded with the heuristic's allocation as incumbent**, so the exact
  result is never worse than the heuristic -- a guarantee the per-app gp+a
  solver alone cannot give, because its objective is not monotone in
  platform size.

The fleet objective is the weighted min-max of
:mod:`repro.fleet.state`: ``max_t weight_t * (alpha_t II_t + beta_t phi_t)``,
``inf`` when any tenant's share is infeasible (or empty).

A fleet with exactly **one tenant** bypasses the carve entirely: the tenant
receives the whole pool and the per-app solver runs on a problem equal to
the standalone one, so the outcome document is byte-identical to the
existing per-app path (the differential suite pins this).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from itertools import product
from typing import Any, Iterator, Mapping

from ..core.gp_step import solve_gp_step
from ..core.solution import SolveOutcome, SolveStatus
from ..core.solvers import METHODS, solve
from ..gp.errors import InfeasibleError
from .state import ClassShare, FleetState, Tenant

#: Fleet allocation modes served by :func:`allocate_fleet`.
FLEET_MODES: tuple[str, ...] = ("heuristic", "exact")

#: Objective slack below which a redistribution move does not count as an
#: improvement (guards against float-noise ping-pong between shares).
_IMPROVEMENT_EPS = 1e-12


@dataclass(frozen=True)
class FleetSettings:
    """Knobs of the fleet allocators.

    ``heuristic_method`` / ``exact_method`` name the per-tenant solver of
    each mode; ``redistribution_rounds`` bounds the heuristic's residual
    pass (each round moves at most one device); ``max_nodes`` is a safety
    valve on the exact partition search -- when exceeded the search stops
    and the incumbent (never worse than the heuristic) is returned with
    ``details["search_truncated"] = True``.
    """

    heuristic_method: str = "gp+a"
    exact_method: str = "minlp+g"
    redistribution_rounds: int = 16
    max_nodes: int = 20_000

    def __post_init__(self) -> None:
        for name in ("heuristic_method", "exact_method"):
            method = getattr(self, name)
            if method not in METHODS:
                raise ValueError(f"unknown {name} {method!r}; options: {METHODS}")
        if self.redistribution_rounds < 0:
            raise ValueError("redistribution_rounds must be >= 0")
        if self.max_nodes < 1:
            raise ValueError("max_nodes must be >= 1")


class FleetSolveMemo:
    """Memo of per-``(tenant, share, method)`` solves.

    Shared between the heuristic carve, the redistribution pass and the
    exact partition search -- and, in the service, across successive
    arrivals/departures, which is what makes incremental re-carving cheap:
    a tenant whose share did not change is answered from the memo, not
    re-solved.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple[str, ClassShare, str], SolveOutcome] = {}
        self.solves = 0
        self.hits = 0

    def solve(
        self, fleet: FleetState, tenant: Tenant, share: ClassShare, method: str
    ) -> SolveOutcome:
        key = (tenant.id, tuple(share), method)
        outcome = self._entries.get(key)
        if outcome is not None:
            self.hits += 1
            return outcome
        problem = fleet.problem_for(tenant.id, share)
        if problem is None:
            outcome = _zero_share_outcome(method)
        else:
            outcome = solve(problem, method=method)
        self._entries[key] = outcome
        self.solves += 1
        return outcome

    def forget_tenant(self, tenant_id: str) -> None:
        """Drop every memoised solve of one tenant (app or weights changed)."""
        for key in [key for key in self._entries if key[0] == tenant_id]:
            del self._entries[key]


def _zero_share_outcome(method: str) -> SolveOutcome:
    return SolveOutcome(
        method=method,
        status=SolveStatus.INFEASIBLE,
        solution=None,
        runtime_seconds=0.0,
        details={"reason": "no devices allocated to this tenant"},
    )


# --------------------------------------------------------------------------- #
# Results
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TenantAllocation:
    """One tenant's slice of a fleet allocation."""

    tenant_id: str
    weight: float
    share: ClassShare
    outcome: SolveOutcome

    @property
    def devices(self) -> int:
        return sum(self.share)

    @property
    def weighted_objective(self) -> float:
        """``weight * (alpha II + beta phi)``; ``inf`` when infeasible."""
        return self.weight * self.outcome.objective


@dataclass(frozen=True)
class FleetOutcome:
    """Result of one fleet allocation (either mode)."""

    mode: str
    fleet_name: str
    allocations: tuple[TenantAllocation, ...]
    objective: float
    lower_bound: float
    runtime_seconds: float
    nodes_explored: int = 0
    tenant_solves: int = 0
    details: Mapping[str, Any] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        return math.isfinite(self.objective)

    def allocation(self, tenant_id: str) -> TenantAllocation:
        for allocation in self.allocations:
            if allocation.tenant_id == tenant_id:
                return allocation
        raise KeyError(f"no allocation for tenant {tenant_id!r}")

    def shares(self) -> dict[str, ClassShare]:
        return {a.tenant_id: a.share for a in self.allocations}

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible document (the /fleet wire + cache format)."""
        return {
            "mode": self.mode,
            "fleet": self.fleet_name,
            "objective": _wire_number(self.objective),
            "lower_bound": _wire_number(self.lower_bound),
            "runtime_seconds": self.runtime_seconds,
            "nodes_explored": self.nodes_explored,
            "tenant_solves": self.tenant_solves,
            "details": dict(self.details),
            "tenants": [
                {
                    "id": a.tenant_id,
                    "weight": a.weight,
                    "share": list(a.share),
                    "weighted_objective": _wire_number(a.weighted_objective),
                    "outcome": a.outcome.to_dict(),
                }
                for a in self.allocations
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any], fleet: FleetState) -> "FleetOutcome":
        """Rebuild an outcome, rebinding solutions to the fleet's problems."""
        allocations = []
        for entry in payload["tenants"]:
            share = tuple(int(count) for count in entry["share"])
            problem = fleet.problem_for(str(entry["id"]), share)
            outcome = SolveOutcome.from_dict(entry["outcome"], problem=problem)
            allocations.append(
                TenantAllocation(
                    tenant_id=str(entry["id"]),
                    weight=float(entry["weight"]),
                    share=share,
                    outcome=outcome,
                )
            )
        return cls(
            mode=str(payload["mode"]),
            fleet_name=str(payload.get("fleet", fleet.name)),
            allocations=tuple(allocations),
            objective=_unwire_number(payload.get("objective")),
            lower_bound=_unwire_number(payload.get("lower_bound")),
            runtime_seconds=float(payload.get("runtime_seconds", 0.0)),
            nodes_explored=int(payload.get("nodes_explored", 0)),
            tenant_solves=int(payload.get("tenant_solves", 0)),
            details=dict(payload.get("details", {})),
        )


def _wire_number(value: float) -> float | None:
    return None if not math.isfinite(value) else float(value)


def _unwire_number(value: Any) -> float:
    return math.inf if value is None else float(value)


# --------------------------------------------------------------------------- #
# Demand carving
# --------------------------------------------------------------------------- #
def demand_weight(tenant: Tenant) -> float:
    """The carve weight of one tenant: priority times aggregate work.

    With balanced CU counts the initiation interval of a tenant scales
    roughly as (sum_k cost_k * wcet_k) / capacity, so equalising the
    *weighted* II suggests devices proportional to
    ``weight * sum_k cost_k * wcet_k`` where ``cost_k`` is the binding
    per-CU percentage of kernel ``k``.  The carve only seeds the
    heuristic; the redistribution pass (and the exact search) correct it.
    """
    work = 0.0
    for kernel in tenant.pipeline:
        cost = max(kernel.resources.max_component(), kernel.bandwidth)
        work += max(cost, 1e-9) * kernel.wcet_ms
    return tenant.weight * work


def _apportion(total: int, weights: list[float]) -> list[int]:
    """Largest-remainder apportionment of ``total`` units by weight."""
    mass = sum(weights)
    if mass <= 0:
        weights = [1.0] * len(weights)
        mass = float(len(weights))
    quotas = [total * weight / mass for weight in weights]
    shares = [int(quota) for quota in quotas]
    leftover = total - sum(shares)
    by_fraction = sorted(
        range(len(quotas)), key=lambda i: (shares[i] - quotas[i], i)
    )
    for index in by_fraction[:leftover]:
        shares[index] += 1
    return shares


def carve_shares(fleet: FleetState) -> dict[str, ClassShare]:
    """Initial weighted-demand carve of the pool (per class, independently)."""
    weights = [demand_weight(tenant) for tenant in fleet.tenants]
    per_class = [
        _apportion(device_class.count, weights) for device_class in fleet.classes
    ]
    return {
        tenant.id: tuple(per_class[c][t] for c in range(len(fleet.classes)))
        for t, tenant in enumerate(fleet.tenants)
    }


# --------------------------------------------------------------------------- #
# Quality ordering
# --------------------------------------------------------------------------- #
def _quality(weighted_objectives: list[float]) -> tuple[int, float]:
    """Lexicographic quality of an allocation: infeasible count, then the
    worst *feasible* weighted objective.  Ordering by this tuple lets the
    redistribution pass make progress even while more than one tenant is
    still infeasible (the plain max would sit at ``inf`` and see no
    improvement from fixing tenants one at a time)."""
    infeasible = sum(1 for value in weighted_objectives if math.isinf(value))
    finite = [value for value in weighted_objectives if math.isfinite(value)]
    return (infeasible, max(finite) if finite else 0.0)


def _fleet_objective(weighted_objectives: list[float]) -> float:
    return max(weighted_objectives) if weighted_objectives else math.inf


def _gp_bound(fleet: FleetState, tenant: Tenant, share: ClassShare) -> float:
    """Lower bound on ``weight * objective`` of one tenant on one share.

    ``alpha * II_hat`` of the aggregated GP relaxation never exceeds the
    integer objective (``beta * phi >= 0``); an infeasible relaxation means
    the share cannot host the app at all.  ``solve_gp_step`` memoises per
    problem, so repeated bounds are cheap.
    """
    problem = fleet.problem_for(tenant.id, share)
    if problem is None:
        return math.inf
    try:
        result = solve_gp_step(problem)
    except InfeasibleError:
        return math.inf
    return tenant.weight * tenant.weights.alpha * result.ii_hat


def _fleet_lower_bound(fleet: FleetState) -> float:
    """Valid lower bound on the fleet objective over *all* partitions.

    Any tenant's share is a subset of the pool, and the aggregated GP
    relaxation is monotone in capacity, so each tenant's objective is at
    least its GP bound on the *whole* pool -- hence the fleet min-max is at
    least the max of those bounds.
    """
    full = fleet.class_counts
    return max(
        (_gp_bound(fleet, tenant, full) for tenant in fleet.tenants),
        default=math.inf,
    )


# --------------------------------------------------------------------------- #
# Heuristic: carve + per-app gp+a + residual redistribution
# --------------------------------------------------------------------------- #
def allocate_heuristic(
    fleet: FleetState,
    settings: FleetSettings | None = None,
    memo: FleetSolveMemo | None = None,
) -> FleetOutcome:
    """Partition-then-allocate heuristic (the production path)."""
    settings = settings or FleetSettings()
    memo = memo if memo is not None else FleetSolveMemo()
    if not fleet.tenants:
        raise ValueError("cannot allocate a fleet with no tenants")
    start = time.perf_counter()
    solves_before = memo.solves
    method = settings.heuristic_method

    if len(fleet.tenants) == 1:
        # Single tenant: the whole pool, solved exactly like the per-app
        # path (byte-identical outcome documents; the differential pins it).
        tenant = fleet.tenants[0]
        share = fleet.class_counts
        outcome = memo.solve(fleet, tenant, share, method)
        return _finish(
            fleet,
            mode="heuristic",
            shares={tenant.id: share},
            outcomes={tenant.id: outcome},
            start=start,
            tenant_solves=memo.solves - solves_before,
            details={"single_tenant_fast_path": True},
        )

    shares = carve_shares(fleet)
    outcomes = {
        tenant.id: memo.solve(fleet, tenant, shares[tenant.id], method)
        for tenant in fleet.tenants
    }
    moves = 0
    for _ in range(settings.redistribution_rounds):
        move = _best_move(fleet, shares, outcomes, memo, method)
        if move is None:
            break
        donor_id, receiver_id, class_index = move
        shares[donor_id] = _adjust(shares[donor_id], class_index, -1)
        shares[receiver_id] = _adjust(shares[receiver_id], class_index, +1)
        outcomes[donor_id] = memo.solve(
            fleet, fleet.tenant(donor_id), shares[donor_id], method
        )
        outcomes[receiver_id] = memo.solve(
            fleet, fleet.tenant(receiver_id), shares[receiver_id], method
        )
        moves += 1
    return _finish(
        fleet,
        mode="heuristic",
        shares=shares,
        outcomes=outcomes,
        start=start,
        tenant_solves=memo.solves - solves_before,
        details={"redistribution_moves": moves},
    )


def _adjust(share: ClassShare, class_index: int, delta: int) -> ClassShare:
    updated = list(share)
    updated[class_index] += delta
    return tuple(updated)


def _weighted(fleet: FleetState, outcomes: Mapping[str, SolveOutcome]) -> list[float]:
    return [
        tenant.weight * outcomes[tenant.id].objective for tenant in fleet.tenants
    ]


def _best_move(
    fleet: FleetState,
    shares: dict[str, ClassShare],
    outcomes: dict[str, SolveOutcome],
    memo: FleetSolveMemo,
    method: str,
) -> tuple[str, str, int] | None:
    """The single device move that most improves the allocation, if any.

    Candidates move one device of one class from any donor to the current
    worst-off tenant.  Returns ``(donor_id, receiver_id, class_index)`` or
    ``None`` when no move improves the lexicographic quality.
    """
    current = _weighted(fleet, outcomes)
    receiver_index = max(range(len(current)), key=lambda i: (current[i], -i))
    receiver = fleet.tenants[receiver_index]
    best: tuple[str, str, int] | None = None
    best_quality = _quality(current)
    for donor in fleet.tenants:
        if donor.id == receiver.id:
            continue
        for class_index in range(len(fleet.classes)):
            if shares[donor.id][class_index] < 1:
                continue
            donor_share = _adjust(shares[donor.id], class_index, -1)
            receiver_share = _adjust(shares[receiver.id], class_index, +1)
            donor_outcome = memo.solve(fleet, donor, donor_share, method)
            receiver_outcome = memo.solve(fleet, receiver, receiver_share, method)
            candidate = list(current)
            candidate[fleet.tenants.index(donor)] = (
                donor.weight * donor_outcome.objective
            )
            candidate[receiver_index] = receiver.weight * receiver_outcome.objective
            quality = _quality(candidate)
            if quality[0] < best_quality[0] or (
                quality[0] == best_quality[0]
                and quality[1] < best_quality[1] - _IMPROVEMENT_EPS
            ):
                best_quality = quality
                best = (donor.id, receiver.id, class_index)
    return best


def _finish(
    fleet: FleetState,
    mode: str,
    shares: Mapping[str, ClassShare],
    outcomes: Mapping[str, SolveOutcome],
    start: float,
    tenant_solves: int,
    details: Mapping[str, Any],
    nodes_explored: int = 0,
    lower_bound: float | None = None,
) -> FleetOutcome:
    allocations = tuple(
        TenantAllocation(
            tenant_id=tenant.id,
            weight=tenant.weight,
            share=tuple(shares[tenant.id]),
            outcome=outcomes[tenant.id],
        )
        for tenant in fleet.tenants
    )
    weighted = [allocation.weighted_objective for allocation in allocations]
    return FleetOutcome(
        mode=mode,
        fleet_name=fleet.name,
        allocations=allocations,
        objective=_fleet_objective(weighted),
        lower_bound=(
            lower_bound if lower_bound is not None else _fleet_lower_bound(fleet)
        ),
        runtime_seconds=time.perf_counter() - start,
        nodes_explored=nodes_explored,
        tenant_solves=tenant_solves,
        details=dict(details),
    )


# --------------------------------------------------------------------------- #
# Exact: heuristic-seeded partition search
# --------------------------------------------------------------------------- #
def allocate_exact(
    fleet: FleetState,
    settings: FleetSettings | None = None,
    memo: FleetSolveMemo | None = None,
) -> FleetOutcome:
    """Exhaustive partition search, never worse than the heuristic."""
    settings = settings or FleetSettings()
    memo = memo if memo is not None else FleetSolveMemo()
    if not fleet.tenants:
        raise ValueError("cannot allocate a fleet with no tenants")
    start = time.perf_counter()
    solves_before = memo.solves
    method = settings.exact_method

    if len(fleet.tenants) == 1:
        tenant = fleet.tenants[0]
        share = fleet.class_counts
        outcome = memo.solve(fleet, tenant, share, method)
        return _finish(
            fleet,
            mode="exact",
            shares={tenant.id: share},
            outcomes={tenant.id: outcome},
            start=start,
            tenant_solves=memo.solves - solves_before,
            details={"single_tenant_fast_path": True, "optimal": True},
        )

    # Seed the incumbent with the heuristic allocation: gp+a is not monotone
    # in platform size, so without the seed a truncated search could return
    # something worse than the heuristic.  With it, "exact never worse than
    # heuristic" holds unconditionally.
    seed = allocate_heuristic(fleet, settings=settings, memo=memo)
    incumbent_shares = seed.shares()
    incumbent_outcomes = {a.tenant_id: a.outcome for a in seed.allocations}
    incumbent_objective = seed.objective

    tenants = fleet.tenants
    nodes = 0
    truncated = False
    assigned_shares: dict[str, ClassShare] = {}
    assigned_outcomes: dict[str, SolveOutcome] = {}

    def remaining_bound(remaining: ClassShare, depth: int) -> float:
        """Optimistic bound of the unassigned tenants: each could at best
        receive *all* remaining devices."""
        return max(
            (
                _gp_bound(fleet, tenants[index], remaining)
                for index in range(depth, len(tenants))
            ),
            default=-math.inf,
        )

    def search(depth: int, remaining: ClassShare, partial_max: float) -> None:
        nonlocal nodes, truncated, incumbent_shares, incumbent_outcomes
        nonlocal incumbent_objective
        if truncated:
            return
        if partial_max >= incumbent_objective:
            return
        if remaining_bound(remaining, depth) >= incumbent_objective:
            return
        tenant = tenants[depth]
        last = depth == len(tenants) - 1
        for share in _enumerate_shares(remaining, last):
            nodes += 1
            if nodes > settings.max_nodes:
                truncated = True
                return
            outcome = memo.solve(fleet, tenant, share, method)
            weighted = tenant.weight * outcome.objective
            branch_max = max(partial_max, weighted)
            if branch_max >= incumbent_objective:
                continue
            assigned_shares[tenant.id] = share
            assigned_outcomes[tenant.id] = outcome
            if last:
                incumbent_shares = dict(assigned_shares)
                incumbent_outcomes = dict(assigned_outcomes)
                incumbent_objective = branch_max
            else:
                left = tuple(
                    have - taken for have, taken in zip(remaining, share)
                )
                search(depth + 1, left, branch_max)
            del assigned_shares[tenant.id]
            del assigned_outcomes[tenant.id]
            if truncated:
                return

    search(0, fleet.class_counts, -math.inf)
    return _finish(
        fleet,
        mode="exact",
        shares=incumbent_shares,
        outcomes=incumbent_outcomes,
        start=start,
        tenant_solves=memo.solves - solves_before,
        nodes_explored=nodes,
        details={
            "optimal": not truncated,
            "search_truncated": truncated,
            "seed_objective": _wire_number(seed.objective),
        },
    )


def _enumerate_shares(remaining: ClassShare, last: bool) -> Iterator[ClassShare]:
    """Class-count vectors one tenant can take from the remaining pool.

    The last tenant takes the whole remainder (partitions are exhaustive,
    devices are never deliberately idled -- idle capacity can only lower
    no tenant's objective, so an optimal partition exists among these).
    """
    if last:
        yield remaining
        return
    yield from product(*(range(count + 1) for count in remaining))


# --------------------------------------------------------------------------- #
# Front door
# --------------------------------------------------------------------------- #
def allocate_fleet(
    fleet: FleetState,
    mode: str = "heuristic",
    settings: FleetSettings | None = None,
    memo: FleetSolveMemo | None = None,
) -> FleetOutcome:
    """Allocate the fleet with the named mode (``"heuristic"`` / ``"exact"``)."""
    if mode not in FLEET_MODES:
        raise ValueError(f"unknown fleet mode {mode!r}; options: {FLEET_MODES}")
    if mode == "heuristic":
        return allocate_heuristic(fleet, settings=settings, memo=memo)
    return allocate_exact(fleet, settings=settings, memo=memo)
