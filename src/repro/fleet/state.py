"""Fleet state: many tenants' applications sharing one pool of device classes.

The paper allocates one multi-kernel application onto one platform; a
production fleet (ROADMAP item 2) serves *N tenants* whose applications
compete for a single shared pool of FPGAs, grouped into device classes
exactly as in :mod:`repro.platform.multi_fpga`.  This module holds the
declarative side of that problem:

* :class:`Tenant` -- one application (a characterised pipeline), its
  per-app objective weights, and a fleet-level *priority weight* used by
  the fairness objective (see below);
* :class:`FleetState` -- an immutable snapshot of the fleet: the tenants
  plus the shared pool of device classes.  Tenant arrival and departure
  are value operations (:meth:`FleetState.with_tenant` /
  :meth:`FleetState.without_tenant`), so the service can hold the current
  state behind a lock and re-allocate from snapshots.

The fairness objective
----------------------
A fleet allocation carves the device-class pool into disjoint per-tenant
shares and solves each tenant's application on its share with the per-app
machinery.  Its quality is the **weighted min-max objective**

    ``max_t  weight_t * g_t``,   ``g_t = alpha_t * II_t + beta_t * phi_t``

i.e. the worst weighted per-tenant goal value.  A tenant with a larger
``weight`` (a tighter SLA) contributes more per unit of objective, so the
optimiser gives it more devices until its weighted goal stops dominating.
``weight`` is relative: doubling every tenant's weight changes nothing.

Capacity units follow the platform model: every class's caps -- and every
kernel's per-CU costs -- are expressed in percent of the fleet's reference
device (the device of the first class), so a tenant sub-platform built
from any subset of classes stays in consistent units.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping, Sequence

from ..core.objective import ObjectiveWeights
from ..core.problem import AllocationProblem
from ..platform.multi_fpga import DeviceClass, MultiFPGAPlatform
from ..workloads.pipeline import Pipeline
from ..workloads.serialization import (
    FORMAT_VERSION,
    SerializationError,
    device_class_from_dict,
    device_class_to_dict,
    pipeline_from_dict,
    pipeline_to_dict,
)

#: A per-tenant device share: how many devices of each fleet class the
#: tenant owns, indexed positionally like ``FleetState.classes``.
ClassShare = tuple[int, ...]


@dataclass(frozen=True)
class Tenant:
    """One tenant: an application, its objective weights, and a priority.

    Parameters
    ----------
    id:
        Stable tenant identifier (the arrival/departure API keys on it).
    pipeline:
        The tenant's multi-kernel application.
    weight:
        Fleet-level priority/SLA weight (> 0).  The fleet allocator
        minimises the maximum of ``weight * per-tenant objective``, so a
        heavier tenant is driven to a proportionally better goal value.
    weights:
        The tenant's own ``alpha``/``beta`` objective weights, exactly as
        in the per-app :class:`~repro.core.problem.AllocationProblem`.
    """

    id: str
    pipeline: Pipeline
    weight: float = 1.0
    weights: ObjectiveWeights = ObjectiveWeights()

    def __post_init__(self) -> None:
        if not self.id:
            raise ValueError("a tenant needs a non-empty id")
        if not self.weight > 0:
            raise ValueError(f"tenant weight must be positive, got {self.weight}")

    def problem_on(self, platform: MultiFPGAPlatform) -> AllocationProblem:
        """The tenant's per-app allocation problem on a given platform."""
        return AllocationProblem(
            pipeline=self.pipeline, platform=platform, weights=self.weights
        )


@dataclass(frozen=True)
class FleetState:
    """An immutable snapshot of the fleet: tenants + shared device pool."""

    tenants: tuple[Tenant, ...]
    classes: tuple[DeviceClass, ...]
    name: str = "fleet"

    def __post_init__(self) -> None:
        tenants = tuple(self.tenants)
        classes = tuple(self.classes)
        if not classes:
            raise ValueError("a fleet needs at least one device class")
        seen: set[str] = set()
        for tenant in tenants:
            if tenant.id in seen:
                raise ValueError(f"duplicate tenant id {tenant.id!r}")
            seen.add(tenant.id)
        object.__setattr__(self, "tenants", tenants)
        object.__setattr__(self, "classes", classes)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def tenant_ids(self) -> tuple[str, ...]:
        return tuple(tenant.id for tenant in self.tenants)

    def tenant(self, tenant_id: str) -> Tenant:
        for tenant in self.tenants:
            if tenant.id == tenant_id:
                return tenant
        raise KeyError(f"no tenant {tenant_id!r} in fleet {self.name!r}")

    @property
    def class_counts(self) -> ClassShare:
        """Device count of every class (the full pool, positionally)."""
        return tuple(device_class.count for device_class in self.classes)

    @property
    def total_devices(self) -> int:
        return sum(self.class_counts)

    def full_platform(self) -> MultiFPGAPlatform:
        """The whole pool as one platform (what a lone tenant would get)."""
        return MultiFPGAPlatform.from_classes(self.classes, name=self.name)

    # ------------------------------------------------------------------ #
    # Arrival / departure (value operations)
    # ------------------------------------------------------------------ #
    def with_tenant(self, tenant: Tenant) -> "FleetState":
        """A new fleet with one more tenant (arrival)."""
        if any(existing.id == tenant.id for existing in self.tenants):
            raise ValueError(f"tenant {tenant.id!r} is already in the fleet")
        return replace(self, tenants=self.tenants + (tenant,))

    def without_tenant(self, tenant_id: str) -> "FleetState":
        """A new fleet without the named tenant (departure)."""
        remaining = tuple(tenant for tenant in self.tenants if tenant.id != tenant_id)
        if len(remaining) == len(self.tenants):
            raise KeyError(f"no tenant {tenant_id!r} in fleet {self.name!r}")
        return replace(self, tenants=remaining)

    # ------------------------------------------------------------------ #
    # Share -> platform / problem
    # ------------------------------------------------------------------ #
    def platform_for_share(self, share: Sequence[int]) -> MultiFPGAPlatform | None:
        """The sub-platform a device share describes, ``None`` if empty.

        ``share[c]`` devices of class ``c``; classes with zero devices are
        dropped.  A share covering the whole pool reproduces
        :meth:`full_platform` exactly (the single-tenant identity path
        rests on this).
        """
        share = tuple(int(count) for count in share)
        if len(share) != len(self.classes):
            raise ValueError(
                f"share has {len(share)} entries for {len(self.classes)} classes"
            )
        if any(count < 0 for count in share):
            raise ValueError(f"share counts must be >= 0, got {share}")
        if any(
            count > device_class.count
            for count, device_class in zip(share, self.classes)
        ):
            raise ValueError(f"share {share} exceeds the pool {self.class_counts}")
        carved = tuple(
            replace(device_class, count=count)
            for device_class, count in zip(self.classes, share)
            if count > 0
        )
        if not carved:
            return None
        return MultiFPGAPlatform.from_classes(carved, name=self.name)

    def problem_for(self, tenant_id: str, share: Sequence[int]) -> AllocationProblem | None:
        """One tenant's per-app problem on its share (``None`` if empty)."""
        platform = self.platform_for_share(share)
        if platform is None:
            return None
        return self.tenant(tenant_id).problem_on(platform)

    def describe(self) -> str:
        pool = " + ".join(device_class.describe() for device_class in self.classes)
        tenants = ", ".join(
            f"{tenant.id}(w={tenant.weight:g})" for tenant in self.tenants
        )
        return f"{self.name}: [{pool}] serving [{tenants or 'no tenants'}]"


# --------------------------------------------------------------------------- #
# Wire format (the /fleet endpoints and the CLI speak this)
# --------------------------------------------------------------------------- #
def tenant_to_dict(tenant: Tenant) -> dict[str, Any]:
    return {
        "id": tenant.id,
        "weight": tenant.weight,
        "pipeline": pipeline_to_dict(tenant.pipeline),
        "weights": {"alpha": tenant.weights.alpha, "beta": tenant.weights.beta},
    }


def tenant_from_dict(payload: Mapping[str, Any]) -> Tenant:
    if "pipeline" not in payload:
        raise SerializationError("a tenant document needs a 'pipeline' section")
    weights_payload = payload.get("weights", {})
    if not isinstance(weights_payload, Mapping):
        raise SerializationError("'weights' must be a mapping")
    try:
        return Tenant(
            id=str(payload["id"]),
            pipeline=pipeline_from_dict(payload["pipeline"]),
            weight=float(payload.get("weight", 1.0)),
            weights=ObjectiveWeights(
                alpha=float(weights_payload.get("alpha", 1.0)),
                beta=float(weights_payload.get("beta", 0.0)),
            ),
        )
    except (KeyError, TypeError, ValueError) as error:
        if isinstance(error, SerializationError):
            raise
        raise SerializationError(f"invalid tenant record: {error}") from error


def fleet_to_dict(fleet: FleetState) -> dict[str, Any]:
    return {
        "format_version": FORMAT_VERSION,
        "name": fleet.name,
        "tenants": [tenant_to_dict(tenant) for tenant in fleet.tenants],
        "classes": [device_class_to_dict(device_class) for device_class in fleet.classes],
    }


def fleet_from_dict(payload: Mapping[str, Any]) -> FleetState:
    version = payload.get("format_version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise SerializationError(f"unsupported format_version {version!r}")
    classes_payload = payload.get("classes")
    if not isinstance(classes_payload, list) or not classes_payload:
        raise SerializationError("a fleet document needs a non-empty 'classes' list")
    tenants_payload = payload.get("tenants", [])
    if not isinstance(tenants_payload, list):
        raise SerializationError("'tenants' must be a list")
    try:
        return FleetState(
            tenants=tuple(tenant_from_dict(entry) for entry in tenants_payload),
            classes=tuple(device_class_from_dict(entry) for entry in classes_payload),
            name=str(payload.get("name", "fleet")),
        )
    except ValueError as error:
        if isinstance(error, SerializationError):
            raise
        raise SerializationError(f"invalid fleet record: {error}") from error
