"""Multi-tenant fleet allocation on a shared pool of device classes.

``state`` holds the declarative model (tenants, the pool, arrival and
departure as value operations), ``allocator`` the two allocation modes
(the partition-then-allocate heuristic and the heuristic-seeded exact
partition search), and ``manager`` the stateful front the service mounts
(current fleet behind a lock, persistent solve memo, counters).
"""

from .allocator import (
    FLEET_MODES,
    FleetOutcome,
    FleetSettings,
    FleetSolveMemo,
    TenantAllocation,
    allocate_exact,
    allocate_fleet,
    allocate_heuristic,
    carve_shares,
    demand_weight,
)
from .manager import FleetManager
from .state import (
    ClassShare,
    FleetState,
    Tenant,
    fleet_from_dict,
    fleet_to_dict,
    tenant_from_dict,
    tenant_to_dict,
)

__all__ = [
    "FLEET_MODES",
    "ClassShare",
    "FleetManager",
    "FleetOutcome",
    "FleetSettings",
    "FleetSolveMemo",
    "FleetState",
    "Tenant",
    "TenantAllocation",
    "allocate_exact",
    "allocate_fleet",
    "allocate_heuristic",
    "carve_shares",
    "demand_weight",
    "fleet_from_dict",
    "fleet_to_dict",
    "tenant_from_dict",
    "tenant_to_dict",
]
