"""Stateful fleet front for the service: current fleet + persistent memo.

The HTTP layer mounts one :class:`FleetManager`.  It holds the current
:class:`~repro.fleet.state.FleetState` behind a lock, runs allocations
through a **persistent** :class:`~repro.fleet.allocator.FleetSolveMemo`,
and counts everything the ``/stats`` and ``/metrics`` surfaces report.

The memo is what makes tenant arrival/departure incremental: re-carving
after an arrival recomputes every share, but any ``(tenant, share)`` pair
that did not change is answered from the memo instead of re-solved -- only
the tenants whose shares actually moved pay solver time.  Departures (and
re-arrivals under a reused id) forget just that tenant's entries, so the
memo never serves a stale application.
"""

from __future__ import annotations

import math
import threading
from typing import Any

from .allocator import (
    FLEET_MODES,
    FleetOutcome,
    FleetSettings,
    FleetSolveMemo,
    allocate_fleet,
)
from .state import FleetState, Tenant


class FleetManager:
    """Current fleet + persistent solve memo + counters, all thread-safe."""

    def __init__(
        self,
        fleet: FleetState | None = None,
        settings: FleetSettings | None = None,
    ) -> None:
        self._lock = threading.Lock()
        self._fleet = fleet
        self._settings = settings or FleetSettings()
        self._memo = FleetSolveMemo()
        self._allocations_by_mode = {mode: 0 for mode in FLEET_MODES}
        self._arrivals = 0
        self._departures = 0
        self._last_outcome: FleetOutcome | None = None

    # ------------------------------------------------------------------ #
    # Fleet state
    # ------------------------------------------------------------------ #
    @property
    def fleet(self) -> FleetState | None:
        with self._lock:
            return self._fleet

    def set_fleet(self, fleet: FleetState) -> None:
        """Replace the whole fleet (memo reset: any tenant may have changed)."""
        with self._lock:
            self._fleet = fleet
            self._memo = FleetSolveMemo()
            self._last_outcome = None

    def add_tenant(self, tenant: Tenant) -> FleetState:
        """Tenant arrival; returns the new fleet snapshot."""
        with self._lock:
            if self._fleet is None:
                raise RuntimeError("no fleet configured; POST /fleet/allocate first")
            # A reused id must not be served from the departed tenant's memo.
            self._memo.forget_tenant(tenant.id)
            self._fleet = self._fleet.with_tenant(tenant)
            self._arrivals += 1
            return self._fleet

    def remove_tenant(self, tenant_id: str) -> FleetState:
        """Tenant departure; returns the new fleet snapshot."""
        with self._lock:
            if self._fleet is None:
                raise RuntimeError("no fleet configured; POST /fleet/allocate first")
            self._fleet = self._fleet.without_tenant(tenant_id)
            self._memo.forget_tenant(tenant_id)
            self._departures += 1
            return self._fleet

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #
    def _install_locked(self, fleet: FleetState) -> None:
        """Make ``fleet`` current, keeping as much of the memo as is safe.

        Same pool + same tenant objects (the arrival/departure fast path)
        keeps everything; a changed pool invalidates every share, a changed
        tenant only that tenant's entries.
        """
        if fleet == self._fleet:
            return
        if self._fleet is None or fleet.classes != self._fleet.classes:
            self._memo = FleetSolveMemo()
        else:
            known = {tenant.id: tenant for tenant in self._fleet.tenants}
            for tenant in fleet.tenants:
                if known.get(tenant.id) is not tenant:
                    self._memo.forget_tenant(tenant.id)
        self._fleet = fleet

    def allocate(
        self, fleet: FleetState | None = None, mode: str = "heuristic"
    ) -> FleetOutcome:
        """Allocate ``fleet`` (or the current one), updating state + counters.

        Passing a fleet installs it as the current state first (see
        :meth:`_install_locked` for what survives of the memo).
        """
        with self._lock:
            if fleet is not None:
                self._install_locked(fleet)
            if self._fleet is None:
                raise RuntimeError("no fleet to allocate")
            snapshot = self._fleet
            memo = self._memo
        outcome = allocate_fleet(snapshot, mode=mode, settings=self._settings, memo=memo)
        with self._lock:
            self._allocations_by_mode[mode] += 1
            self._last_outcome = outcome
        return outcome

    def adopt(self, fleet: FleetState, outcome: FleetOutcome, mode: str) -> None:
        """Install a fleet whose allocation was answered from the cache.

        Counters move exactly as for a computed allocation -- the service's
        cache hit is still one served fleet allocation -- but no solver runs.
        """
        with self._lock:
            self._install_locked(fleet)
            self._allocations_by_mode[mode] += 1
            self._last_outcome = outcome

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        with self._lock:
            fleet = self._fleet
            last = self._last_outcome
            objective = None
            if last is not None and math.isfinite(last.objective):
                objective = last.objective
            return {
                "tenants": len(fleet.tenants) if fleet is not None else 0,
                "devices": fleet.total_devices if fleet is not None else 0,
                "allocations": sum(self._allocations_by_mode.values()),
                "heuristic_allocations": self._allocations_by_mode["heuristic"],
                "exact_allocations": self._allocations_by_mode["exact"],
                "arrivals": self._arrivals,
                "departures": self._departures,
                "tenant_solves": self._memo.solves,
                "memo_hits": self._memo.hits,
                "last_mode": last.mode if last is not None else None,
                "last_objective": objective,
            }
