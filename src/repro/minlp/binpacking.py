"""Vector bin-packing feasibility for CU allocation.

The beta = 0 variant of the paper's MINLP ("MINLP" curves in Figs. 3-5)
decomposes exactly: the initiation interval depends only on the total CU
counts ``N_k``, and a choice of counts is realisable iff the multiset of CUs
(each CU of kernel ``k`` occupying the vector ``R_k`` plus bandwidth ``B_k``)
packs into ``F`` bins.  The bins are identical on the paper's homogeneous
platform; on a heterogeneous platform each bin carries its own capacity
vector (``bin_capacities``, one row per FPGA in platform order).  This module
provides that feasibility test: fast first-fit-decreasing, and an exact
depth-first search with pruning when the heuristic fails.

The exact search keeps its load state in a NumPy ``(bins x dims)`` matrix and
prunes three ways:

* **aggregate slack** -- the per-dimension demand of every item still to be
  placed (a suffix sum precomputed once per search) must fit into the total
  remaining slack, tracked incrementally in O(dims) per node;
* **equal-bin symmetry breaking** -- whenever a bin has the same capacity as
  the previous bin (always, with identical bins; within one device class on
  a mixed platform) and its load equals the previous bin's load *before* the
  current item type was placed there, the current bin may receive at most as
  many CUs as the previous one (for the first item type all bins of a class
  are empty, so its CUs can only open bins in canonical non-increasing prefix
  order per class);
* a **node budget** bounding worst-case effort; if it is exhausted a reported
  infeasibility is flagged as not proven (``PackingResult.exact == False``).

Because the same CU count vector is probed repeatedly -- by the binary search
over candidate II values, by branch-and-bound nodes and by design-space sweep
re-solves -- feasibility results can be memoized in a :class:`PackingMemo`
shared across packer instances (mirroring the ``RelaxationCache`` of
:mod:`repro.minlp.branch_and_bound`).  On top of the exact-key lookup the
memo answers by *dominance*: packing feasibility is monotone in the count
vector (remove CUs from a feasible packing and it stays feasible; add CUs to
a proven-infeasible multiset and it stays infeasible), so a count vector
packs if any componentwise-larger memoized vector packed and fails if a
componentwise-smaller one provably failed.
"""

from __future__ import annotations

import math
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..obs.trace import span
from . import _packcore

_ENV_STRATEGY = "REPRO_PACKER_STRATEGY"


@dataclass(frozen=True)
class PackingItemType:
    """A group of identical items (the CUs of one kernel)."""

    name: str
    count: int
    size: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be non-negative")
        if any(s < 0 for s in self.size):
            raise ValueError("item sizes must be non-negative")


@dataclass(frozen=True)
class PackingResult:
    """Outcome of a packing attempt."""

    feasible: bool
    assignment: Mapping[str, tuple[int, ...]]  # kernel name -> CUs per bin
    exact: bool  # True if infeasibility (when reported) is proven
    nodes: int = 0  # exact-search nodes expended (0: screens/heuristic answered)
    completion_nodes: int = 0  # bin-completion engine nodes (0: not consulted)

    @classmethod
    def infeasible(
        cls, exact: bool, nodes: int = 0, completion_nodes: int = 0
    ) -> "PackingResult":
        return cls(
            feasible=False,
            assignment={},
            exact=exact,
            nodes=nodes,
            completion_nodes=completion_nodes,
        )


class PackingMemo:
    """Memo of packing results keyed on the CU count vector of the request.

    One packer configuration (bin count, capacities, placement, node budget)
    maps a given item multiset to a deterministic result, so results can be
    reused across packer instances: the binary search of the exact minimum-II
    solver probes overlapping count vectors for adjacent candidate II values,
    and sweep re-solves repeat them wholesale.  Use :func:`shared_packing_memo`
    with the packer's configuration key to get that sharing.  Eviction is FIFO
    with a bounded entry count.

    Beyond exact keys the memo exploits *dominance*: entries are bucketed by
    their item signature (names and sizes, without counts), and
    :meth:`get_dominated` answers a query from any memoized count vector that
    is componentwise larger and packed (the stored assignment minus the
    surplus CUs is a valid packing) or componentwise smaller and provably
    failed (adding CUs cannot help).  This reuses monotone information across
    the minimum-II binary search's candidates and across sweep re-solves.
    """

    #: Per-signature cap on the dominance index.  Exact-key entries are
    #: unlimited (up to ``max_entries``); the dominance scan is linear in the
    #: bucket and runs under the memo lock, so it stays bounded regardless of
    #: how many count vectors one workload probes.
    DOMINANCE_BUCKET_LIMIT = 256

    def __init__(self, max_entries: int = 16384):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self._max_entries = max_entries
        #: full key -> (signature, counts, result); FIFO order for eviction.
        self._entries: "OrderedDict[tuple, tuple[tuple, tuple, PackingResult]]" = OrderedDict()
        #: signature -> {counts: result}, the (bounded) dominance index.
        self._by_signature: dict[tuple, dict[tuple, PackingResult]] = {}
        # Shared memos are hit concurrently by the threaded HTTP service;
        # the lock keeps eviction-during-insert and counter updates safe.
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.dominance_hits = 0

    @staticmethod
    def key_of(items: Sequence[PackingItemType]) -> tuple:
        return tuple((item.name, item.count, item.size) for item in items)

    @staticmethod
    def signature_of(items: Sequence[PackingItemType]) -> tuple:
        """The count-free part of the key: item names and sizes, in order."""
        return tuple((item.name, item.size) for item in items)

    @staticmethod
    def counts_of(items: Sequence[PackingItemType]) -> tuple[int, ...]:
        return tuple(item.count for item in items)

    def get(self, items: Sequence[PackingItemType]) -> "PackingResult | None":
        key = self.key_of(items)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            return entry[2]

    def get_dominated(self, items: Sequence[PackingItemType]) -> "PackingResult | None":
        """Answer a query by dominance against the memoized count vectors.

        Returns a derived :class:`PackingResult` (counted as a
        ``dominance_hit``) or ``None`` when no stored vector dominates the
        query.  Feasible answers carry an assignment obtained by stripping
        the surplus CUs from the dominating packing; infeasible answers are
        only derived from *proven* (``exact``) failures.
        """
        signature = self.signature_of(items)
        counts = self.counts_of(items)
        with self._lock:
            bucket = self._by_signature.get(signature)
            if not bucket:
                return None
            for stored_counts, result in bucket.items():
                if result.feasible and all(
                    stored >= wanted for stored, wanted in zip(stored_counts, counts)
                ):
                    derived = PackingResult(
                        feasible=True,
                        assignment=_strip_assignment(
                            result.assignment, stored_counts, counts, items
                        ),
                        exact=True,
                    )
                    self.dominance_hits += 1
                    return derived
                if (
                    not result.feasible
                    and result.exact
                    and all(
                        stored <= wanted for stored, wanted in zip(stored_counts, counts)
                    )
                ):
                    self.dominance_hits += 1
                    return PackingResult.infeasible(exact=True)
        return None

    def put(self, items: Sequence[PackingItemType], result: PackingResult) -> None:
        key = self.key_of(items)
        signature = self.signature_of(items)
        counts = self.counts_of(items)
        with self._lock:
            if key not in self._entries and len(self._entries) >= self._max_entries:
                _, (old_signature, old_counts, _) = self._entries.popitem(last=False)
                old_bucket = self._by_signature.get(old_signature)
                if old_bucket is not None:
                    old_bucket.pop(old_counts, None)
                    if not old_bucket:
                        self._by_signature.pop(old_signature, None)
            self._entries[key] = (signature, counts, result)
            bucket = self._by_signature.setdefault(signature, {})
            if counts in bucket or len(bucket) < self.DOMINANCE_BUCKET_LIMIT:
                bucket[counts] = result

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._by_signature.clear()
            self.hits = 0
            self.misses = 0
            self.dominance_hits = 0


def _strip_assignment(
    assignment: Mapping[str, tuple[int, ...]],
    stored_counts: Sequence[int],
    wanted_counts: Sequence[int],
    items: Sequence[PackingItemType],
) -> dict[str, tuple[int, ...]]:
    """Remove surplus CUs from a dominating packing (highest bins first).

    Removing items from a feasible packing keeps every bin within capacity,
    so any deterministic removal order yields a valid assignment; stripping
    from the highest-indexed bins first keeps the canonical consolidated
    prefix shape the exact search emits.
    """
    stripped: dict[str, tuple[int, ...]] = {}
    for item, stored, wanted in zip(items, stored_counts, wanted_counts):
        per_bin = list(assignment.get(item.name, ()))
        surplus = stored - wanted
        for bin_index in range(len(per_bin) - 1, -1, -1):
            if surplus <= 0:
                break
            take = min(per_bin[bin_index], surplus)
            per_bin[bin_index] -= take
            surplus -= take
        stripped[item.name] = tuple(per_bin)
    return stripped


#: Bounded registry of packing memos shared across packer instances, keyed by
#: the packer configuration (value-based, so equivalent problems share).
_SHARED_MEMOS: "dict[tuple, PackingMemo]" = {}
_SHARED_MEMO_LIMIT = 64
_SHARED_MEMOS_LOCK = threading.Lock()


def shared_packing_memo(key: tuple, max_entries: int = 16384) -> PackingMemo:
    """Packing memo shared by every packer with the same configuration key."""
    with _SHARED_MEMOS_LOCK:
        memo = _SHARED_MEMOS.get(key)
        if memo is None:
            if len(_SHARED_MEMOS) >= _SHARED_MEMO_LIMIT:
                _SHARED_MEMOS.pop(next(iter(_SHARED_MEMOS)))
            memo = PackingMemo(max_entries=max_entries)
            _SHARED_MEMOS[key] = memo
    return memo


def shared_packing_memos_clear() -> None:
    """Drop every shared packing memo (used by tests and benchmarks)."""
    with _SHARED_MEMOS_LOCK:
        _SHARED_MEMOS.clear()


class VectorBinPacker:
    """Pack groups of identical multi-dimensional items into bins.

    Bins are identical by default (``capacity`` is the shared capacity
    vector, the paper's homogeneous platform); ``bin_capacities`` instead
    gives every bin its own capacity row (a heterogeneous platform, one row
    per FPGA in class-major platform order so equal-capacity bins are
    adjacent and symmetry breaking stays effective within each class).
    """

    def __init__(
        self,
        num_bins: int,
        capacity: Sequence[float] | None = None,
        tolerance: float = 1e-9,
        max_backtrack_nodes: int = 200_000,
        placement: str = "consolidate",
        memo: PackingMemo | None = None,
        bin_capacities: "Sequence[Sequence[float]] | None" = None,
        strategy: str | None = None,
    ):
        if num_bins < 1:
            raise ValueError("num_bins must be >= 1")
        if placement not in ("consolidate", "balance"):
            raise ValueError("placement must be 'consolidate' or 'balance'")
        if strategy is None:
            strategy = os.environ.get(_ENV_STRATEGY, "completion")
        strategy = strategy.strip().lower() or "completion"
        if strategy not in ("completion", "branching"):
            raise ValueError("strategy must be 'completion' or 'branching'")
        if (capacity is None) == (bin_capacities is None):
            raise ValueError("pass exactly one of capacity or bin_capacities")
        if bin_capacities is not None:
            rows = tuple(tuple(float(c) for c in row) for row in bin_capacities)
            if len(rows) != num_bins:
                raise ValueError(
                    f"bin_capacities has {len(rows)} rows, expected {num_bins}"
                )
            dims = {len(row) for row in rows}
            if len(dims) != 1:
                raise ValueError("every bin needs the same number of dimensions")
            if any(c < 0 for row in rows for c in row):
                raise ValueError("capacities must be non-negative")
            self.uniform = all(row == rows[0] for row in rows)
            self.bin_capacities = rows
            #: Per-dimension ceiling over the bins (the uniform capacity when
            #: all bins are identical) -- used by ordering heuristics only.
            self.capacity = (
                rows[0] if self.uniform else tuple(max(column) for column in zip(*rows))
            )
        else:
            assert capacity is not None
            if any(c < 0 for c in capacity):
                raise ValueError("capacities must be non-negative")
            self.uniform = True
            self.capacity = tuple(float(c) for c in capacity)
            self.bin_capacities = (self.capacity,) * num_bins
        self.num_bins = num_bins
        self.tolerance = tolerance
        self.max_backtrack_nodes = max_backtrack_nodes
        #: "consolidate" fills the fullest bin that still fits (few bins used);
        #: "balance" fills the emptiest bin first, mimicking the spread-out
        #: allocations that a pure II-minimising MINLP solver typically emits.
        self.placement = placement
        #: "completion" (default) proves feasibility with the bin-completion
        #: engine and extracts the canonical assignment through the branching
        #: search pruned by completion-based infeasibility proofs; "branching"
        #: is the historical item-at-a-time search kept as parity reference.
        self.strategy = strategy
        self.memo = memo
        #: Exact-search nodes expended by the last :meth:`pack` call.
        self.last_nodes = 0
        #: Bin-completion engine nodes expended by the last :meth:`pack` call.
        self.last_completion_nodes = 0
        #: Memo traffic of THIS packer instance.  Shared memos also keep
        #: global ``hits``/``misses``, but those interleave across concurrent
        #: solves; per-solve accounting must read the packer-local counters.
        self.memo_hits = 0
        self.memo_misses = 0
        self.memo_dominance_hits = 0

    def config_key(self) -> tuple:
        """Value key identifying this configuration (for shared memos)."""
        key = (
            "pack",
            self.num_bins,
            self.capacity,
            self.placement,
            self.max_backtrack_nodes,
            self.tolerance,
            self.strategy,
        )
        if not self.uniform:
            key = key + (self.bin_capacities,)
        return key

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def pack(self, items: Sequence[PackingItemType]) -> PackingResult:
        """Try to pack all items; memo and heuristics first, exact search last."""
        dims = len(self.capacity)
        for item in items:
            if len(item.size) != dims:
                raise ValueError(
                    f"item {item.name!r} has {len(item.size)} dimensions, expected {dims}"
                )

        self.last_nodes = 0
        self.last_completion_nodes = 0
        with span("bin_pack") as trace_span:
            if self.memo is not None:
                cached = self.memo.get(items)
                if cached is not None:
                    self.memo_hits += 1
                    if trace_span is not None:
                        trace_span.attributes["cached"] = True
                    return cached
                dominated = self.memo.get_dominated(items)
                if dominated is not None:
                    self.memo_dominance_hits += 1
                    # Promote to an exact entry so identical re-probes hit
                    # directly.
                    self.memo.put(items, dominated)
                    if trace_span is not None:
                        trace_span.attributes["cached"] = True
                    return dominated
                self.memo_misses += 1
            result = self._pack_uncached(items)
            if self.memo is not None:
                self.memo.put(items, result)
            if trace_span is not None:
                trace_span.attributes["nodes"] = self.last_nodes
                trace_span.attributes["completion_nodes"] = self.last_completion_nodes
            return result

    def _pack_uncached(self, items: Sequence[PackingItemType]) -> PackingResult:
        if not self._aggregate_feasible(items):
            return PackingResult.infeasible(exact=True)
        if not self._single_item_feasible(items):
            return PackingResult.infeasible(exact=True)
        if not self._counting_feasible(items):
            return PackingResult.infeasible(exact=True)

        heuristic = self._first_fit_decreasing(items)
        if heuristic is not None:
            return PackingResult(feasible=True, assignment=heuristic, exact=True)

        return self._exact_search(items)

    # ------------------------------------------------------------------ #
    # Quick necessary conditions
    # ------------------------------------------------------------------ #
    def _aggregate_feasible(self, items: Sequence[PackingItemType]) -> bool:
        for dim in range(len(self.capacity)):
            total = sum(item.count * item.size[dim] for item in items)
            if self.uniform:
                slack = self.num_bins * self.capacity[dim]
            else:
                slack = sum(row[dim] for row in self.bin_capacities)
            if total > slack + self.tolerance:
                return False
        return True

    def _single_item_feasible(self, items: Sequence[PackingItemType]) -> bool:
        for item in items:
            if item.count == 0:
                continue
            if self.uniform:
                for dim in range(len(self.capacity)):
                    if item.size[dim] > self.capacity[dim] + self.tolerance:
                        return False
            else:
                # Mixed bins: the item must fit whole into at least one bin.
                if not any(
                    all(
                        item.size[dim] <= row[dim] + self.tolerance
                        for dim in range(len(self.capacity))
                    )
                    for row in self.bin_capacities
                ):
                    return False
        return True

    def _counting_feasible(self, items: Sequence[PackingItemType]) -> bool:
        """Per-dimension slot-counting bound.

        Identical bins: a bin cannot hold ``m + 1`` items each larger than
        ``C / (m + 1)`` (their sizes would sum past the capacity ``C``), so in
        any packing ``#{CUs with size > C / (m + 1)} <= m * num_bins``.  This
        proves infeasible many near-capacity instances on which the aggregate
        bound is silent -- e.g. 33 CUs of size ~15 against 8 bins of capacity
        70 -- without expanding a single search node.

        Mixed bins: the bound is applied per device class through its dual
        form -- for every item size ``s``, bin ``b`` holds at most
        ``floor(C_b / s)`` items at least that large, so
        ``#{CUs with size >= s} <= sum_b floor(C_b / s)``.
        """
        if self.uniform:
            total = sum(item.count for item in items)
            # Larger m cannot violate the bound: the big-item count is <= total.
            max_m = total // self.num_bins
            for dim in range(len(self.capacity)):
                cap = self.capacity[dim]
                if cap <= 0:
                    continue  # a positive size never fits; _single_item_feasible caught it
                sizes = sorted(
                    ((item.size[dim], item.count) for item in items if item.count),
                    reverse=True,
                )
                for m in range(1, max_m + 1):
                    threshold = cap / (m + 1) + self.tolerance
                    count = 0
                    for size, item_count in sizes:
                        if size <= threshold:
                            break
                        count += item_count
                    if count > m * self.num_bins:
                        return False
            return True
        for dim in range(len(self.capacity)):
            sizes = sorted(
                ((item.size[dim], item.count) for item in items if item.count),
                reverse=True,
            )
            cumulative = 0
            for size, item_count in sizes:
                cumulative += item_count
                if size <= 0:
                    break
                slots = sum(
                    int(math.floor((row[dim] + self.tolerance) / size))
                    for row in self.bin_capacities
                )
                if cumulative > slots:
                    return False
        return True

    # ------------------------------------------------------------------ #
    # First-fit decreasing
    # ------------------------------------------------------------------ #
    def _first_fit_decreasing(
        self, items: Sequence[PackingItemType]
    ) -> dict[str, tuple[int, ...]] | None:
        """Greedy packing: biggest item groups first, each CU into the
        fullest bin that still fits (best-fit flavour keeps bins consolidated)."""
        order = sorted(
            items,
            key=lambda item: max(
                item.size[dim] / self.capacity[dim] if self.capacity[dim] > 0 else 0.0
                for dim in range(len(self.capacity))
            ),
            reverse=True,
        )
        loads = [[0.0] * len(self.capacity) for _ in range(self.num_bins)]
        assignment = {item.name: [0] * self.num_bins for item in items}

        # Fullness measure ordering the candidate bins.  Identical bins use
        # absolute load (the historical ordering, kept byte-identical for
        # every homogeneous baseline); a mixed fleet orders by
        # fraction-of-own-capacity, like the allocator's normalized-residual
        # consolidation: a small nearly-full device must outrank a large
        # half-empty one, or its last slack goes unused while the large
        # device burns the contiguous space that only it can offer to the
        # biggest CUs.
        if self.uniform:
            def fullness(bin_index: int) -> float:
                return sum(loads[bin_index])
        else:
            inverse_caps = [
                tuple(1.0 / c if c > 0 else 0.0 for c in row)
                for row in self.bin_capacities
            ]

            def fullness(bin_index: int) -> float:
                return sum(
                    load * inverse
                    for load, inverse in zip(loads[bin_index], inverse_caps[bin_index])
                )

        for item in order:
            for _ in range(item.count):
                placed = False
                if self.placement == "consolidate":
                    candidates = sorted(range(self.num_bins), key=lambda b: -fullness(b))
                else:
                    candidates = sorted(range(self.num_bins), key=fullness)
                for bin_index in candidates:
                    if self._fits(loads[bin_index], item.size, bin_index):
                        for dim in range(len(self.capacity)):
                            loads[bin_index][dim] += item.size[dim]
                        assignment[item.name][bin_index] += 1
                        placed = True
                        break
                if not placed:
                    return None
        return {name: tuple(counts) for name, counts in assignment.items()}

    def _fits(self, load: Sequence[float], size: Sequence[float], bin_index: int) -> bool:
        capacity = self.bin_capacities[bin_index]
        return all(
            load[dim] + size[dim] <= capacity[dim] + self.tolerance
            for dim in range(len(self.capacity))
        )

    # ------------------------------------------------------------------ #
    # Exact search
    # ------------------------------------------------------------------ #
    def _exact_search(self, items: Sequence[PackingItemType]) -> PackingResult:
        if self.strategy == "completion":
            return self._exact_search_completion(items)
        return self._exact_search_branching(items)

    def _search_order(
        self, items: Sequence[PackingItemType]
    ) -> list[PackingItemType]:
        """Item types in the canonical decreasing-size search order."""
        return sorted(
            (item for item in items if item.count > 0),
            key=lambda item: (max(item.size), item.count),
            reverse=True,
        )

    def _exact_search_completion(
        self, items: Sequence[PackingItemType]
    ) -> PackingResult:
        """Bin-completion strategy: prove feasibility near the root, then
        extract the branching search's canonical assignment under pruning.

        The completion engine (:mod:`repro.minlp._packcore`) decides
        feasibility by closing bins one at a time with maximal completions.
        A proven-infeasible verdict returns immediately.  A feasible verdict
        re-runs the branching search with a completion-based oracle that
        discards provably dead subtrees before they are entered -- pruning
        solution-free subtrees never changes which assignment the branching
        search reaches first, so the emitted packing is bit-identical to the
        reference strategy at a fraction of the nodes.  An undecided verdict
        (engine node budget exhausted) falls back to the plain branching
        search, preserving its budget-exhaustion contract.
        """
        order = self._search_order(items)
        if not order:
            return self._exact_search_branching(items)
        dims = len(self.capacity)
        sizes = np.array([item.size for item in order], dtype=float).reshape(
            len(order), dims
        )
        counts = np.array([item.count for item in order], dtype=np.int64)
        bin_caps = np.array(self.bin_capacities, dtype=float).reshape(
            self.num_bins, dims
        )
        budget = self.max_backtrack_nodes
        tolerance = self.tolerance

        # Two bins: feasibility is a box query over sub-multiset load vectors
        # (whatever bin 0 receives, bin 1 gets the rest), decided exactly by
        # the meet-in-the-middle tables -- no search, no budget, and the same
        # tables answer every residual oracle query below.
        two_bin = (
            _packcore.two_bin_tables(sizes, counts) if self.num_bins == 2 else None
        )
        # The filtered half-tables and residual demand depend only on the
        # residual count vector; the oracle probes each one under many load
        # states, so both are cached per (kernel index, remaining copies).
        filtered_cache: dict[tuple[int, int], tuple] = {}

        def decide(residual_counts: np.ndarray, residual_caps: np.ndarray) -> int:
            """Exact verdict for a residual instance via the two-bin tables."""
            residual_demand = residual_counts @ sizes
            lower = residual_demand - (residual_caps[1] + tolerance)
            upper = residual_caps[0] + tolerance
            return _packcore.two_bin_feasible(two_bin, residual_counts, lower, upper)

        def decide_cached(
            kernel_index: int,
            remaining: int,
            residual_counts: np.ndarray,
            residual_caps: np.ndarray,
        ) -> int:
            state = (kernel_index, remaining)
            entry = filtered_cache.get(state)
            if entry is None:
                entry = (
                    _packcore.two_bin_filter(two_bin, residual_counts),
                    residual_counts @ sizes,
                )
                filtered_cache[state] = entry
            (sums_a, sums_b), residual_demand = entry
            lower = residual_demand - (residual_caps[1] + tolerance)
            upper = residual_caps[0] + tolerance
            return _packcore.two_bin_box_feasible(sums_a, sums_b, lower, upper)

        if two_bin is not None:
            verdict = decide(counts, bin_caps)
            engine_nodes = 0
        else:
            # The root proof gets a slice of the node budget: an undecided
            # root falls back to the branching search with the FULL budget,
            # so the worst case stays bounded by roughly the historical cost
            # instead of doubling it on instances both searches find hard.
            root_budget = max(1, budget // 4)
            verdict, engine_nodes = _packcore.completion_feasible(
                sizes, counts, bin_caps, tolerance, root_budget
            )
        self.last_completion_nodes = engine_nodes
        if verdict == _packcore.INFEASIBLE:
            self.last_nodes = 0
            return PackingResult.infeasible(
                exact=True, nodes=0, completion_nodes=engine_nodes
            )
        if verdict == _packcore.UNDECIDED:
            return self._exact_search_branching(items)

        # Feasible: extract the canonical assignment.  The oracle relaxes the
        # mid-item bin restriction (CUs of the in-flight item may land in any
        # bin), so "infeasible" answers remain sound prunes while "feasible"
        # answers merely decline to prune.
        oracle_memo: dict[tuple, bool] = {}

        def oracle(
            kernel_index: int, remaining: int, loads: np.ndarray
        ) -> bool:
            key = (kernel_index, remaining, loads.tobytes())
            cached = oracle_memo.get(key)
            if cached is not None:
                return cached
            residual_counts = counts.copy()
            residual_counts[:kernel_index] = 0
            residual_counts[kernel_index] = remaining
            residual_caps = np.maximum(bin_caps - loads, 0.0)
            # Most residual states along the canonical path pack greedily;
            # a found witness answers without the exact machinery.
            if _packcore.greedy_feasible(
                sizes, residual_counts, residual_caps, tolerance
            ):
                oracle_memo[key] = True
                return True
            if two_bin is not None:
                answer = (
                    decide_cached(kernel_index, remaining, residual_counts, residual_caps)
                    == _packcore.FEASIBLE
                )
                oracle_memo[key] = answer
                return answer
            spent = self.last_completion_nodes
            if spent >= 2 * budget:
                return True  # oracle budget drained; stop consulting
            sub_verdict, sub_nodes = _packcore.completion_feasible(
                sizes,
                residual_counts,
                residual_caps,
                tolerance,
                min(budget, 2 * budget - spent),
            )
            self.last_completion_nodes = spent + sub_nodes
            answer = sub_verdict != _packcore.INFEASIBLE
            oracle_memo[key] = answer
            return answer

        return self._exact_search_branching(items, oracle=oracle)

    def _exact_search_branching(
        self, items: Sequence[PackingItemType], oracle=None
    ) -> PackingResult:
        """Depth-first search over per-kernel distributions with pruning.

        Item types are processed in decreasing size order; for each type the
        search enumerates how many of its CUs go into each bin, bins visited
        left to right with the symmetry and slack pruning described in the
        module docstring.  The node budget bounds worst-case effort; if it is
        exhausted the result is reported as not proven exact.

        ``oracle(kernel_index, remaining, loads)`` (optional) may veto a
        recursion by returning ``False`` when the state is provably
        infeasible; it must never veto a state that has a completion.
        """
        order = self._search_order(items)
        num_items = len(order)
        dims = len(self.capacity)
        num_bins = self.num_bins
        tolerance = self.tolerance

        sizes = np.array([item.size for item in order], dtype=float).reshape(num_items, dims)
        counts = np.array([item.count for item in order], dtype=float)
        # Per-dimension demand of item types i..end, computed once per search
        # (suffix[i] serves every node at depth i; the old per-node re-summation
        # over ``order[kernel_index + 1:]`` dominated the whole search).
        suffix = np.zeros((num_items + 1, dims))
        if num_items:
            suffix[:-1] = np.cumsum((sizes * counts[:, None])[::-1], axis=0)[::-1]
        positive = [np.flatnonzero(sizes[i] > 0) for i in range(num_items)]

        bin_caps = np.array(self.bin_capacities, dtype=float).reshape(num_bins, dims)
        capacity_tol = bin_caps + tolerance
        if self.uniform:
            total_capacity = np.asarray(self.capacity, dtype=float) * num_bins
        else:
            total_capacity = bin_caps.sum(axis=0)
        # Symmetry breaking between a bin and its predecessor is only valid
        # when the two bins are interchangeable, i.e. identically sized.
        same_caps_as_previous = [False] + [
            bool(np.array_equal(bin_caps[b], bin_caps[b - 1])) for b in range(1, num_bins)
        ]
        slack_tolerance = tolerance * num_bins
        loads = np.zeros((num_bins, dims))
        total_load = np.zeros(dims)
        assignment: dict[str, list[int]] = {item.name: [0] * num_bins for item in items}
        nodes = 0
        exhausted = False

        def place_kernel(kernel_index: int) -> bool:
            if kernel_index == num_items:
                return True
            return distribute(
                kernel_index, 0, int(counts[kernel_index]), math.inf, None
            )

        def distribute(
            kernel_index: int,
            bin_index: int,
            remaining: int,
            prev_count: float,
            prev_before: "np.ndarray | None",
        ) -> bool:
            nonlocal nodes, exhausted, total_load
            nodes += 1
            if nodes > self.max_backtrack_nodes:
                exhausted = True
                return False
            if remaining == 0:
                return place_kernel(kernel_index + 1)
            if bin_index == num_bins:
                return False
            size = sizes[kernel_index]
            active = positive[kernel_index]
            load_before = loads[bin_index].copy()
            max_here = remaining
            if active.size:
                limit = (
                    (capacity_tol[bin_index, active] - load_before[active]) / size[active]
                ).min()
                if limit < remaining:  # guards the int() against inf for tiny sizes
                    max_here = int(math.floor(limit + 1e-12))
            max_here = max(0, max_here)
            # Symmetry: the previous bin is the same size and looked identical
            # before it received this item type, so only canonical
            # non-increasing counts are tried.
            if (
                prev_before is not None
                and same_caps_as_previous[bin_index]
                and np.array_equal(load_before, prev_before)
            ):
                max_here = min(max_here, int(prev_count))
            item_name = order[kernel_index].name
            # Try putting as many as possible first (consolidation bias), down to zero.
            for count in range(max_here, -1, -1):
                if count:
                    placed = count * size
                    loads[bin_index] += placed
                    total_load += placed
                    assignment[item_name][bin_index] += count
                # Aggregate-slack pruning: everything still unplaced must fit
                # into the total remaining slack (O(dims) via the suffix sums).
                demand = suffix[kernel_index + 1] + (remaining - count) * size
                if np.all(demand <= total_capacity - total_load + slack_tolerance) and (
                    oracle is None
                    or oracle(kernel_index, remaining - count, loads)
                ):
                    if distribute(
                        kernel_index, bin_index + 1, remaining - count, count, load_before
                    ):
                        return True
                if count:
                    loads[bin_index] -= placed
                    total_load -= placed
                    assignment[item_name][bin_index] -= count
            return False

        feasible = place_kernel(0)
        self.last_nodes = nodes
        if feasible:
            return PackingResult(
                feasible=True,
                assignment={name: tuple(values) for name, values in assignment.items()},
                exact=True,
                nodes=nodes,
                completion_nodes=self.last_completion_nodes,
            )
        return PackingResult.infeasible(
            exact=not exhausted,
            nodes=nodes,
            completion_nodes=self.last_completion_nodes,
        )
