"""Vector bin-packing feasibility for CU allocation.

The beta = 0 variant of the paper's MINLP ("MINLP" curves in Figs. 3-5)
decomposes exactly: the initiation interval depends only on the total CU
counts ``N_k``, and a choice of counts is realisable iff the multiset of CUs
(each CU of kernel ``k`` occupying the vector ``R_k`` plus bandwidth ``B_k``)
packs into ``F`` identical bins with capacity ``(R, B)``.  This module
provides that feasibility test: fast first-fit-decreasing, and an exact
depth-first search with pruning when the heuristic fails.

The exact search keeps its load state in a NumPy ``(bins x dims)`` matrix and
prunes three ways:

* **aggregate slack** -- the per-dimension demand of every item still to be
  placed (a suffix sum precomputed once per search) must fit into the total
  remaining slack, tracked incrementally in O(dims) per node;
* **equal-bin symmetry breaking** -- bins are identical, so whenever a bin's
  load equals the previous bin's load *before* the current item type was
  placed there, the current bin may receive at most as many CUs as the
  previous one (for the first item type all bins are empty, so its CUs can
  only open bins in canonical non-increasing prefix order);
* a **node budget** bounding worst-case effort; if it is exhausted a reported
  infeasibility is flagged as not proven (``PackingResult.exact == False``).

Because the same CU count vector is probed repeatedly -- by the binary search
over candidate II values, by branch-and-bound nodes and by design-space sweep
re-solves -- feasibility results can be memoized in a :class:`PackingMemo`
shared across packer instances (mirroring the ``RelaxationCache`` of
:mod:`repro.minlp.branch_and_bound`).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np


@dataclass(frozen=True)
class PackingItemType:
    """A group of identical items (the CUs of one kernel)."""

    name: str
    count: int
    size: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be non-negative")
        if any(s < 0 for s in self.size):
            raise ValueError("item sizes must be non-negative")


@dataclass(frozen=True)
class PackingResult:
    """Outcome of a packing attempt."""

    feasible: bool
    assignment: Mapping[str, tuple[int, ...]]  # kernel name -> CUs per bin
    exact: bool  # True if infeasibility (when reported) is proven
    nodes: int = 0  # exact-search nodes expended (0: screens/heuristic answered)

    @classmethod
    def infeasible(cls, exact: bool, nodes: int = 0) -> "PackingResult":
        return cls(feasible=False, assignment={}, exact=exact, nodes=nodes)


class PackingMemo:
    """Memo of packing results keyed on the CU count vector of the request.

    One packer configuration (bin count, capacities, placement, node budget)
    maps a given item multiset to a deterministic result, so results can be
    reused across packer instances: the binary search of the exact minimum-II
    solver probes overlapping count vectors for adjacent candidate II values,
    and sweep re-solves repeat them wholesale.  Use :func:`shared_packing_memo`
    with the packer's configuration key to get that sharing.  Eviction is FIFO
    with a bounded entry count.
    """

    def __init__(self, max_entries: int = 16384):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self._max_entries = max_entries
        self._entries: dict[tuple, PackingResult] = {}
        # Shared memos are hit concurrently by the threaded HTTP service;
        # the lock keeps eviction-during-insert and counter updates safe.
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_of(items: Sequence[PackingItemType]) -> tuple:
        return tuple((item.name, item.count, item.size) for item in items)

    def get(self, items: Sequence[PackingItemType]) -> "PackingResult | None":
        key = self.key_of(items)
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
            else:
                self.hits += 1
        return result

    def put(self, items: Sequence[PackingItemType], result: PackingResult) -> None:
        key = self.key_of(items)
        with self._lock:
            if len(self._entries) >= self._max_entries:
                self._entries.pop(next(iter(self._entries)))
            self._entries[key] = result

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


#: Bounded registry of packing memos shared across packer instances, keyed by
#: the packer configuration (value-based, so equivalent problems share).
_SHARED_MEMOS: "dict[tuple, PackingMemo]" = {}
_SHARED_MEMO_LIMIT = 64
_SHARED_MEMOS_LOCK = threading.Lock()


def shared_packing_memo(key: tuple, max_entries: int = 16384) -> PackingMemo:
    """Packing memo shared by every packer with the same configuration key."""
    with _SHARED_MEMOS_LOCK:
        memo = _SHARED_MEMOS.get(key)
        if memo is None:
            if len(_SHARED_MEMOS) >= _SHARED_MEMO_LIMIT:
                _SHARED_MEMOS.pop(next(iter(_SHARED_MEMOS)))
            memo = PackingMemo(max_entries=max_entries)
            _SHARED_MEMOS[key] = memo
    return memo


def shared_packing_memos_clear() -> None:
    """Drop every shared packing memo (used by tests and benchmarks)."""
    with _SHARED_MEMOS_LOCK:
        _SHARED_MEMOS.clear()


class VectorBinPacker:
    """Pack groups of identical multi-dimensional items into identical bins."""

    def __init__(
        self,
        num_bins: int,
        capacity: Sequence[float],
        tolerance: float = 1e-9,
        max_backtrack_nodes: int = 200_000,
        placement: str = "consolidate",
        memo: PackingMemo | None = None,
    ):
        if num_bins < 1:
            raise ValueError("num_bins must be >= 1")
        if any(c < 0 for c in capacity):
            raise ValueError("capacities must be non-negative")
        if placement not in ("consolidate", "balance"):
            raise ValueError("placement must be 'consolidate' or 'balance'")
        self.num_bins = num_bins
        self.capacity = tuple(float(c) for c in capacity)
        self.tolerance = tolerance
        self.max_backtrack_nodes = max_backtrack_nodes
        #: "consolidate" fills the fullest bin that still fits (few bins used);
        #: "balance" fills the emptiest bin first, mimicking the spread-out
        #: allocations that a pure II-minimising MINLP solver typically emits.
        self.placement = placement
        self.memo = memo
        #: Exact-search nodes expended by the last :meth:`pack` call.
        self.last_nodes = 0
        #: Memo traffic of THIS packer instance.  Shared memos also keep
        #: global ``hits``/``misses``, but those interleave across concurrent
        #: solves; per-solve accounting must read the packer-local counters.
        self.memo_hits = 0
        self.memo_misses = 0

    def config_key(self) -> tuple:
        """Value key identifying this configuration (for shared memos)."""
        return (
            "pack",
            self.num_bins,
            self.capacity,
            self.placement,
            self.max_backtrack_nodes,
            self.tolerance,
        )

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def pack(self, items: Sequence[PackingItemType]) -> PackingResult:
        """Try to pack all items; memo and heuristics first, exact search last."""
        dims = len(self.capacity)
        for item in items:
            if len(item.size) != dims:
                raise ValueError(
                    f"item {item.name!r} has {len(item.size)} dimensions, expected {dims}"
                )

        self.last_nodes = 0
        if self.memo is not None:
            cached = self.memo.get(items)
            if cached is not None:
                self.memo_hits += 1
                return cached
            self.memo_misses += 1
        result = self._pack_uncached(items)
        if self.memo is not None:
            self.memo.put(items, result)
        return result

    def _pack_uncached(self, items: Sequence[PackingItemType]) -> PackingResult:
        if not self._aggregate_feasible(items):
            return PackingResult.infeasible(exact=True)
        if not self._single_item_feasible(items):
            return PackingResult.infeasible(exact=True)
        if not self._counting_feasible(items):
            return PackingResult.infeasible(exact=True)

        heuristic = self._first_fit_decreasing(items)
        if heuristic is not None:
            return PackingResult(feasible=True, assignment=heuristic, exact=True)

        return self._exact_search(items)

    # ------------------------------------------------------------------ #
    # Quick necessary conditions
    # ------------------------------------------------------------------ #
    def _aggregate_feasible(self, items: Sequence[PackingItemType]) -> bool:
        for dim in range(len(self.capacity)):
            total = sum(item.count * item.size[dim] for item in items)
            if total > self.num_bins * self.capacity[dim] + self.tolerance:
                return False
        return True

    def _single_item_feasible(self, items: Sequence[PackingItemType]) -> bool:
        for item in items:
            if item.count == 0:
                continue
            for dim in range(len(self.capacity)):
                if item.size[dim] > self.capacity[dim] + self.tolerance:
                    return False
        return True

    def _counting_feasible(self, items: Sequence[PackingItemType]) -> bool:
        """Per-dimension slot-counting bound.

        A bin cannot hold ``m + 1`` items each larger than ``C / (m + 1)``
        (their sizes would sum past the capacity ``C``), so in any packing
        ``#{CUs with size > C / (m + 1)} <= m * num_bins``.  This proves
        infeasible many near-capacity instances on which the aggregate bound
        is silent -- e.g. 33 CUs of size ~15 against 8 bins of capacity 70 --
        without expanding a single search node.
        """
        total = sum(item.count for item in items)
        # Larger m cannot violate the bound: the big-item count is <= total.
        max_m = total // self.num_bins
        for dim in range(len(self.capacity)):
            cap = self.capacity[dim]
            if cap <= 0:
                continue  # a positive size never fits; _single_item_feasible caught it
            sizes = sorted(
                ((item.size[dim], item.count) for item in items if item.count),
                reverse=True,
            )
            for m in range(1, max_m + 1):
                threshold = cap / (m + 1) + self.tolerance
                count = 0
                for size, item_count in sizes:
                    if size <= threshold:
                        break
                    count += item_count
                if count > m * self.num_bins:
                    return False
        return True

    # ------------------------------------------------------------------ #
    # First-fit decreasing
    # ------------------------------------------------------------------ #
    def _first_fit_decreasing(
        self, items: Sequence[PackingItemType]
    ) -> dict[str, tuple[int, ...]] | None:
        """Greedy packing: biggest item groups first, each CU into the
        fullest bin that still fits (best-fit flavour keeps bins consolidated)."""
        order = sorted(
            items,
            key=lambda item: max(
                item.size[dim] / self.capacity[dim] if self.capacity[dim] > 0 else 0.0
                for dim in range(len(self.capacity))
            ),
            reverse=True,
        )
        loads = [[0.0] * len(self.capacity) for _ in range(self.num_bins)]
        assignment = {item.name: [0] * self.num_bins for item in items}

        for item in order:
            for _ in range(item.count):
                placed = False
                if self.placement == "consolidate":
                    candidates = sorted(range(self.num_bins), key=lambda b: -sum(loads[b]))
                else:
                    candidates = sorted(range(self.num_bins), key=lambda b: sum(loads[b]))
                for bin_index in candidates:
                    if self._fits(loads[bin_index], item.size):
                        for dim in range(len(self.capacity)):
                            loads[bin_index][dim] += item.size[dim]
                        assignment[item.name][bin_index] += 1
                        placed = True
                        break
                if not placed:
                    return None
        return {name: tuple(counts) for name, counts in assignment.items()}

    def _fits(self, load: Sequence[float], size: Sequence[float]) -> bool:
        return all(
            load[dim] + size[dim] <= self.capacity[dim] + self.tolerance
            for dim in range(len(self.capacity))
        )

    # ------------------------------------------------------------------ #
    # Exact search
    # ------------------------------------------------------------------ #
    def _exact_search(self, items: Sequence[PackingItemType]) -> PackingResult:
        """Depth-first search over per-kernel distributions with pruning.

        Item types are processed in decreasing size order; for each type the
        search enumerates how many of its CUs go into each bin, bins visited
        left to right with the symmetry and slack pruning described in the
        module docstring.  The node budget bounds worst-case effort; if it is
        exhausted the result is reported as not proven exact.
        """
        order = sorted(
            (item for item in items if item.count > 0),
            key=lambda item: (max(item.size), item.count),
            reverse=True,
        )
        num_items = len(order)
        dims = len(self.capacity)
        num_bins = self.num_bins
        tolerance = self.tolerance

        sizes = np.array([item.size for item in order], dtype=float).reshape(num_items, dims)
        counts = np.array([item.count for item in order], dtype=float)
        # Per-dimension demand of item types i..end, computed once per search
        # (suffix[i] serves every node at depth i; the old per-node re-summation
        # over ``order[kernel_index + 1:]`` dominated the whole search).
        suffix = np.zeros((num_items + 1, dims))
        if num_items:
            suffix[:-1] = np.cumsum((sizes * counts[:, None])[::-1], axis=0)[::-1]
        positive = [np.flatnonzero(sizes[i] > 0) for i in range(num_items)]

        capacity_tol = np.asarray(self.capacity, dtype=float) + tolerance
        total_capacity = np.asarray(self.capacity, dtype=float) * num_bins
        slack_tolerance = tolerance * num_bins
        loads = np.zeros((num_bins, dims))
        total_load = np.zeros(dims)
        assignment: dict[str, list[int]] = {item.name: [0] * num_bins for item in items}
        nodes = 0
        exhausted = False

        def place_kernel(kernel_index: int) -> bool:
            if kernel_index == num_items:
                return True
            return distribute(
                kernel_index, 0, int(counts[kernel_index]), math.inf, None
            )

        def distribute(
            kernel_index: int,
            bin_index: int,
            remaining: int,
            prev_count: float,
            prev_before: "np.ndarray | None",
        ) -> bool:
            nonlocal nodes, exhausted, total_load
            nodes += 1
            if nodes > self.max_backtrack_nodes:
                exhausted = True
                return False
            if remaining == 0:
                return place_kernel(kernel_index + 1)
            if bin_index == num_bins:
                return False
            size = sizes[kernel_index]
            active = positive[kernel_index]
            load_before = loads[bin_index].copy()
            max_here = remaining
            if active.size:
                limit = ((capacity_tol[active] - load_before[active]) / size[active]).min()
                if limit < remaining:  # guards the int() against inf for tiny sizes
                    max_here = int(math.floor(limit + 1e-12))
            max_here = max(0, max_here)
            # Symmetry: the previous bin looked identical before it received
            # this item type, so only canonical non-increasing counts are tried.
            if prev_before is not None and np.array_equal(load_before, prev_before):
                max_here = min(max_here, int(prev_count))
            item_name = order[kernel_index].name
            # Try putting as many as possible first (consolidation bias), down to zero.
            for count in range(max_here, -1, -1):
                if count:
                    placed = count * size
                    loads[bin_index] += placed
                    total_load += placed
                    assignment[item_name][bin_index] += count
                # Aggregate-slack pruning: everything still unplaced must fit
                # into the total remaining slack (O(dims) via the suffix sums).
                demand = suffix[kernel_index + 1] + (remaining - count) * size
                if np.all(demand <= total_capacity - total_load + slack_tolerance):
                    if distribute(
                        kernel_index, bin_index + 1, remaining - count, count, load_before
                    ):
                        return True
                if count:
                    loads[bin_index] -= placed
                    total_load -= placed
                    assignment[item_name][bin_index] -= count
            return False

        feasible = place_kernel(0)
        self.last_nodes = nodes
        if feasible:
            return PackingResult(
                feasible=True,
                assignment={name: tuple(values) for name, values in assignment.items()},
                exact=True,
                nodes=nodes,
            )
        return PackingResult.infeasible(exact=not exhausted, nodes=nodes)
