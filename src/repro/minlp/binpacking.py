"""Vector bin-packing feasibility for CU allocation.

The beta = 0 variant of the paper's MINLP ("MINLP" curves in Figs. 3-5)
decomposes exactly: the initiation interval depends only on the total CU
counts ``N_k``, and a choice of counts is realisable iff the multiset of CUs
(each CU of kernel ``k`` occupying the vector ``R_k`` plus bandwidth ``B_k``)
packs into ``F`` identical bins with capacity ``(R, B)``.  This module
provides that feasibility test: fast first-fit-decreasing, and an exact
depth-first search with pruning when the heuristic fails.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence


@dataclass(frozen=True)
class PackingItemType:
    """A group of identical items (the CUs of one kernel)."""

    name: str
    count: int
    size: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be non-negative")
        if any(s < 0 for s in self.size):
            raise ValueError("item sizes must be non-negative")


@dataclass(frozen=True)
class PackingResult:
    """Outcome of a packing attempt."""

    feasible: bool
    assignment: Mapping[str, tuple[int, ...]]  # kernel name -> CUs per bin
    exact: bool  # True if infeasibility (when reported) is proven

    @classmethod
    def infeasible(cls, exact: bool) -> "PackingResult":
        return cls(feasible=False, assignment={}, exact=exact)


class VectorBinPacker:
    """Pack groups of identical multi-dimensional items into identical bins."""

    def __init__(
        self,
        num_bins: int,
        capacity: Sequence[float],
        tolerance: float = 1e-9,
        max_backtrack_nodes: int = 200_000,
        placement: str = "consolidate",
    ):
        if num_bins < 1:
            raise ValueError("num_bins must be >= 1")
        if any(c < 0 for c in capacity):
            raise ValueError("capacities must be non-negative")
        if placement not in ("consolidate", "balance"):
            raise ValueError("placement must be 'consolidate' or 'balance'")
        self.num_bins = num_bins
        self.capacity = tuple(float(c) for c in capacity)
        self.tolerance = tolerance
        self.max_backtrack_nodes = max_backtrack_nodes
        #: "consolidate" fills the fullest bin that still fits (few bins used);
        #: "balance" fills the emptiest bin first, mimicking the spread-out
        #: allocations that a pure II-minimising MINLP solver typically emits.
        self.placement = placement

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def pack(self, items: Sequence[PackingItemType]) -> PackingResult:
        """Try to pack all items; heuristics first, exact search as fallback."""
        dims = len(self.capacity)
        for item in items:
            if len(item.size) != dims:
                raise ValueError(
                    f"item {item.name!r} has {len(item.size)} dimensions, expected {dims}"
                )

        if not self._aggregate_feasible(items):
            return PackingResult.infeasible(exact=True)
        if not self._single_item_feasible(items):
            return PackingResult.infeasible(exact=True)

        heuristic = self._first_fit_decreasing(items)
        if heuristic is not None:
            return PackingResult(feasible=True, assignment=heuristic, exact=True)

        return self._exact_search(items)

    # ------------------------------------------------------------------ #
    # Quick necessary conditions
    # ------------------------------------------------------------------ #
    def _aggregate_feasible(self, items: Sequence[PackingItemType]) -> bool:
        for dim in range(len(self.capacity)):
            total = sum(item.count * item.size[dim] for item in items)
            if total > self.num_bins * self.capacity[dim] + self.tolerance:
                return False
        return True

    def _single_item_feasible(self, items: Sequence[PackingItemType]) -> bool:
        for item in items:
            if item.count == 0:
                continue
            for dim in range(len(self.capacity)):
                if item.size[dim] > self.capacity[dim] + self.tolerance:
                    return False
        return True

    # ------------------------------------------------------------------ #
    # First-fit decreasing
    # ------------------------------------------------------------------ #
    def _first_fit_decreasing(
        self, items: Sequence[PackingItemType]
    ) -> dict[str, tuple[int, ...]] | None:
        """Greedy packing: biggest item groups first, each CU into the
        fullest bin that still fits (best-fit flavour keeps bins consolidated)."""
        order = sorted(
            items,
            key=lambda item: max(
                item.size[dim] / self.capacity[dim] if self.capacity[dim] > 0 else 0.0
                for dim in range(len(self.capacity))
            ),
            reverse=True,
        )
        loads = [[0.0] * len(self.capacity) for _ in range(self.num_bins)]
        assignment = {item.name: [0] * self.num_bins for item in items}

        for item in order:
            for _ in range(item.count):
                placed = False
                if self.placement == "consolidate":
                    candidates = sorted(range(self.num_bins), key=lambda b: -sum(loads[b]))
                else:
                    candidates = sorted(range(self.num_bins), key=lambda b: sum(loads[b]))
                for bin_index in candidates:
                    if self._fits(loads[bin_index], item.size):
                        for dim in range(len(self.capacity)):
                            loads[bin_index][dim] += item.size[dim]
                        assignment[item.name][bin_index] += 1
                        placed = True
                        break
                if not placed:
                    return None
        return {name: tuple(counts) for name, counts in assignment.items()}

    def _fits(self, load: Sequence[float], size: Sequence[float]) -> bool:
        return all(
            load[dim] + size[dim] <= self.capacity[dim] + self.tolerance
            for dim in range(len(self.capacity))
        )

    # ------------------------------------------------------------------ #
    # Exact search
    # ------------------------------------------------------------------ #
    def _exact_search(self, items: Sequence[PackingItemType]) -> PackingResult:
        """Depth-first search over per-kernel distributions with pruning.

        Kernels are processed in decreasing size order; for each kernel the
        search enumerates how many of its CUs go into each bin (bins visited
        in a canonical order to limit symmetric duplicates).  The node budget
        bounds worst-case effort; if it is exhausted the result is reported as
        not proven exact.
        """
        order = sorted(
            (item for item in items if item.count > 0),
            key=lambda item: (max(item.size), item.count),
            reverse=True,
        )
        loads = [[0.0] * len(self.capacity) for _ in range(self.num_bins)]
        assignment: dict[str, list[int]] = {item.name: [0] * self.num_bins for item in items}
        nodes = [0]

        def place_kernel(kernel_index: int) -> bool:
            if kernel_index == len(order):
                return True
            item = order[kernel_index]
            return distribute(item, 0, item.count, kernel_index)

        def distribute(item: PackingItemType, bin_index: int, remaining: int, kernel_index: int) -> bool:
            nodes[0] += 1
            if nodes[0] > self.max_backtrack_nodes:
                return False
            if remaining == 0:
                return place_kernel(kernel_index + 1)
            if bin_index == self.num_bins:
                return False
            max_here = self._max_count_in_bin(loads[bin_index], item.size, remaining)
            # Try putting as many as possible first (consolidation bias), down to zero.
            for count in range(max_here, -1, -1):
                if count:
                    for dim in range(len(self.capacity)):
                        loads[bin_index][dim] += count * item.size[dim]
                    assignment[item.name][bin_index] += count
                if self._remaining_capacity_ok(loads, order, kernel_index, item, remaining - count):
                    if distribute(item, bin_index + 1, remaining - count, kernel_index):
                        return True
                if count:
                    for dim in range(len(self.capacity)):
                        loads[bin_index][dim] -= count * item.size[dim]
                    assignment[item.name][bin_index] -= count
            return False

        feasible = place_kernel(0)
        exact = nodes[0] <= self.max_backtrack_nodes
        if feasible:
            return PackingResult(
                feasible=True,
                assignment={name: tuple(counts) for name, counts in assignment.items()},
                exact=True,
            )
        return PackingResult.infeasible(exact=exact)

    def _max_count_in_bin(self, load: Sequence[float], size: Sequence[float], remaining: int) -> int:
        limit = remaining
        for dim in range(len(self.capacity)):
            if size[dim] > 0:
                slack = self.capacity[dim] + self.tolerance - load[dim]
                limit = min(limit, int(math.floor(slack / size[dim] + 1e-12)))
        return max(0, limit)

    def _remaining_capacity_ok(
        self,
        loads: Sequence[Sequence[float]],
        order: Sequence[PackingItemType],
        kernel_index: int,
        current_item: PackingItemType,
        current_remaining: int,
    ) -> bool:
        """Aggregate-slack pruning: remaining items must fit in total slack."""
        for dim in range(len(self.capacity)):
            slack = sum(self.capacity[dim] - load[dim] for load in loads)
            demand = current_remaining * current_item.size[dim]
            for item in order[kernel_index + 1 :]:
                demand += item.count * item.size[dim]
            if demand > slack + self.tolerance * self.num_bins:
                return False
        return True
