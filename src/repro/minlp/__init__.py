"""Mixed-integer non-linear programming substrate.

Replaces the Couenne MINLP solver used as the exact reference in the paper:
a best-first branch-and-bound engine over integer box bounds with pluggable
node relaxations, secant relaxations for the concave spreading terms, and a
vector bin-packing feasibility kernel for the decomposed beta = 0 case.
"""

from .bounds import VariableBounds
from .branch_and_bound import (
    BBResult,
    BBSettings,
    BBStatus,
    BranchAndBoundSolver,
    RelaxationCache,
    RelaxationResult,
    shared_relaxation_cache,
    shared_relaxation_caches_clear,
)
from .binpacking import (
    PackingItemType,
    PackingMemo,
    PackingResult,
    VectorBinPacker,
    shared_packing_memo,
    shared_packing_memos_clear,
)
from .errors import BranchingError, InfeasibleProblemError, MINLPError
from .secant import (
    SecantSegment,
    secant_gap,
    secant_of,
    spreading_of_kernel,
    spreading_secant,
    spreading_term,
)

__all__ = [
    "BBResult",
    "BBSettings",
    "BBStatus",
    "BranchAndBoundSolver",
    "BranchingError",
    "InfeasibleProblemError",
    "MINLPError",
    "PackingItemType",
    "PackingMemo",
    "PackingResult",
    "RelaxationCache",
    "RelaxationResult",
    "SecantSegment",
    "VariableBounds",
    "VectorBinPacker",
    "secant_gap",
    "shared_packing_memo",
    "shared_packing_memos_clear",
    "shared_relaxation_cache",
    "shared_relaxation_caches_clear",
    "secant_of",
    "spreading_of_kernel",
    "spreading_secant",
    "spreading_term",
]
