"""Secant (chord) relaxations of concave functions.

The only nonconvex terms of the paper's MINLP (eqs. 5-10) are the spreading
functions ``phi_k = sum_f n/(1+n)`` -- each term concave and increasing in
``n``.  Over an interval ``[l, u]`` a concave function lies *above* its chord,
so replacing ``h(n)`` by the chord in a constraint ``phi >= sum h(n)`` yields
a valid convex (indeed linear) relaxation: any point feasible for the
original constraint is feasible for the relaxed one.  When branching fixes
``l == u`` the chord is exact, which is what makes the spatial
branch-and-bound converge to the true optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


def spreading_term(n: float) -> float:
    """The per-FPGA spreading contribution ``n / (1 + n)`` (eq. 4)."""
    if n < 0:
        raise ValueError("CU count must be non-negative")
    return n / (1.0 + n)


def spreading_of_kernel(counts_per_fpga: list[float] | tuple[float, ...]) -> float:
    """Spreading function of one kernel, ``phi_k = sum_f n_kf/(1+n_kf)``."""
    return sum(spreading_term(n) for n in counts_per_fpga)


@dataclass(frozen=True)
class SecantSegment:
    """The affine chord ``slope * n + intercept`` of a concave function on [l, u]."""

    lower: float
    upper: float
    slope: float
    intercept: float

    def value(self, n: float) -> float:
        return self.slope * n + self.intercept


def secant_of(function: Callable[[float], float], lower: float, upper: float) -> SecantSegment:
    """Chord of ``function`` over ``[lower, upper]``.

    For a degenerate interval (``lower == upper``) the chord collapses to the
    constant ``function(lower)``, i.e. the relaxation becomes exact.
    """
    if lower > upper:
        raise ValueError(f"invalid interval [{lower}, {upper}]")
    if upper == lower:
        return SecantSegment(lower=lower, upper=upper, slope=0.0, intercept=function(lower))
    f_lower = function(lower)
    f_upper = function(upper)
    slope = (f_upper - f_lower) / (upper - lower)
    intercept = f_lower - slope * lower
    return SecantSegment(lower=lower, upper=upper, slope=slope, intercept=intercept)


def spreading_secant(lower: float, upper: float) -> SecantSegment:
    """Chord of the spreading term ``n/(1+n)`` over ``[lower, upper]``."""
    return secant_of(spreading_term, lower, upper)


def secant_gap(function: Callable[[float], float], lower: float, upper: float, samples: int = 16) -> float:
    """Maximum gap between a concave function and its chord over [l, u].

    Used by tests (the gap must be non-negative and shrink to zero as the
    interval collapses) and by the branching rule that prefers variables whose
    relaxation is loosest.
    """
    segment = secant_of(function, lower, upper)
    if upper == lower:
        return 0.0
    worst = 0.0
    for index in range(samples + 1):
        n = lower + (upper - lower) * index / samples
        worst = max(worst, function(n) - segment.value(n))
    return worst
