"""Bin-completion feasibility core, compiled when numba is available.

The algorithm answers one question: can ``counts[k]`` copies of the size
vector ``sizes[k]`` be packed into bins with capacity rows ``caps``?  It is
the Korf-style *bin-completion* formulation of the search in
:mod:`repro.minlp.binpacking`: instead of branching item-by-item over bins,
bins are closed one at a time, each receiving a **maximal** feasible
completion (a per-item count vector to which no further item can be added).
Restricting to maximal completions is sound and complete for feasibility:
packing is monotone in the remaining-item vector, so bumping any bin's
content up to a maximal superset only shrinks the residual problem.

Pruning, in the order it is applied at each bin:

* **aggregate slack** -- everything still unplaced must fit into the summed
  capacity of the bins not yet closed (suffix sums, computed once);
* **dominated-state store** -- a bounded ring of proven-infeasible states
  ``(bin, remaining)``; a query with at least as many remaining items and at
  most as many remaining bins (the open bins are a suffix, hence a subset)
  is infeasible without search;
* **largest-item rule** -- when every open bin has the same capacity row the
  bins are interchangeable, so the current bin can be assumed to receive at
  least one copy of the largest remaining item (swap whole bin contents);
* a **node budget**, after which the verdict is "undecided" and the caller
  falls back to the branching search, preserving its budget contract.

The function body is written in nopython-compatible style (explicit stack,
preallocated arrays, no Python containers) so the *same source* runs as the
pure-NumPy reference implementation and, when numba is installed, as an
``@njit``-compiled kernel.  ``REPRO_PACKER_BACKEND`` selects between them:

* ``auto`` (default) -- compiled when numba imports, NumPy otherwise;
* ``numba`` -- require the compiled kernel (raises if numba is missing);
* ``numpy`` -- force the interpreted reference implementation.

Parity between the two is guaranteed by construction (one source) and
asserted by ``tests/test_packer_backends.py`` on hosts that have numba.
"""

from __future__ import annotations

import math
import os
from typing import Callable

import numpy as np

#: Verdicts returned by :func:`completion_feasible`.
FEASIBLE = 1
INFEASIBLE = -1
UNDECIDED = 0

#: Rows in the proven-infeasible state ring (per call; linear scan).
_STORE_ROWS = 256

_ENV_BACKEND = "REPRO_PACKER_BACKEND"


def _completion_feasible_impl(sizes, counts, caps, tol, budget, store_rows):
    """Return ``(verdict, nodes)`` for packing ``counts`` items into ``caps``.

    ``sizes``: (K, D) float64, one row per item type, largest first.
    ``counts``: (K,) int64 remaining copies per type.
    ``caps``: (F, D) float64 residual capacity rows, one per bin.
    Verdict: +1 feasible, -1 proven infeasible, 0 node budget exhausted.
    """
    K = sizes.shape[0]
    D = sizes.shape[1]
    F = caps.shape[0]

    remaining_total = 0
    for k in range(K):
        remaining_total += counts[k]
    if remaining_total == 0:
        return FEASIBLE, 0
    if F == 0:
        return INFEASIBLE, 0

    # Per-dimension demand of everything still unplaced, kept incrementally.
    demand = np.zeros(D)
    for k in range(K):
        for d in range(D):
            demand[d] += counts[k] * sizes[k, d]

    # Capacity suffix sums and "all open bins identical" flags, once per call.
    suffix_caps = np.zeros((F + 1, D))
    for b in range(F - 1, -1, -1):
        for d in range(D):
            suffix_caps[b, d] = suffix_caps[b + 1, d] + caps[b, d]
    identical_suffix = np.zeros(F, dtype=np.bool_)
    identical_suffix[F - 1] = True
    for b in range(F - 2, -1, -1):
        same = identical_suffix[b + 1]
        if same:
            for d in range(D):
                if caps[b, d] != caps[b + 1, d]:
                    same = False
                    break
        identical_suffix[b] = same

    # Ring buffer of proven-infeasible (bin, remaining-counts) states.
    store = np.zeros((store_rows, K + 1), dtype=np.int64)
    store_count = 0
    store_next = 0

    r = counts.astype(np.int64).copy()
    loads = np.zeros((F, D))

    # Explicit DFS stack: one frame per (bin, item) decision.  A frame with
    # item index K is the completed-completion checkpoint; it morphs in place
    # into the next bin's entry frame when the completion is maximal.
    #
    # Counts are enumerated in a balanced zigzag: start from the even split
    # across the open bins, walk up to the fit limit, then down to the lower
    # bound.  Feasible witnesses of balance-placement workloads sit near the
    # even split, so they surface orders of magnitude sooner than under the
    # lexicographic-maximum order; exhaustive enumeration (and hence every
    # verdict) is unchanged, only the visiting order differs.
    max_frames = F * (K + 1) + 2
    frame_bin = np.zeros(max_frames, dtype=np.int64)
    frame_item = np.zeros(max_frames, dtype=np.int64)
    frame_count = np.zeros(max_frames, dtype=np.int64)
    frame_lo = np.zeros(max_frames, dtype=np.int64)
    frame_hi = np.zeros(max_frames, dtype=np.int64)
    frame_start = np.zeros(max_frames, dtype=np.int64)
    frame_up = np.zeros(max_frames, dtype=np.bool_)

    nodes = 0
    sp = 0
    frame_bin[0] = 0
    frame_item[0] = 0
    descend = True  # False: resuming frame sp after a failed child subtree

    while sp >= 0:
        b = frame_bin[sp]
        i = frame_item[sp]
        if descend:
            nodes += 1
            if nodes > budget:
                return UNDECIDED, nodes
            if i == 0:
                if b == F:
                    descend = False
                    sp -= 1
                    continue
                # Dominated by a recorded infeasible state?
                pruned = False
                for s in range(store_count):
                    if store[s, 0] <= b:
                        dominated = True
                        for k in range(K):
                            if r[k] < store[s, k + 1]:
                                dominated = False
                                break
                        if dominated:
                            pruned = True
                            break
                if pruned:
                    descend = False
                    sp -= 1
                    continue
            if i < K:
                # Slack prune: of the unplaced demand, at most the open bin's
                # residual can still land in bin b; the rest must fit into the
                # later bins.  At a fresh bin this is the plain aggregate
                # bound; mid-completion it sharpens as the bin fills up.
                pruned = False
                for d in range(D):
                    leftover = demand[d] - (caps[b, d] + tol - loads[b, d])
                    if leftover > suffix_caps[b + 1, d] + tol * (F - b):
                        pruned = True
                        break
                if pruned:
                    descend = False
                    sp -= 1
                    continue
            if i == K:
                # Completion of bin b chosen; keep only maximal completions.
                maximal = True
                for k in range(K):
                    if r[k] > 0:
                        fits = True
                        for d in range(D):
                            if sizes[k, d] > caps[b, d] + tol - loads[b, d]:
                                fits = False
                                break
                        if fits:
                            maximal = False
                            break
                if not maximal:
                    descend = False
                    sp -= 1
                    continue
                frame_bin[sp] = b + 1
                frame_item[sp] = 0
                continue
            # Choice frame: how many copies of item i go into bin b.
            hi = r[i]
            if hi > 0:
                for d in range(D):
                    s = sizes[i, d]
                    if s > 0.0:
                        limit = (caps[b, d] + tol - loads[b, d]) / s
                        if limit < hi:
                            fit = int(math.floor(limit + 1e-12))
                            if fit < hi:
                                hi = fit
                if hi < 0:
                    hi = 0
            lo = 0
            if identical_suffix[b]:
                # All open bins identical AND this bin still empty: the
                # largest remaining item can be assumed to land here
                # (whole-bin exchange argument).  Once the bin holds load the
                # exchange would have to move the committed items too, so the
                # rule only applies while the completion is all zero-size.
                empty = True
                for d in range(D):
                    if loads[b, d] != 0.0:
                        empty = False
                        break
                if empty:
                    first = -1
                    for k in range(K):
                        if r[k] > 0:
                            first = k
                            break
                    if first == i:
                        lo = 1
            if hi < lo:
                if i == 0 and store_rows > 0:
                    store[store_next, 0] = b
                    for k in range(K):
                        store[store_next, k + 1] = r[k]
                    store_next = (store_next + 1) % store_rows
                    if store_count < store_rows:
                        store_count += 1
                descend = False
                sp -= 1
                continue
            start = (r[i] + (F - b) - 1) // (F - b)  # even split over open bins
            if start > hi:
                start = hi
            if start < lo:
                start = lo
            frame_lo[sp] = lo
            frame_hi[sp] = hi
            frame_start[sp] = start
            frame_count[sp] = start
            frame_up[sp] = True
        else:
            # A child subtree failed: undo the current choice, zigzag on.
            c = frame_count[sp]
            if c > 0:
                r[i] += c
                remaining_total += c
                for d in range(D):
                    loads[b, d] -= c * sizes[i, d]
                    demand[d] += c * sizes[i, d]
            advanced = False
            if frame_up[sp]:
                if c + 1 <= frame_hi[sp]:
                    frame_count[sp] = c + 1
                    advanced = True
                else:
                    frame_up[sp] = False
                    c = frame_start[sp]
            if not advanced and not frame_up[sp]:
                if c - 1 >= frame_lo[sp]:
                    frame_count[sp] = c - 1
                    advanced = True
            if not advanced:
                if i == 0 and store_rows > 0:
                    # All completions of bin b exhausted for this state.
                    store[store_next, 0] = b
                    for k in range(K):
                        store[store_next, k + 1] = r[k]
                    store_next = (store_next + 1) % store_rows
                    if store_count < store_rows:
                        store_count += 1
                sp -= 1
                continue
            descend = True
        # Apply the current choice and descend into the next decision.
        c = frame_count[sp]
        if c > 0:
            r[i] -= c
            remaining_total -= c
            for d in range(D):
                loads[b, d] += c * sizes[i, d]
                demand[d] -= c * sizes[i, d]
            if remaining_total == 0:
                return FEASIBLE, nodes
        nxt = i + 1
        while nxt < K and r[nxt] == 0:
            nxt += 1
        sp += 1
        frame_bin[sp] = b
        frame_item[sp] = nxt
    return INFEASIBLE, nodes


def _greedy_feasible_impl(sizes, counts, caps, tol):
    """Most-slack-first greedy packing; True proves feasibility, False says
    nothing.  Cheap witness check for the oracle's nearly-packed residual
    states, sparing a full completion search."""
    K = sizes.shape[0]
    D = sizes.shape[1]
    F = caps.shape[0]
    loads = np.zeros((F, D))
    for i in range(K):
        for _ in range(counts[i]):
            best = -1
            best_slack = -1.0
            for b in range(F):
                fits = True
                slack = 0.0
                for d in range(D):
                    residual = caps[b, d] + tol - loads[b, d]
                    if sizes[i, d] > residual:
                        fits = False
                        break
                    slack += residual
                if fits and slack > best_slack:
                    best = b
                    best_slack = slack
            if best < 0:
                return False
            for d in range(D):
                loads[best, d] += sizes[i, d]
    return True


#: Per-half row cap of the two-bin meet-in-the-middle tables.  Beyond this the
#: decider declines (``two_bin_tables`` returns ``None``) and the caller uses
#: the completion engine instead.
_TWO_BIN_MAX_ROWS = 200_000

#: Rows of the first half combined per vectorised pairing step.
_TWO_BIN_CHUNK = 1024


class TwoBinTables:
    """Precomputed sub-multiset enumeration for the two-bin decider.

    The item types are split into two halves with balanced enumeration sizes;
    for each half every count sub-vector ``0 <= x <= counts`` is tabulated
    together with its load vector ``x @ sizes``.  The tables depend only on
    the item multiset, so one instance serves the root query and every
    residual oracle query of a pack call.
    """

    __slots__ = ("index_a", "index_b", "counts_a", "counts_b", "sums_a", "sums_b")

    def __init__(self, index_a, index_b, counts_a, counts_b, sums_a, sums_b):
        self.index_a = index_a
        self.index_b = index_b
        self.counts_a = counts_a
        self.counts_b = counts_b
        self.sums_a = sums_a
        self.sums_b = sums_b


def _half_table(sizes: np.ndarray, counts: np.ndarray, index: np.ndarray):
    """All count sub-vectors over ``index`` with their load vectors."""
    if index.size == 0:
        return (
            np.zeros((1, 0), dtype=np.int64),
            np.zeros((1, sizes.shape[1])),
        )
    grids = np.meshgrid(*[np.arange(counts[k] + 1) for k in index], indexing="ij")
    vectors = np.stack([grid.ravel() for grid in grids], axis=1).astype(np.int64)
    return vectors, vectors @ sizes[index]


def two_bin_tables(
    sizes: np.ndarray,
    counts: np.ndarray,
    max_rows: int = _TWO_BIN_MAX_ROWS,
) -> "TwoBinTables | None":
    """Meet-in-the-middle tables for two-bin feasibility, or ``None``.

    With two bins a packing is determined by the sub-multiset sent to the
    first bin, so feasibility is a box query over sub-multiset load vectors.
    Item types are split greedily (largest enumeration factor first, onto the
    currently smaller half) to balance the two table sizes; when either half
    would still exceed ``max_rows`` the instance is too large for tabulation
    and the caller should fall back to the completion engine.
    """
    sizes = np.ascontiguousarray(sizes, dtype=np.float64)
    counts = np.ascontiguousarray(counts, dtype=np.int64)
    factors = [(int(counts[k]) + 1, k) for k in range(counts.shape[0])]
    factors.sort(key=lambda pair: (-pair[0], pair[1]))
    half_a: list[int] = []
    half_b: list[int] = []
    rows_a = rows_b = 1
    for factor, k in factors:
        if rows_a <= rows_b:
            half_a.append(k)
            rows_a *= factor
        else:
            half_b.append(k)
            rows_b *= factor
    if rows_a > max_rows or rows_b > max_rows:
        return None
    index_a = np.array(sorted(half_a), dtype=np.int64)
    index_b = np.array(sorted(half_b), dtype=np.int64)
    counts_a, sums_a = _half_table(sizes, counts, index_a)
    counts_b, sums_b = _half_table(sizes, counts, index_b)
    return TwoBinTables(index_a, index_b, counts_a, counts_b, sums_a, sums_b)


def two_bin_filter(
    tables: TwoBinTables, residual_counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Load vectors of the sub-multisets available under ``residual_counts``.

    The filtered pair depends only on the residual count vector, not on the
    bin loads, so callers probing many load states of the same residual
    (the branching search's oracle) can cache it.
    """
    residual_counts = np.asarray(residual_counts, dtype=np.int64)
    mask_a = np.all(tables.counts_a <= residual_counts[tables.index_a], axis=1)
    mask_b = np.all(tables.counts_b <= residual_counts[tables.index_b], axis=1)
    return tables.sums_a[mask_a], tables.sums_b[mask_b]


def two_bin_box_feasible(
    sums_a: np.ndarray,
    sums_b: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
) -> int:
    """Does some pair ``a + b`` land inside ``[lower, upper]`` componentwise?"""
    # A half alone must stay under the upper box edge (the other half only
    # adds load); this screens most rows before the pairwise combination.
    sums_a = sums_a[np.all(sums_a <= upper, axis=1)]
    sums_b = sums_b[np.all(sums_b <= upper, axis=1)]
    if sums_a.shape[0] == 0 or sums_b.shape[0] == 0:
        return INFEASIBLE
    for begin in range(0, sums_a.shape[0], _TWO_BIN_CHUNK):
        chunk = sums_a[begin : begin + _TWO_BIN_CHUNK]
        combined = chunk[:, None, :] + sums_b[None, :, :]
        hits = np.all((combined >= lower) & (combined <= upper), axis=2)
        if np.any(hits):
            return FEASIBLE
    return INFEASIBLE


def two_bin_feasible(
    tables: TwoBinTables,
    residual_counts: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
) -> int:
    """Exact two-bin feasibility: :data:`FEASIBLE` or :data:`INFEASIBLE`.

    Decides whether some sub-multiset ``x <= residual_counts`` has a load
    vector within ``[lower, upper]`` componentwise -- the caller folds the
    two bins' residual capacities (and tolerance) into the box.  Unlike the
    search engines this never runs out of budget: the tables already hold
    the full enumeration, so every answer is a proof.
    """
    sums_a, sums_b = two_bin_filter(tables, residual_counts)
    return two_bin_box_feasible(sums_a, sums_b, lower, upper)


_COMPILED: "Callable | None" = None
_COMPILED_GREEDY: "Callable | None" = None
_NUMBA_CHECKED = False
_NUMBA_OK = False


def numba_available() -> bool:
    """True when numba imports (checked once, lazily)."""
    global _NUMBA_CHECKED, _NUMBA_OK
    if not _NUMBA_CHECKED:
        try:
            import numba  # noqa: F401

            _NUMBA_OK = True
        except Exception:
            _NUMBA_OK = False
        _NUMBA_CHECKED = True
    return _NUMBA_OK


def _compiled_kernel() -> Callable:
    global _COMPILED
    if _COMPILED is None:
        import numba

        _COMPILED = numba.njit(cache=False)(_completion_feasible_impl)
    return _COMPILED


def _compiled_greedy() -> Callable:
    global _COMPILED_GREEDY
    if _COMPILED_GREEDY is None:
        import numba

        _COMPILED_GREEDY = numba.njit(cache=False)(_greedy_feasible_impl)
    return _COMPILED_GREEDY


def resolve_backend(name: "str | None" = None) -> str:
    """Resolve the packer backend: ``numba`` or ``numpy``.

    ``name`` overrides the ``REPRO_PACKER_BACKEND`` environment variable
    (``auto`` | ``numba`` | ``numpy``).
    """
    if name is None:
        name = os.environ.get(_ENV_BACKEND, "auto")
    name = name.strip().lower() or "auto"
    if name == "auto":
        return "numba" if numba_available() else "numpy"
    if name == "numba":
        if not numba_available():
            raise RuntimeError(
                "REPRO_PACKER_BACKEND=numba but numba is not importable; "
                "install numba or use 'auto'/'numpy'"
            )
        return "numba"
    if name == "numpy":
        return "numpy"
    raise ValueError(f"unknown packer backend {name!r}; use auto, numba or numpy")


def completion_feasible(
    sizes: np.ndarray,
    counts: np.ndarray,
    caps: np.ndarray,
    tolerance: float,
    budget: int,
    backend: "str | None" = None,
) -> tuple[int, int]:
    """Bin-completion feasibility of packing ``counts`` items into ``caps``.

    Returns ``(verdict, nodes)`` with verdict one of :data:`FEASIBLE`,
    :data:`INFEASIBLE` (proven) or :data:`UNDECIDED` (budget exhausted).
    """
    sizes = np.ascontiguousarray(sizes, dtype=np.float64)
    counts = np.ascontiguousarray(counts, dtype=np.int64)
    caps = np.ascontiguousarray(caps, dtype=np.float64)
    if sizes.ndim != 2 or caps.ndim != 2 or counts.ndim != 1:
        raise ValueError("sizes/caps must be 2-D and counts 1-D")
    if sizes.shape[0] != counts.shape[0] or sizes.shape[1] != caps.shape[1]:
        raise ValueError("inconsistent item/bin dimensions")
    kernel = (
        _compiled_kernel()
        if resolve_backend(backend) == "numba"
        else _completion_feasible_impl
    )
    verdict, nodes = kernel(
        sizes, counts, caps, float(tolerance), int(budget), _STORE_ROWS
    )
    return int(verdict), int(nodes)


def greedy_feasible(
    sizes: np.ndarray,
    counts: np.ndarray,
    caps: np.ndarray,
    tolerance: float,
    backend: "str | None" = None,
) -> bool:
    """True when the most-slack-first greedy packs the instance (a witness);
    False proves nothing."""
    sizes = np.ascontiguousarray(sizes, dtype=np.float64)
    counts = np.ascontiguousarray(counts, dtype=np.int64)
    caps = np.ascontiguousarray(caps, dtype=np.float64)
    kernel = (
        _compiled_greedy()
        if resolve_backend(backend) == "numba"
        else _greedy_feasible_impl
    )
    return bool(kernel(sizes, counts, caps, float(tolerance)))
