"""Integer box bounds manipulated by the branch-and-bound engine."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Mapping


@dataclass(frozen=True)
class VariableBounds:
    """Immutable integer box bounds for a set of variables.

    Bounds are stored as ``{name: (lower, upper)}`` with inclusive integer
    endpoints.  Branch-and-bound nodes derive child bounds via
    :meth:`with_upper` / :meth:`with_lower` without mutating the parent.
    """

    bounds: Mapping[str, tuple[int, int]]

    def __post_init__(self) -> None:
        for name, (lower, upper) in self.bounds.items():
            if lower > upper:
                raise ValueError(f"empty bound interval for {name!r}: [{lower}, {upper}]")
            if lower < 0:
                raise ValueError(f"negative lower bound for {name!r}")

    @classmethod
    def from_ranges(cls, ranges: Mapping[str, tuple[int, int]]) -> "VariableBounds":
        return cls(bounds=dict(ranges))

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def __getitem__(self, name: str) -> tuple[int, int]:
        return self.bounds[name]

    def __contains__(self, name: str) -> bool:
        return name in self.bounds

    def __iter__(self) -> Iterator[str]:
        return iter(self.bounds)

    def __len__(self) -> int:
        return len(self.bounds)

    def lower(self, name: str) -> int:
        return self.bounds[name][0]

    def upper(self, name: str) -> int:
        return self.bounds[name][1]

    def is_fixed(self, name: str) -> bool:
        lower, upper = self.bounds[name]
        return lower == upper

    def all_fixed(self) -> bool:
        return all(self.is_fixed(name) for name in self.bounds)

    def widths(self) -> dict[str, int]:
        """Interval width per variable (0 means fixed)."""
        return {name: upper - lower for name, (lower, upper) in self.bounds.items()}

    def volume_log(self) -> float:
        """Log of the number of integer points in the box (search-space size)."""
        return sum(math.log(upper - lower + 1) for lower, upper in self.bounds.values())

    # ------------------------------------------------------------------ #
    # Branching
    # ------------------------------------------------------------------ #
    def with_upper(self, name: str, upper: int) -> "VariableBounds":
        """Child bounds with ``name <= upper``; raises if the interval empties."""
        lower, old_upper = self.bounds[name]
        new_bounds = dict(self.bounds)
        new_bounds[name] = (lower, min(old_upper, upper))
        return VariableBounds(bounds=new_bounds)

    def with_lower(self, name: str, lower: int) -> "VariableBounds":
        """Child bounds with ``name >= lower``; raises if the interval empties."""
        old_lower, upper = self.bounds[name]
        new_bounds = dict(self.bounds)
        new_bounds[name] = (max(old_lower, lower), upper)
        return VariableBounds(bounds=new_bounds)

    def with_fixed(self, name: str, value: int) -> "VariableBounds":
        """Child bounds with ``name`` fixed to ``value``."""
        new_bounds = dict(self.bounds)
        new_bounds[name] = (value, value)
        return VariableBounds(bounds=new_bounds)

    def clamp(self, values: Mapping[str, float]) -> dict[str, float]:
        """Clamp a (fractional) point into the box."""
        clamped: dict[str, float] = {}
        for name, value in values.items():
            if name in self.bounds:
                lower, upper = self.bounds[name]
                clamped[name] = min(max(value, lower), upper)
            else:
                clamped[name] = value
        return clamped

    def contains_point(self, values: Mapping[str, float], tolerance: float = 1e-9) -> bool:
        """Whether a point lies inside the box (within tolerance)."""
        for name, (lower, upper) in self.bounds.items():
            value = values.get(name)
            if value is None:
                return False
            if value < lower - tolerance or value > upper + tolerance:
                return False
        return True
