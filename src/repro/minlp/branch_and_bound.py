"""Generic best-first branch-and-bound engine for convexifiable MINLPs.

The engine is deliberately problem-agnostic: it works with three callbacks,

* a *relaxation solver* mapping integer box bounds to a lower bound and a
  (possibly fractional) solution,
* an *incumbent evaluator* mapping an integer point to its true objective
  (or ``None`` when the point is infeasible for the original problem),
* an optional *rounding heuristic* that proposes integer points near a
  fractional relaxation solution to warm up the incumbent.

The allocation-specific relaxations (the LP + initiation-interval search of
:mod:`repro.core.exact`) plug into this engine; the paper's reference tool
(Couenne) follows the same spatial branch-and-bound architecture.

Two performance features are built into the engine itself:

* **Relaxation caching** -- node relaxations are memoized keyed on the node's
  box bounds (a :class:`RelaxationCache` can also be shared across solver
  instances, e.g. across the points of a design-space sweep, so identical
  subproblems are never re-solved).  Hit/miss counts are reported on
  :class:`BBResult`.
* **Warm-starting** -- when the relaxation solver accepts a second argument,
  each child node receives its parent's :class:`RelaxationResult`, whose
  objective is a valid lower bound for the shrunken box and lets monotone
  solvers (the min-max bisection) start from a much tighter bracket.
"""

from __future__ import annotations

import heapq
import inspect
import itertools
import math
import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Iterable, Mapping

from ..obs.trace import span
from .bounds import VariableBounds
from .errors import InfeasibleProblemError

#: Tolerance under which a relaxation value is considered integral.
INTEGRALITY_TOLERANCE = 1e-6


@dataclass(frozen=True)
class RelaxationResult:
    """Outcome of solving one node's continuous relaxation.

    ``metadata`` carries solver-specific warm-start hints (e.g. the optimal
    II of the allocation relaxation); the engine passes the parent's result
    to the relaxation solver, which may read them back.
    """

    feasible: bool
    objective: float
    solution: Mapping[str, float] = field(default_factory=dict)
    metadata: Mapping[str, float] = field(default_factory=dict)

    @classmethod
    def infeasible(cls) -> "RelaxationResult":
        return cls(feasible=False, objective=math.inf, solution={})


class BBStatus(Enum):
    """Termination status of a branch-and-bound run."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # stopped at a limit with an incumbent but a gap
    INFEASIBLE = "infeasible"
    NO_SOLUTION = "no-solution"  # stopped at a limit without any incumbent


class RelaxationCache:
    """Memo of relaxation results keyed on canonical node bounds.

    Within one tree the boxes of distinct nodes are disjoint, so the payoff
    comes from *sharing* a cache across solver runs: repeated solves of the
    same problem (a sweep re-solving each constraint for several heuristic
    parameters, a root relaxation that equals the already-solved GP step)
    return instantly.  Use :func:`shared_relaxation_cache` with a value-key
    identifying the underlying problem to get that sharing; node bounds
    alone are not a safe key across different problems.  Eviction is FIFO
    with a bounded entry count.
    """

    def __init__(self, max_entries: int = 8192):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self._max_entries = max_entries
        self._entries: dict[tuple, RelaxationResult] = {}
        # Shared caches are hit concurrently by the threaded HTTP service;
        # the lock keeps eviction-during-insert and counter updates safe.
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_of(bounds: VariableBounds) -> tuple:
        return tuple(sorted((name, *bounds[name]) for name in bounds))

    def get(self, bounds: VariableBounds) -> "RelaxationResult | None":
        key = self.key_of(bounds)
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
            else:
                self.hits += 1
        return result

    def put(self, bounds: VariableBounds, result: "RelaxationResult") -> None:
        key = self.key_of(bounds)
        with self._lock:
            if len(self._entries) >= self._max_entries:
                self._entries.pop(next(iter(self._entries)))
            self._entries[key] = result

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0


#: Bounded registry of relaxation caches shared across solver runs, keyed by
#: a caller-supplied value-key identifying the underlying problem.
_SHARED_CACHES: "dict[tuple, RelaxationCache]" = {}
_SHARED_CACHE_LIMIT = 64
_SHARED_CACHES_LOCK = threading.Lock()


def shared_relaxation_cache(key: tuple, max_entries: int = 8192) -> RelaxationCache:
    """Relaxation cache shared by every solver run over the same problem.

    Node relaxations depend only on the problem data and the node's box
    bounds, so separate branch-and-bound runs over one problem (repeated
    discretisations, sweep re-solves) can reuse each other's node bounds.
    The caller's ``key`` must identify the problem by value; the registry
    keeps at most ``_SHARED_CACHE_LIMIT`` caches (FIFO eviction).
    """
    with _SHARED_CACHES_LOCK:
        cache = _SHARED_CACHES.get(key)
        if cache is None:
            if len(_SHARED_CACHES) >= _SHARED_CACHE_LIMIT:
                _SHARED_CACHES.pop(next(iter(_SHARED_CACHES)))
            cache = RelaxationCache(max_entries=max_entries)
            _SHARED_CACHES[key] = cache
    return cache


def shared_relaxation_caches_clear() -> None:
    """Drop every shared relaxation cache (used by tests and benchmarks)."""
    with _SHARED_CACHES_LOCK:
        _SHARED_CACHES.clear()


@dataclass(frozen=True)
class BBResult:
    """Result of a branch-and-bound run."""

    status: BBStatus
    objective: float
    solution: dict[str, int]
    lower_bound: float
    nodes_explored: int
    runtime_seconds: float
    relaxation_cache_hits: int = 0
    relaxation_cache_misses: int = 0
    #: Instrumentation deltas from the relaxation solver's counters (LP
    #: solves, probes, feasibility memo hits, ...) accumulated over this run.
    counters: Mapping[str, int] = field(default_factory=dict)

    @property
    def gap(self) -> float:
        """Relative optimality gap (0 when proven optimal)."""
        if not math.isfinite(self.objective) or not math.isfinite(self.lower_bound):
            return math.inf
        if abs(self.objective) < 1e-12:
            return abs(self.objective - self.lower_bound)
        return max(0.0, (self.objective - self.lower_bound) / abs(self.objective))

    @property
    def has_solution(self) -> bool:
        return bool(self.solution) and math.isfinite(self.objective)


@dataclass(frozen=True)
class BBSettings:
    """Limits and tolerances of the search.

    ``child_order`` controls the order in which a node's children enter the
    frontier: ``"fixed"`` (the historical floor-then-ceiling order) or
    ``"bound"`` (children sorted by their relaxation lower bound, so among
    equal-bound frontier entries the better-bounded child is expanded
    first).  The best-first heap makes this a tie-breaking refinement; it
    changes the search path -- and with it which optimal incumbent is found
    -- only when bounds tie, which is why ``"fixed"`` stays the default.
    """

    max_nodes: int = 20_000
    time_limit_seconds: float = 120.0
    gap_tolerance: float = 1e-6
    integrality_tolerance: float = INTEGRALITY_TOLERANCE
    child_order: str = "fixed"

    def __post_init__(self) -> None:
        if self.child_order not in ("fixed", "bound"):
            raise ValueError("child_order must be 'fixed' or 'bound'")


#: A relaxation solver maps node bounds to a bound + fractional solution; it
#: may optionally accept the parent node's relaxation as a second positional
#: argument to warm-start (``None`` at the root).
RelaxationSolver = Callable[..., RelaxationResult]
IncumbentEvaluator = Callable[[Mapping[str, int]], float | None]
RoundingHeuristic = Callable[[Mapping[str, float], VariableBounds], Iterable[Mapping[str, int]]]


def _accepts_parent(solver: RelaxationSolver) -> bool:
    """Whether a relaxation solver takes a (bounds, parent) pair."""
    try:
        parameters = inspect.signature(solver).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins/C callables
        return False
    positional = [
        parameter
        for parameter in parameters.values()
        if parameter.kind
        in (inspect.Parameter.POSITIONAL_ONLY, inspect.Parameter.POSITIONAL_OR_KEYWORD)
    ]
    if any(
        parameter.kind is inspect.Parameter.VAR_POSITIONAL for parameter in parameters.values()
    ):
        return True
    return len(positional) >= 2


@dataclass(order=True)
class _Node:
    """Priority-queue entry; ordered by relaxation bound (best-first)."""

    bound: float
    sequence: int
    bounds: VariableBounds = field(compare=False)
    relaxation: RelaxationResult = field(compare=False)
    depth: int = field(compare=False, default=0)


class BranchAndBoundSolver:
    """Best-first branch-and-bound over integer box bounds."""

    def __init__(
        self,
        relaxation_solver: RelaxationSolver,
        incumbent_evaluator: IncumbentEvaluator,
        rounding_heuristic: RoundingHeuristic | None = None,
        settings: BBSettings = BBSettings(),
        relaxation_cache: RelaxationCache | None = None,
        counters_provider: "Callable[[], Mapping[str, int]] | None" = None,
    ):
        self._relax = relaxation_solver
        self._relax_takes_parent = _accepts_parent(relaxation_solver)
        self._evaluate = incumbent_evaluator
        self._round = rounding_heuristic
        self._settings = settings
        self._cache = relaxation_cache
        #: Optional callable returning monotone instrumentation counters of
        #: the relaxation solver; the per-run delta lands on ``BBResult``.
        self._counters_provider = counters_provider

    def _solve_relaxation(
        self, bounds: VariableBounds, parent: RelaxationResult | None = None
    ) -> RelaxationResult:
        """Solve one node's relaxation through the cache and warm start."""
        if self._cache is not None:
            cached = self._cache.get(bounds)
            if cached is not None:
                return cached
        if self._relax_takes_parent:
            result = self._relax(bounds, parent)
        else:
            result = self._relax(bounds)
        if self._cache is not None:
            self._cache.put(bounds, result)
        return result

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def solve(
        self,
        initial_bounds: VariableBounds,
        initial_incumbent: Mapping[str, int] | None = None,
    ) -> BBResult:
        """Run the search starting from ``initial_bounds``.

        ``initial_incumbent`` may seed the search with a known feasible point
        (e.g. the GP+A heuristic solution), which dramatically improves
        pruning on symmetric instances.
        """
        start = time.perf_counter()
        settings = self._settings
        counter = itertools.count()
        hits_before = self._cache.hits if self._cache is not None else 0
        misses_before = self._cache.misses if self._cache is not None else 0

        def cache_stats() -> tuple[int, int]:
            if self._cache is None:
                return 0, 0
            return self._cache.hits - hits_before, self._cache.misses - misses_before

        counters_before = (
            dict(self._counters_provider()) if self._counters_provider is not None else {}
        )

        def counter_deltas() -> dict[str, int]:
            if self._counters_provider is None:
                return {}
            return {
                name: value - counters_before.get(name, 0)
                for name, value in self._counters_provider().items()
            }

        best_objective = math.inf
        best_solution: dict[str, int] = {}
        if initial_incumbent is not None:
            seeded = {name: int(round(value)) for name, value in initial_incumbent.items()}
            value = self._evaluate(seeded)
            if value is not None:
                best_objective = value
                best_solution = seeded

        root_relaxation = self._solve_relaxation(initial_bounds)
        if not root_relaxation.feasible:
            if best_solution:
                # The caller's incumbent is feasible even though the root
                # relaxation is not (should not happen for exact relaxations).
                hits, misses = cache_stats()
                return BBResult(
                    status=BBStatus.FEASIBLE,
                    objective=best_objective,
                    solution=best_solution,
                    lower_bound=-math.inf,
                    nodes_explored=0,
                    runtime_seconds=time.perf_counter() - start,
                    relaxation_cache_hits=hits,
                    relaxation_cache_misses=misses,
                    counters=counter_deltas(),
                )
            raise InfeasibleProblemError("root relaxation is infeasible")

        heap: list[_Node] = [
            _Node(
                bound=root_relaxation.objective,
                sequence=next(counter),
                bounds=initial_bounds,
                relaxation=root_relaxation,
            )
        ]
        nodes_explored = 0
        global_lower = root_relaxation.objective

        while heap:
            if nodes_explored >= settings.max_nodes:
                break
            if time.perf_counter() - start > settings.time_limit_seconds:
                break

            with span("bb_node"):
                node = heapq.heappop(heap)
                global_lower = node.bound if not heap else min(node.bound, heap[0].bound)
                if node.bound >= best_objective - settings.gap_tolerance * max(1.0, abs(best_objective)):
                    # Everything remaining is at least as bad as the incumbent.
                    global_lower = max(global_lower, node.bound)
                    break
                nodes_explored += 1

                fractional = self._fractional_variables(node.relaxation.solution, node.bounds)
                if not fractional:
                    # Integral relaxation: candidate incumbent.
                    candidate = {
                        name: int(round(node.relaxation.solution.get(name, node.bounds.lower(name))))
                        for name in node.bounds
                    }
                    value = self._evaluate(candidate)
                    if value is not None and value < best_objective:
                        best_objective = value
                        best_solution = candidate
                    continue

                # Try rounding heuristics to tighten the incumbent early.
                if self._round is not None:
                    for proposal in self._round(node.relaxation.solution, node.bounds):
                        candidate = {name: int(proposal[name]) for name in proposal}
                        value = self._evaluate(candidate)
                        if value is not None and value < best_objective:
                            best_objective = value
                            best_solution = candidate

                branch_name, branch_value = self._select_branching(fractional)
                floor_value = int(math.floor(branch_value))
                children = []
                lower, upper = node.bounds[branch_name]
                if floor_value >= lower:
                    children.append(node.bounds.with_upper(branch_name, floor_value))
                if floor_value + 1 <= upper:
                    children.append(node.bounds.with_lower(branch_name, floor_value + 1))

                solved_children = []
                for child_bounds in children:
                    relaxation = self._solve_relaxation(child_bounds, node.relaxation)
                    if not relaxation.feasible:
                        continue
                    if relaxation.objective >= best_objective - settings.gap_tolerance * max(
                        1.0, abs(best_objective)
                    ):
                        continue
                    solved_children.append((child_bounds, relaxation))
                if settings.child_order == "bound":
                    # Lower-bound-guided ordering: the better-bounded child
                    # gets the smaller sequence number, so it wins heap ties
                    # against its sibling (and any other equal-bound frontier
                    # node).
                    solved_children.sort(key=lambda entry: entry[1].objective)
                for child_bounds, relaxation in solved_children:
                    heapq.heappush(
                        heap,
                        _Node(
                            bound=relaxation.objective,
                            sequence=next(counter),
                            bounds=child_bounds,
                            relaxation=relaxation,
                            depth=node.depth + 1,
                        ),
                    )

        runtime = time.perf_counter() - start
        if heap:
            global_lower = min(global_lower, heap[0].bound)
        else:
            # Search exhausted: the incumbent (if any) is optimal.
            global_lower = best_objective if math.isfinite(best_objective) else global_lower

        hits, misses = cache_stats()
        if not math.isfinite(best_objective):
            status = BBStatus.NO_SOLUTION if (heap or nodes_explored) else BBStatus.INFEASIBLE
            return BBResult(
                status=status,
                objective=math.inf,
                solution={},
                lower_bound=global_lower,
                nodes_explored=nodes_explored,
                runtime_seconds=runtime,
                relaxation_cache_hits=hits,
                relaxation_cache_misses=misses,
                counters=counter_deltas(),
            )

        gap = (best_objective - global_lower) / max(1e-12, abs(best_objective))
        status = BBStatus.OPTIMAL if gap <= max(settings.gap_tolerance, 1e-9) * 10 else BBStatus.FEASIBLE
        return BBResult(
            status=status,
            objective=best_objective,
            solution=best_solution,
            lower_bound=min(global_lower, best_objective),
            nodes_explored=nodes_explored,
            runtime_seconds=runtime,
            relaxation_cache_hits=hits,
            relaxation_cache_misses=misses,
            counters=counter_deltas(),
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _fractional_variables(
        self, solution: Mapping[str, float], bounds: VariableBounds
    ) -> dict[str, float]:
        """Variables whose relaxation value is not (nearly) integral."""
        tolerance = self._settings.integrality_tolerance
        fractional: dict[str, float] = {}
        for name in bounds:
            value = solution.get(name)
            if value is None:
                continue
            if abs(value - round(value)) > tolerance:
                fractional[name] = value
        return fractional

    @staticmethod
    def _select_branching(fractional: Mapping[str, float]) -> tuple[str, float]:
        """Most-fractional branching rule."""
        def distance(item: tuple[str, float]) -> float:
            _, value = item
            return abs(value - math.floor(value) - 0.5)

        name, value = min(fractional.items(), key=distance)
        return name, value
