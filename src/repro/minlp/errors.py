"""Exceptions raised by the MINLP package."""

from __future__ import annotations


class MINLPError(Exception):
    """Base class for MINLP solver errors."""


class InfeasibleProblemError(MINLPError):
    """Raised when the root relaxation (or the whole problem) is infeasible."""


class BranchingError(MINLPError):
    """Raised when the solver cannot select a branching variable."""
