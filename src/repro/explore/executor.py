"""Parallel/batched execution engine for design-space sweeps.

Every figure of the paper is a sweep: dozens to hundreds of independent
``solve(problem, method)`` calls.  This module provides the one place where
those calls are executed:

* :class:`SweepExecutor` maps a task function over a list of picklable task
  objects, either serially (in deterministic chunks) or on a
  ``ProcessPoolExecutor`` when multiple CPUs are available;
* :class:`SolveTask` (+ :func:`run_solve_task`) is the standard work unit --
  one problem, one method -- used by :mod:`repro.explore.sweep`,
  :mod:`repro.explore.compare` and :mod:`repro.explore.runtime`.

Tasks for the same constraint are chunked together so that one worker keeps
the per-process caches warm (the discretisation memo of
:mod:`repro.core.discretize` turns the 8 heuristic-parameter re-solves of a
Figure 2 T-sweep into one cold solve plus seven memo hits).  Any pool
failure -- unpicklable task, missing ``fork`` support, resource limits --
falls back to the serial path, so results never depend on the execution
mode; a parity test asserts serial and parallel runs return identical
outcomes.
"""

from __future__ import annotations

import os
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Sequence, TypeVar

from ..core.exact import ExactSettings
from ..core.heuristic import HeuristicSettings
from ..core.problem import AllocationProblem
from ..core.solution import SolveOutcome
from ..core.solvers import solve

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")


def available_workers() -> int:
    """Usable CPU count (respects sched_setaffinity where available)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass(frozen=True)
class ExecutorSettings:
    """How a sweep should be executed.

    ``parallel=None`` auto-detects: a process pool is used only when more
    than one CPU is available and the task list is large enough to amortise
    worker start-up.  ``chunk_size=None`` derives a chunk size that gives
    every worker a handful of batches.
    """

    parallel: bool | None = None
    max_workers: int | None = None
    chunk_size: int | None = None
    min_tasks_for_pool: int = 4

    def resolved_workers(self) -> int:
        if self.max_workers is not None:
            return max(1, self.max_workers)
        return available_workers()

    def should_parallelize(self, num_tasks: int) -> bool:
        if self.parallel is not None:
            return self.parallel and self.resolved_workers() > 1
        return self.resolved_workers() > 1 and num_tasks >= self.min_tasks_for_pool


def _run_chunk(function: Callable[[TaskT], ResultT], chunk: list[TaskT]) -> list[ResultT]:
    """Worker-side execution of one chunk (module-level: must pickle)."""
    return [function(task) for task in chunk]


class SweepExecutor:
    """Maps a function over tasks, in order, serially or on a process pool.

    By default each :meth:`map` call spins a pool up and tears it down again,
    which is right for one-shot sweeps.  A *persistent* executor
    (``persistent=True``) keeps the pool alive between calls so a resident
    service (``repro serve``) does not pay worker start-up -- nor lose the
    workers' warm memo caches -- on every batch.  Call :meth:`close` (or use
    the executor as a context manager) to release the workers.
    """

    def __init__(self, settings: ExecutorSettings = ExecutorSettings(), persistent: bool = False):
        self.settings = settings
        self.persistent = persistent
        self._pool: ProcessPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def _persistent_pool(self) -> ProcessPoolExecutor:
        """The resident pool, created once (the HTTP server maps concurrently)."""
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=self.settings.resolved_workers())
            return self._pool

    def close(self) -> None:
        """Shut down the persistent pool, if one was ever started."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown()
                self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def map(self, function: Callable[[TaskT], ResultT], tasks: Sequence[TaskT]) -> list[ResultT]:
        """Run ``function`` over every task, preserving task order.

        Parallel execution requires ``function`` and every task to be
        picklable; when they are not (or the pool cannot start at all), the
        executor silently degrades to the chunked serial path, which computes
        the same results.
        """
        task_list = list(tasks)
        if not task_list:
            return []
        chunks = self._chunked(task_list)
        if self.settings.should_parallelize(len(task_list)):
            try:
                return self._map_pool(function, chunks)
            except (BrokenProcessPool, pickle.PicklingError, AttributeError, OSError):
                # Pool-infrastructure failures only -- unpicklable tasks or
                # functions (PicklingError / "can't pickle local object"
                # AttributeError), fork restrictions, resource exhaustion:
                # recompute serially, same results.  Exceptions raised *by a
                # task* propagate unchanged instead of triggering a full
                # serial re-run.
                pass
        return [result for chunk in chunks for result in _run_chunk(function, chunk)]

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _chunked(self, tasks: list[TaskT]) -> list[list[TaskT]]:
        size = self.settings.chunk_size
        if size is None:
            workers = self.settings.resolved_workers()
            size = max(1, len(tasks) // max(1, workers * 4))
        size = max(1, size)
        return [tasks[start : start + size] for start in range(0, len(tasks), size)]

    def _map_pool(
        self, function: Callable[[TaskT], ResultT], chunks: list[list[TaskT]]
    ) -> list[ResultT]:
        if self.persistent:
            pool = self._persistent_pool()
            try:
                futures = [pool.submit(_run_chunk, function, chunk) for chunk in chunks]
                return [result for future in futures for result in future.result()]
            except BrokenProcessPool:
                # A broken pool never recovers; drop it so the next map call
                # starts fresh, and let map() fall back to the serial path.
                self.close()
                raise
        workers = min(self.settings.resolved_workers(), len(chunks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_run_chunk, function, chunk) for chunk in chunks]
            return [result for future in futures for result in future.result()]


#: Default executor: serial chunks unless the host has CPUs to spare.
DEFAULT_EXECUTOR = SweepExecutor()


# --------------------------------------------------------------------------- #
# The standard sweep work unit
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SolveTask:
    """One (problem, method) solver invocation of a sweep."""

    problem: AllocationProblem
    method: str = "gp+a"
    heuristic_settings: HeuristicSettings | None = None
    exact_settings: ExactSettings | None = None
    tag: tuple = field(default_factory=tuple)


def run_solve_task(task: SolveTask) -> SolveOutcome:
    """Execute one sweep task (module-level so process pools can pickle it)."""
    return solve(
        task.problem,
        method=task.method,
        heuristic_settings=task.heuristic_settings,
        exact_settings=task.exact_settings,
    )
