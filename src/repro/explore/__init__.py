"""Design-space exploration: sweeps, method comparisons, runtime measurement.

All sweep/comparison/runtime entry points execute through the
:class:`~repro.explore.executor.SweepExecutor` engine, which runs tasks in
deterministic serial chunks by default and fans out over a process pool when
configured (``ExecutorSettings(parallel=True, max_workers=N)``).
"""

from .compare import (
    ComparisonPoint,
    ComparisonSettings,
    compare_methods_at,
    compare_methods_over,
    speedup_summary,
)
from .executor import (
    DEFAULT_EXECUTOR,
    ExecutorSettings,
    SolveTask,
    SweepExecutor,
    available_workers,
    run_solve_task,
)
from .runtime import (
    RuntimeMeasurement,
    measure_method_runtime,
    runtime_comparison,
    speedups,
    time_callable,
)
from .sweep import (
    SweepPoint,
    default_constraint_range,
    fpga_count_sweep,
    resource_constraint_sweep,
    t_parameter_sweep,
)

__all__ = [
    "ComparisonPoint",
    "ComparisonSettings",
    "DEFAULT_EXECUTOR",
    "ExecutorSettings",
    "RuntimeMeasurement",
    "SolveTask",
    "SweepExecutor",
    "SweepPoint",
    "available_workers",
    "compare_methods_at",
    "compare_methods_over",
    "default_constraint_range",
    "fpga_count_sweep",
    "measure_method_runtime",
    "resource_constraint_sweep",
    "run_solve_task",
    "runtime_comparison",
    "speedup_summary",
    "speedups",
    "t_parameter_sweep",
    "time_callable",
]
