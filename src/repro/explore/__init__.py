"""Design-space exploration: sweeps, method comparisons, runtime measurement."""

from .compare import (
    ComparisonPoint,
    ComparisonSettings,
    compare_methods_at,
    compare_methods_over,
    speedup_summary,
)
from .runtime import (
    RuntimeMeasurement,
    measure_method_runtime,
    runtime_comparison,
    speedups,
    time_callable,
)
from .sweep import (
    SweepPoint,
    default_constraint_range,
    fpga_count_sweep,
    resource_constraint_sweep,
    t_parameter_sweep,
)

__all__ = [
    "ComparisonPoint",
    "ComparisonSettings",
    "RuntimeMeasurement",
    "SweepPoint",
    "compare_methods_at",
    "compare_methods_over",
    "default_constraint_range",
    "fpga_count_sweep",
    "measure_method_runtime",
    "resource_constraint_sweep",
    "runtime_comparison",
    "speedup_summary",
    "speedups",
    "t_parameter_sweep",
    "time_callable",
]
