"""Pareto-front extraction for design-space exploration.

The paper sweeps one knob (the per-FPGA resource constraint) and reports II
curves.  A natural DSE extension — and the reason the heuristic's speed
matters — is to collect the Pareto-optimal trade-offs among the quantities a
designer actually weighs: initiation interval, average resource utilisation,
number of FPGAs, and spreading.  This module provides a small, dependency-
free Pareto toolkit plus a convenience sweep that combines the resource-
constraint and FPGA-count axes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.heuristic import HeuristicSettings
from ..core.problem import AllocationProblem
from ..core.solution import SolveOutcome
from ..core.solvers import solve


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated design: its knobs and the resulting metrics."""

    resource_constraint: float
    num_fpgas: int
    initiation_interval: float
    average_utilization: float
    spreading: float
    outcome: SolveOutcome

    def objectives(self) -> tuple[float, float, float]:
        """The minimised objectives: (II, number of FPGAs, spreading)."""
        return (self.initiation_interval, float(self.num_fpgas), self.spreading)


def dominates(a: Sequence[float], b: Sequence[float], tolerance: float = 1e-12) -> bool:
    """True if objective vector ``a`` dominates ``b`` (all <=, one strictly <)."""
    if len(a) != len(b):
        raise ValueError("objective vectors must have the same length")
    not_worse = all(x <= y + tolerance for x, y in zip(a, b))
    strictly_better = any(x < y - tolerance for x, y in zip(a, b))
    return not_worse and strictly_better


def pareto_front(points: Iterable[DesignPoint]) -> list[DesignPoint]:
    """Return the non-dominated subset of ``points`` (order preserved)."""
    candidates = [point for point in points if point.outcome.succeeded]
    front: list[DesignPoint] = []
    for point in candidates:
        if any(dominates(other.objectives(), point.objectives()) for other in candidates):
            continue
        front.append(point)
    return front


def pareto_front_vectors(vectors: Sequence[Sequence[float]]) -> list[int]:
    """Indices of the non-dominated vectors in a plain objective matrix."""
    indices: list[int] = []
    for i, vector in enumerate(vectors):
        if any(dominates(other, vector) for j, other in enumerate(vectors) if j != i):
            continue
        indices.append(i)
    return indices


def explore_design_space(
    problem: AllocationProblem,
    resource_constraints: Sequence[float],
    fpga_counts: Sequence[int],
    method: str = "gp+a",
    heuristic_settings: HeuristicSettings | None = None,
) -> list[DesignPoint]:
    """Evaluate every (constraint, FPGA count) combination with one method.

    This is the DSE loop the paper's heuristic is built for: the full grid
    for AlexNet/VGG evaluates in well under a second with GP+A.
    """
    points: list[DesignPoint] = []
    for num_fpgas in fpga_counts:
        resized = AllocationProblem(
            pipeline=problem.pipeline,
            platform=problem.platform.with_num_fpgas(num_fpgas),
            weights=problem.weights,
        )
        for constraint in resource_constraints:
            candidate = resized.with_resource_constraint(constraint)
            outcome = solve(candidate, method=method, heuristic_settings=heuristic_settings)
            if outcome.solution is not None:
                ii = outcome.solution.initiation_interval
                utilization = outcome.solution.average_utilization
                spreading = outcome.solution.spreading
            else:
                ii = float("inf")
                utilization = float("nan")
                spreading = float("inf")
            points.append(
                DesignPoint(
                    resource_constraint=float(constraint),
                    num_fpgas=int(num_fpgas),
                    initiation_interval=ii,
                    average_utilization=utilization,
                    spreading=spreading,
                    outcome=outcome,
                )
            )
    return points
