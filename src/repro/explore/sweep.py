"""Design-space exploration sweeps.

The paper's evaluation is a family of sweeps: the per-FPGA resource
constraint is varied and each point is solved with one or more methods
(Figs. 2-5), or the heuristic parameter ``T`` is varied at a fixed ``delta``
(Fig. 2).  This module provides those sweeps as reusable functions returning
plain data points, which the reporting layer turns into tables/figures.

All sweeps execute through :class:`~repro.explore.executor.SweepExecutor`:
pass an executor configured for a process pool to fan points out over CPUs,
or keep the default chunked-serial execution.  Either way each constraint's
problem is built once and shared by every method/parameter solved at that
constraint, and the T-sweep solves the GP relaxation + discretisation once
per constraint (they do not depend on ``T``) via the discretisation memo.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.exact import ExactSettings, seed_sweep_relaxations
from ..core.heuristic import HeuristicSettings
from ..core.problem import AllocationProblem
from ..core.solution import SolveOutcome
from ..obs.trace import span
from .executor import DEFAULT_EXECUTOR, SolveTask, SweepExecutor, run_solve_task


@dataclass(frozen=True)
class SweepPoint:
    """One (resource constraint, method) sample of a sweep."""

    resource_constraint: float
    method: str
    outcome: SolveOutcome

    @property
    def feasible(self) -> bool:
        return self.outcome.succeeded

    @property
    def initiation_interval(self) -> float:
        return self.outcome.initiation_interval

    @property
    def average_utilization(self) -> float:
        if self.outcome.solution is None:
            return float("nan")
        return self.outcome.solution.average_utilization

    @property
    def runtime_seconds(self) -> float:
        return self.outcome.runtime_seconds


def default_constraint_range(start: float = 40.0, stop: float = 90.0, step: float = 5.0) -> list[float]:
    """The resource-constraint grid used across the paper's figures.

    The grid is generated from an integer index (``start + i * step``), not
    by repeated addition, so fractional steps cannot accumulate drift and
    silently drop the final point.
    """
    if step <= 0:
        raise ValueError("step must be positive")
    count = int(math.floor((stop - start) / step + 1e-9)) + 1
    return [round(start + index * step, 6) for index in range(max(0, count))]


def resource_constraint_sweep(
    problem: AllocationProblem,
    constraints: Sequence[float],
    methods: Iterable[str] = ("gp+a",),
    heuristic_settings: HeuristicSettings | None = None,
    exact_settings: ExactSettings | None = None,
    executor: SweepExecutor | None = None,
    preserve_skew: bool = False,
) -> list[SweepPoint]:
    """Solve the problem at every resource constraint with every method.

    Infeasible points are kept in the result (their outcome reports the
    status); the reporting layer decides whether to plot or skip them.
    ``preserve_skew`` sweeps a heterogeneous platform without flattening its
    per-class capacity ratios (each constraint names the reference class's
    cap; the other classes scale proportionally), so the Figure 3-5 sweeps
    run unchanged over heterogeneous presets.

    When ``"minlp+g"`` is among the methods, the root LP relaxations of all
    sweep points are batch-solved up front on one shared model skeleton
    (:func:`~repro.core.exact.seed_sweep_relaxations`): the points differ
    only in their capacity right-hand sides, so one persistent LP instance
    is patched and re-solved per point instead of rebuilding the model each
    time.  The LPs spent this way surface as the ``lp_batched_solves``
    counter on the corresponding outcomes.
    """
    executor = executor or DEFAULT_EXECUTOR
    method_list = list(methods)
    constrained_problems = [
        problem.with_resource_constraint(constraint, preserve_skew=preserve_skew)
        for constraint in constraints
    ]
    if "minlp+g" in method_list:
        with span("sweep_seed"):
            batched_counts = seed_sweep_relaxations(
                constrained_problems, exact_settings or ExactSettings()
            )
    else:
        batched_counts = [None] * len(constrained_problems)
    tasks = []
    for index, constrained in enumerate(constrained_problems):
        for method in method_list:
            tasks.append(
                SolveTask(
                    problem=constrained,
                    method=method,
                    heuristic_settings=heuristic_settings,
                    exact_settings=exact_settings,
                    tag=(constraints[index], method, index),
                )
            )
    with span("sweep_solve"):
        outcomes = executor.map(run_solve_task, tasks)
    points = []
    for task, outcome in zip(tasks, outcomes):
        constraint, method, index = task.tag
        if method == "minlp+g" and batched_counts[index] is not None:
            outcome.counters["lp_batched_solves"] = (
                outcome.counters.get("lp_batched_solves", 0) + batched_counts[index]
            )
        points.append(
            SweepPoint(resource_constraint=constraint, method=method, outcome=outcome)
        )
    return points


def _run_t_sweep_chunk(task: "TSweepTask") -> list[tuple[float, SweepPoint]]:
    """Solve one constraint for every T value (module-level for pickling).

    Runs in a single worker so the GP + discretisation work, which is
    independent of ``T``, is computed once and shared via the memo caches.
    """
    points: list[tuple[float, SweepPoint]] = []
    for t_value in task.t_values:
        settings = HeuristicSettings(t_percent=t_value, delta_percent=task.delta_percent)
        outcome = run_solve_task(
            SolveTask(problem=task.problem, method="gp+a", heuristic_settings=settings)
        )
        points.append(
            (
                t_value,
                SweepPoint(
                    resource_constraint=task.constraint, method="gp+a", outcome=outcome
                ),
            )
        )
    return points


@dataclass(frozen=True)
class TSweepTask:
    """One constraint of a Figure 2 T-parameter sweep."""

    problem: AllocationProblem
    constraint: float
    t_values: tuple[float, ...]
    delta_percent: float


def t_parameter_sweep(
    problem: AllocationProblem,
    constraints: Sequence[float],
    t_values: Sequence[float] = (0.0, 2.5, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0),
    delta_percent: float = 1.0,
    executor: SweepExecutor | None = None,
) -> dict[float, list[SweepPoint]]:
    """Figure 2 sweep: GP+A at several values of the T parameter.

    Returns ``{T: [SweepPoint per constraint]}``.  Tasks are grouped by
    constraint so every worker shares one GP relaxation + discretisation
    across all ``T`` values of its constraint.
    """
    executor = executor or DEFAULT_EXECUTOR
    tasks = [
        TSweepTask(
            problem=problem.with_resource_constraint(constraint),
            constraint=constraint,
            t_values=tuple(t_values),
            delta_percent=delta_percent,
        )
        for constraint in constraints
    ]
    per_constraint = executor.map(_run_t_sweep_chunk, tasks)
    results: dict[float, list[SweepPoint]] = {t_value: [] for t_value in t_values}
    for chunk in per_constraint:
        for t_value, point in chunk:
            results[t_value].append(point)
    return results


def _run_fpga_count_task(task: SolveTask) -> tuple[int, SolveOutcome]:
    return task.tag[0], run_solve_task(task)


def fpga_count_sweep(
    problem: AllocationProblem,
    fpga_counts: Sequence[int],
    method: str = "gp+a",
    executor: SweepExecutor | None = None,
) -> list[tuple[int, SolveOutcome]]:
    """Scalability sweep over the number of FPGAs (2 to 8 in the paper)."""
    executor = executor or DEFAULT_EXECUTOR
    tasks = [
        SolveTask(
            problem=AllocationProblem(
                pipeline=problem.pipeline,
                platform=problem.platform.with_num_fpgas(count),
                weights=problem.weights,
            ),
            method=method,
            tag=(count,),
        )
        for count in fpga_counts
    ]
    return executor.map(_run_fpga_count_task, tasks)
