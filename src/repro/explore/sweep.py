"""Design-space exploration sweeps.

The paper's evaluation is a family of sweeps: the per-FPGA resource
constraint is varied and each point is solved with one or more methods
(Figs. 2-5), or the heuristic parameter ``T`` is varied at a fixed ``delta``
(Fig. 2).  This module provides those sweeps as reusable functions returning
plain data points, which the reporting layer turns into tables/figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.exact import ExactSettings
from ..core.heuristic import HeuristicSettings
from ..core.problem import AllocationProblem
from ..core.solution import SolveOutcome
from ..core.solvers import solve


@dataclass(frozen=True)
class SweepPoint:
    """One (resource constraint, method) sample of a sweep."""

    resource_constraint: float
    method: str
    outcome: SolveOutcome

    @property
    def feasible(self) -> bool:
        return self.outcome.succeeded

    @property
    def initiation_interval(self) -> float:
        return self.outcome.initiation_interval

    @property
    def average_utilization(self) -> float:
        if self.outcome.solution is None:
            return float("nan")
        return self.outcome.solution.average_utilization

    @property
    def runtime_seconds(self) -> float:
        return self.outcome.runtime_seconds


def default_constraint_range(start: float = 40.0, stop: float = 90.0, step: float = 5.0) -> list[float]:
    """The resource-constraint grid used across the paper's figures."""
    if step <= 0:
        raise ValueError("step must be positive")
    values = []
    value = start
    while value <= stop + 1e-9:
        values.append(round(value, 6))
        value += step
    return values


def resource_constraint_sweep(
    problem: AllocationProblem,
    constraints: Sequence[float],
    methods: Iterable[str] = ("gp+a",),
    heuristic_settings: HeuristicSettings | None = None,
    exact_settings: ExactSettings | None = None,
) -> list[SweepPoint]:
    """Solve the problem at every resource constraint with every method.

    Infeasible points are kept in the result (their outcome reports the
    status); the reporting layer decides whether to plot or skip them.
    """
    points: list[SweepPoint] = []
    for constraint in constraints:
        constrained = problem.with_resource_constraint(constraint)
        for method in methods:
            outcome = solve(
                constrained,
                method=method,
                heuristic_settings=heuristic_settings,
                exact_settings=exact_settings,
            )
            points.append(
                SweepPoint(resource_constraint=constraint, method=method, outcome=outcome)
            )
    return points


def t_parameter_sweep(
    problem: AllocationProblem,
    constraints: Sequence[float],
    t_values: Sequence[float] = (0.0, 2.5, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0),
    delta_percent: float = 1.0,
) -> dict[float, list[SweepPoint]]:
    """Figure 2 sweep: GP+A at several values of the T parameter.

    Returns ``{T: [SweepPoint per constraint]}``.
    """
    results: dict[float, list[SweepPoint]] = {}
    for t_value in t_values:
        settings = HeuristicSettings(t_percent=t_value, delta_percent=delta_percent)
        results[t_value] = resource_constraint_sweep(
            problem, constraints, methods=("gp+a",), heuristic_settings=settings
        )
    return results


def fpga_count_sweep(
    problem: AllocationProblem,
    fpga_counts: Sequence[int],
    method: str = "gp+a",
) -> list[tuple[int, SolveOutcome]]:
    """Scalability sweep over the number of FPGAs (2 to 8 in the paper)."""
    outcomes: list[tuple[int, SolveOutcome]] = []
    for count in fpga_counts:
        resized = AllocationProblem(
            pipeline=problem.pipeline,
            platform=problem.platform.with_num_fpgas(count),
            weights=problem.weights,
        )
        outcomes.append((count, solve(resized, method=method)))
    return outcomes
