"""Method comparison harness (the GP+A / MINLP / MINLP+G curves of Figs. 3-5).

Comparisons execute through :class:`~repro.explore.executor.SweepExecutor`;
one task per (constraint, method) pair, with the constrained problem built
once per constraint and shared by every method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.exact import ExactSettings
from ..core.heuristic import HeuristicSettings
from ..core.objective import ObjectiveWeights
from ..core.problem import AllocationProblem
from ..core.solution import SolveOutcome
from .executor import DEFAULT_EXECUTOR, SolveTask, SweepExecutor, run_solve_task


@dataclass(frozen=True)
class ComparisonPoint:
    """All methods' outcomes at one resource constraint."""

    resource_constraint: float
    outcomes: Mapping[str, SolveOutcome]

    def initiation_interval(self, method: str) -> float:
        return self.outcomes[method].initiation_interval

    def average_utilization(self, method: str) -> float:
        outcome = self.outcomes[method]
        if outcome.solution is None:
            return float("nan")
        return outcome.solution.average_utilization

    def runtime(self, method: str) -> float:
        return self.outcomes[method].runtime_seconds


@dataclass(frozen=True)
class ComparisonSettings:
    """Settings shared by a full method comparison."""

    methods: tuple[str, ...] = ("gp+a", "minlp", "minlp+g")
    heuristic: HeuristicSettings = HeuristicSettings()
    exact: ExactSettings = ExactSettings()
    #: Weights used for the MINLP+G (and GP+A spreading report) runs; when
    #: None the problem's own weights are used.
    weights: ObjectiveWeights | None = None


def _comparison_tasks(
    problem: AllocationProblem,
    constraints: Sequence[float],
    settings: ComparisonSettings,
) -> list[SolveTask]:
    tasks: list[SolveTask] = []
    for constraint in constraints:
        constrained = problem.with_resource_constraint(constraint)
        if settings.weights is not None:
            constrained = constrained.with_weights(settings.weights)
        for method in settings.methods:
            tasks.append(
                SolveTask(
                    problem=constrained,
                    method=method,
                    heuristic_settings=settings.heuristic,
                    exact_settings=settings.exact,
                    tag=(constraint, method),
                )
            )
    return tasks


def compare_methods_at(
    problem: AllocationProblem,
    resource_constraint: float,
    settings: ComparisonSettings = ComparisonSettings(),
    executor: SweepExecutor | None = None,
) -> ComparisonPoint:
    """Run every requested method at one resource constraint."""
    return compare_methods_over(problem, [resource_constraint], settings, executor)[0]


def compare_methods_over(
    problem: AllocationProblem,
    constraints: Sequence[float],
    settings: ComparisonSettings = ComparisonSettings(),
    executor: SweepExecutor | None = None,
) -> list[ComparisonPoint]:
    """Run the full comparison over a resource-constraint grid (Figs. 3-5)."""
    executor = executor or DEFAULT_EXECUTOR
    tasks = _comparison_tasks(problem, constraints, settings)
    outcomes = executor.map(run_solve_task, tasks)
    by_constraint: dict[float, dict[str, SolveOutcome]] = {}
    for task, outcome in zip(tasks, outcomes):
        constraint, method = task.tag
        by_constraint.setdefault(constraint, {})[method] = outcome
    return [
        ComparisonPoint(resource_constraint=constraint, outcomes=by_constraint[constraint])
        for constraint in constraints
    ]


def speedup_summary(points: Sequence[ComparisonPoint], baseline: str, reference: str) -> dict[str, float]:
    """Aggregate runtime speedup of ``baseline`` over ``reference``.

    Returns min / geometric-mean / max speedups over the feasible points.
    The paper reports GP+A being 100x-1000x faster than MINLP(+G).
    """
    ratios: list[float] = []
    for point in points:
        base = point.outcomes.get(baseline)
        ref = point.outcomes.get(reference)
        if base is None or ref is None:
            continue
        if not (base.succeeded and ref.succeeded):
            continue
        if base.runtime_seconds <= 0:
            continue
        ratios.append(ref.runtime_seconds / base.runtime_seconds)
    if not ratios:
        return {"min": float("nan"), "geomean": float("nan"), "max": float("nan")}
    product = 1.0
    for ratio in ratios:
        product *= ratio
    return {
        "min": min(ratios),
        "geomean": product ** (1.0 / len(ratios)),
        "max": max(ratios),
    }
