"""Solver runtime measurement (the CPU-time comparison of Section 4).

Measurements run through :class:`~repro.explore.executor.SweepExecutor`, but
unlike the sweeps the default here is strictly serial even on multi-core
hosts: concurrent workers contend for cores and would inflate the sampled
wall-clock times.  Pass a pool executor explicitly only when indicative
numbers are acceptable.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.exact import ExactSettings
from ..core.heuristic import HeuristicSettings
from ..core.problem import AllocationProblem
from ..core.solvers import solve
from .executor import ExecutorSettings, SweepExecutor

#: Timing default: never auto-parallelize a measurement run.
_SERIAL_EXECUTOR = SweepExecutor(ExecutorSettings(parallel=False))


@dataclass(frozen=True)
class RuntimeMeasurement:
    """Wall-clock statistics of repeated solver runs."""

    method: str
    case: str
    samples_seconds: tuple[float, ...]

    @property
    def mean_seconds(self) -> float:
        return statistics.fmean(self.samples_seconds)

    @property
    def median_seconds(self) -> float:
        return statistics.median(self.samples_seconds)

    @property
    def min_seconds(self) -> float:
        return min(self.samples_seconds)


def time_callable(function: Callable[[], object], repetitions: int = 3) -> tuple[float, ...]:
    """Wall-clock samples of repeated calls to ``function``."""
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    samples = []
    for _ in range(repetitions):
        start = time.perf_counter()
        function()
        samples.append(time.perf_counter() - start)
    return tuple(samples)


def measure_method_runtime(
    problem: AllocationProblem,
    method: str,
    case_name: str,
    repetitions: int = 3,
    heuristic_settings: HeuristicSettings | None = None,
    exact_settings: ExactSettings | None = None,
) -> RuntimeMeasurement:
    """Measure the wall-clock time of one solver on one problem."""
    samples = time_callable(
        lambda: solve(
            problem,
            method=method,
            heuristic_settings=heuristic_settings,
            exact_settings=exact_settings,
        ),
        repetitions=repetitions,
    )
    return RuntimeMeasurement(method=method, case=case_name, samples_seconds=samples)


@dataclass(frozen=True)
class _MeasureTask:
    """One (case, method) runtime measurement (picklable work unit)."""

    case: str
    problem: AllocationProblem
    method: str
    repetitions: int
    exact_settings: ExactSettings | None


def _run_measure_task(task: _MeasureTask) -> RuntimeMeasurement:
    return measure_method_runtime(
        task.problem,
        task.method,
        task.case,
        repetitions=task.repetitions,
        exact_settings=task.exact_settings,
    )


def runtime_comparison(
    cases: Sequence[tuple[str, AllocationProblem]],
    methods: Sequence[str] = ("gp+a", "minlp", "minlp+g"),
    repetitions: int = 1,
    exact_settings: ExactSettings | None = None,
    executor: SweepExecutor | None = None,
) -> list[RuntimeMeasurement]:
    """Measure every method on every case (the Section 4 runtime table)."""
    executor = executor or _SERIAL_EXECUTOR
    tasks = [
        _MeasureTask(
            case=case_name,
            problem=problem,
            method=method,
            repetitions=repetitions,
            exact_settings=exact_settings,
        )
        for case_name, problem in cases
        for method in methods
    ]
    return executor.map(_run_measure_task, tasks)


def speedups(measurements: Sequence[RuntimeMeasurement], baseline_method: str = "gp+a") -> dict[str, dict[str, float]]:
    """Per-case speedup of every method relative to the baseline method."""
    by_case: dict[str, dict[str, float]] = {}
    baseline: dict[str, float] = {
        m.case: m.median_seconds for m in measurements if m.method == baseline_method
    }
    for measurement in measurements:
        if measurement.method == baseline_method:
            continue
        base = baseline.get(measurement.case)
        if base is None or base <= 0:
            continue
        by_case.setdefault(measurement.case, {})[measurement.method] = (
            measurement.median_seconds / base
        )
    return by_case
