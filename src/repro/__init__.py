"""repro -- Exact and heuristic allocation of multi-kernel applications to multi-FPGA platforms.

A from-scratch Python reproduction of Shan et al., "Exact and Heuristic
Allocation of Multi-kernel Applications to Multi-FPGA Platforms", DAC 2019.

The top-level package re-exports the most common entry points::

    from repro import aws_f1, alexnet_fx16, AllocationProblem, solve

    problem = AllocationProblem(
        pipeline=alexnet_fx16(),
        platform=aws_f1(num_fpgas=2, resource_limit_percent=70.0),
    )
    outcome = solve(problem, method="gp+a")
    print(outcome.solution.describe())
"""

from .core import (
    AllocationProblem,
    AllocationSolution,
    ExactSettings,
    HeuristicSettings,
    ObjectiveWeights,
    SolveOutcome,
    SolveStatus,
    default_weights,
    solve,
    solve_exact_min_ii,
    solve_exact_weighted,
    solve_gp_a,
    solve_gp_step,
)
from .fleet import FleetOutcome, FleetState, Tenant, allocate_fleet
from .platform import FPGADevice, MultiFPGAPlatform, ResourceVector, XCVU9P, aws_f1
from .workloads import Kernel, Pipeline, alexnet_fp32, alexnet_fx16, vgg16_fx16

__version__ = "1.0.0"

__all__ = [
    "AllocationProblem",
    "AllocationSolution",
    "ExactSettings",
    "FPGADevice",
    "FleetOutcome",
    "FleetState",
    "HeuristicSettings",
    "Kernel",
    "MultiFPGAPlatform",
    "ObjectiveWeights",
    "Pipeline",
    "ResourceVector",
    "SolveOutcome",
    "SolveStatus",
    "XCVU9P",
    "__version__",
    "Tenant",
    "alexnet_fp32",
    "alexnet_fx16",
    "allocate_fleet",
    "aws_f1",
    "default_weights",
    "solve",
    "solve_exact_min_ii",
    "solve_exact_weighted",
    "solve_gp_a",
    "solve_gp_step",
    "vgg16_fx16",
]
