"""Kernel-indexed array form of an allocation problem (the vectorized core).

The scalar model layers (:mod:`repro.core.problem`, :mod:`repro.gp.minmax`)
index everything by kernel *name*, which reads well but makes the hot solver
loops pay for a dict lookup per kernel per iteration.  This module flattens a
problem into NumPy arrays once:

* ``wcet``      -- per-kernel single-CU worst-case execution times, shape (K,)
* ``weights``   -- per-CU demand of every active capacity dimension, shape
  (D, K); the rows match :meth:`AllocationProblem.capacity_dimensions`
  (on-chip resource kinds first, DRAM bandwidth last when active)
* ``capacity``  -- the per-FPGA capacity of each dimension, shape (D,)

The arrays are computed lazily and memoized per problem instance (problems
are frozen, so the cache can never go stale), and every vectorized consumer
-- the bisection kernel of :mod:`repro.gp.minmax`, the discretisation
branch-and-bound and Algorithm 1 -- shares the same matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .problem import AllocationProblem

#: Attribute used to memoize the arrays on the (frozen) problem instance.
_CACHE_ATTRIBUTE = "_cached_problem_arrays"


@dataclass(frozen=True)
class ProblemArrays:
    """Array view of one :class:`~repro.core.problem.AllocationProblem`."""

    names: tuple[str, ...]
    index: Mapping[str, int]
    wcet: np.ndarray  # (K,) single-CU WCET per kernel
    dimension_names: tuple[str, ...]  # active capacity dimensions
    weights: np.ndarray  # (D, K) per-CU demand per dimension
    capacity: np.ndarray  # (D,) per-FPGA cap (uniform; max per FPGA if mixed)
    explicit_max: np.ndarray  # (K,) per-kernel CU cap (inf when unbounded)
    bandwidth_row: int  # row of the bandwidth dimension, -1 when inactive
    fpga_capacity: np.ndarray  # (D, F) per-FPGA caps (columns differ across classes)
    aggregate_capacity: np.ndarray  # (D,) platform-wide capacity

    @property
    def num_kernels(self) -> int:
        return len(self.names)

    @property
    def num_dimensions(self) -> int:
        return len(self.dimension_names)

    @property
    def resource_rows(self) -> np.ndarray:
        """Row indices of the on-chip resource dimensions (bandwidth excluded)."""
        rows = [d for d in range(self.num_dimensions) if d != self.bandwidth_row]
        return np.asarray(rows, dtype=np.intp)

    # ------------------------------------------------------------------ #
    # Conversions between name-keyed mappings and kernel-indexed vectors
    # ------------------------------------------------------------------ #
    def vector(self, values: Mapping[str, float], default: float = 0.0) -> np.ndarray:
        """Kernel-indexed vector from a name-keyed mapping."""
        return np.asarray(
            [float(values.get(name, default)) for name in self.names], dtype=np.float64
        )

    def mapping(self, vector: Iterable[float]) -> dict[str, float]:
        """Name-keyed mapping from a kernel-indexed vector."""
        return {name: float(value) for name, value in zip(self.names, vector)}

    def int_mapping(self, vector: Iterable[float]) -> dict[str, int]:
        """Name-keyed integer mapping from a kernel-indexed vector."""
        return {name: int(round(float(value))) for name, value in zip(self.names, vector)}

    # ------------------------------------------------------------------ #
    # Vectorized capacity checks
    # ------------------------------------------------------------------ #
    def aggregate_usage(self, counts: np.ndarray) -> np.ndarray:
        """Platform-wide capacity usage of total CU counts, shape (D,)."""
        return self.weights @ counts

    def aggregate_feasible(
        self, counts: np.ndarray, num_fpgas: int, tolerance: float = 1e-9
    ) -> bool:
        """Aggregated capacity constraints (eqs. 17-18) for total CU counts.

        ``num_fpgas`` is retained for signature compatibility; the aggregate
        capacity is precomputed per problem (and accounts for per-class caps
        on heterogeneous platforms).
        """
        del num_fpgas
        return bool(np.all(self.weights @ counts <= self.aggregate_capacity + tolerance))

    def achieved_ii(self, counts: np.ndarray) -> float:
        """Initiation interval of total CU counts: ``max_k WCET_k / N_k``."""
        return float(np.max(self.wcet / counts))


def build_problem_arrays(problem: "AllocationProblem") -> ProblemArrays:
    """Flatten a problem into :class:`ProblemArrays` (no memoization)."""
    names = problem.kernel_names
    index = {name: position for position, name in enumerate(names)}
    wcet = np.asarray([problem.wcet[name] for name in names], dtype=np.float64)
    dimensions = problem.capacity_dimensions()
    weights = np.asarray(
        [[dimension.weights.get(name, 0.0) for name in names] for dimension in dimensions],
        dtype=np.float64,
    ).reshape(len(dimensions), len(names))
    capacity = np.asarray([dimension.capacity for dimension in dimensions], dtype=np.float64)
    num_fpgas = problem.num_fpgas
    fpga_capacity = np.asarray(
        [dimension.fpga_capacities(num_fpgas) for dimension in dimensions], dtype=np.float64
    ).reshape(len(dimensions), num_fpgas)
    # The homogeneous aggregate stays the exact product the solvers always
    # used (a float sum of F equal terms need not equal capacity * F).
    if all(dimension.per_fpga is None for dimension in dimensions):
        aggregate_capacity = capacity * num_fpgas
    else:
        aggregate_capacity = fpga_capacity.sum(axis=1)
    explicit_max = np.asarray(
        [
            float(kernel.max_cus) if kernel.max_cus is not None else np.inf
            for kernel in problem.pipeline
        ],
        dtype=np.float64,
    )
    bandwidth_row = next(
        (d for d, dimension in enumerate(dimensions) if dimension.name == "bandwidth"), -1
    )
    return ProblemArrays(
        names=names,
        index=index,
        wcet=wcet,
        dimension_names=tuple(dimension.name for dimension in dimensions),
        weights=weights,
        capacity=capacity,
        explicit_max=explicit_max,
        bandwidth_row=bandwidth_row,
        fpga_capacity=fpga_capacity,
        aggregate_capacity=aggregate_capacity,
    )


def problem_arrays(problem: "AllocationProblem") -> ProblemArrays:
    """Memoized array view of a problem.

    Problems are frozen dataclasses, so the arrays are computed once per
    instance and stored on it (identity-keyed -- no hashing of the whole
    pipeline on every access).
    """
    cached = getattr(problem, _CACHE_ATTRIBUTE, None)
    if cached is None:
        cached = build_problem_arrays(problem)
        object.__setattr__(problem, _CACHE_ATTRIBUTE, cached)
    return cached
