"""Greedy CU-to-FPGA allocation heuristic (Algorithm 1 of the paper).

Given integer CU totals ``N_k`` (from the discretisation step), the allocator
assigns them to FPGAs while:

* allocating the most *critical* kernels first (those whose II suffers most
  if a CU were dropped),
* consolidating kernels onto already-occupied FPGAs (FPGAs are visited in
  increasing order of resource slack), which minimises spreading,
* splitting kernels that cannot fit on a single FPGA across empty FPGAs
  first, and
* retrying with a slightly relaxed per-FPGA constraint ``Rc = R + i * delta``
  while ``Rc <= R + T`` when a complete allocation cannot be found.

"Resource" means every active capacity dimension: on-chip resources *and*
DRAM bandwidth, as in the paper ("we use the general term resource constraint
to refer to both actual resource and bandwidth constraints").

The implementation is vectorized: per-FPGA slack is a ``(F, D)`` NumPy
matrix and per-CU demand a ``(K, D)`` matrix (rows shared with the problem's
memoized :class:`~repro.core.arrays.ProblemArrays`), so the capacity checks,
the consolidation ordering and the repair pass's swap search are single
array operations instead of per-kernel dict loops.  The placement decisions
are unchanged from the scalar implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal, Mapping

import numpy as np

from .problem import AllocationProblem

CriticalityRule = Literal["ii-impact", "resource", "wcet", "footprint"]

#: Feasibility slack used by every capacity comparison.
_TOL = 1e-9


@dataclass(frozen=True)
class AllocatorSettings:
    """Tuning knobs of Algorithm 1.

    ``portfolio=True`` runs one greedy pass per criticality rule and keeps the
    best outcome; each pass is microseconds, and multi-dimensional packing is
    sensitive enough to the visit order that this materially improves
    robustness without leaving the paper's greedy framework.  The portfolio
    includes a plain first-fit-decreasing ordering (``"footprint"``: largest
    per-CU footprint first), so Algorithm 1 dominates the FFD ablation
    baseline by construction.
    """

    t_percent: float = 0.0
    delta_percent: float = 1.0
    criticality: CriticalityRule = "ii-impact"
    portfolio: bool = True
    polish: bool = True

    def __post_init__(self) -> None:
        if self.t_percent < 0:
            raise ValueError("T must be non-negative")
        if self.delta_percent <= 0:
            raise ValueError("delta must be positive")

    def criticality_rules(self) -> tuple[CriticalityRule, ...]:
        """Orderings attempted at every constraint-relaxation step."""
        if not self.portfolio:
            return (self.criticality,)
        rules: list[CriticalityRule] = [self.criticality]
        for rule in ("resource", "wcet", "ii-impact", "footprint"):
            if rule not in rules:
                rules.append(rule)  # type: ignore[arg-type]
        return tuple(rules)


@dataclass(frozen=True)
class AllocatorResult:
    """Outcome of the greedy allocation."""

    success: bool
    counts: Mapping[str, tuple[int, ...]]
    constraint_relaxation: float
    iterations: int
    unallocated: Mapping[str, int]


class GreedyAllocator:
    """Algorithm 1: criticality-driven, consolidation-biased CU placement."""

    def __init__(self, problem: AllocationProblem, settings: AllocatorSettings = AllocatorSettings()):
        self.problem = problem
        self.settings = settings
        arrays = problem.arrays()
        self._arrays = arrays
        self._names = arrays.names
        self._num_kernels = len(arrays.names)
        self._num_fpgas = problem.num_fpgas
        self._wcet = arrays.wcet
        # Per-CU demand matrix, one row per kernel over every active
        # dimension (on-chip resource kinds plus bandwidth).
        self._unit = np.ascontiguousarray(arrays.weights.T)
        self._bandwidth_row = arrays.bandwidth_row
        resource_columns = [
            d for d in range(arrays.num_dimensions) if d != arrays.bandwidth_row
        ]
        self._resource_columns = resource_columns
        self._resource_kinds = tuple(arrays.dimension_names[d] for d in resource_columns)
        if resource_columns:
            self._per_cu_footprint = self._unit[:, resource_columns].max(axis=1)
        else:
            self._per_cu_footprint = np.zeros(self._num_kernels)
        # Per-kernel demand rows and their positive-dimension slices, hoisted
        # out of the placement loops (shared across every pass and polish).
        self._unit_rows = [self._unit[kernel] for kernel in range(self._num_kernels)]
        self._positive_columns = [
            np.nonzero(row > 0)[0] for row in self._unit_rows
        ]
        self._positive_values = [
            row[columns] for row, columns in zip(self._unit_rows, self._positive_columns)
        ]
        self._wcet_list = self._wcet.tolist()
        self._per_cu_list = self._per_cu_footprint.tolist()
        # Flat-list copies for the placement pass: at typical sizes (F <= 8,
        # D <= 3) plain Python arithmetic beats per-call NumPy dispatch, so
        # the sequential greedy pass runs on lists and only the batched
        # pieces (oversize precheck, polish swap search) use arrays.
        self._unit_lists = [row.tolist() for row in self._unit_rows]
        self._positive_dim_lists = [
            [(int(d), float(value)) for d, value in zip(columns, values)]
            for columns, values in zip(self._positive_columns, self._positive_values)
        ]
        self._dim_range = range(arrays.num_dimensions)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def allocate(self, totals: Mapping[str, int]) -> AllocatorResult:
        """Allocate ``N_k`` CUs per kernel to the platform's FPGAs.

        Follows the retry loop of Algorithm 1: the per-FPGA constraint starts
        at the problem's resource limit and is relaxed by ``delta`` points per
        failed attempt, up to ``T`` extra points.
        """
        for name in self._names:
            if name not in totals:
                raise KeyError(f"missing CU total for kernel {name!r}")
            if totals[name] < 1:
                raise ValueError(f"kernel {name!r} must have at least one CU")
        totals_vector = np.asarray([int(totals[name]) for name in self._names], dtype=np.int64)
        # Criticality of losing one CU (eq. 1): fixed per requested totals,
        # so computed once for every pass of the portfolio/retry loop.
        impact = [
            math.inf if count <= 1 else wcet / (count - 1) - wcet / count
            for wcet, count in zip(self._wcet_list, totals_vector.tolist())
        ]

        extra = 0.0
        iterations = 0
        best: tuple[np.ndarray, np.ndarray, float] | None = None
        best_quality: tuple[float, int] | None = None
        while True:
            caps = self._caps_for(extra)
            for rule in self.settings.criticality_rules():
                iterations += 1
                counts, remaining, slack = self._allocate_once(
                    totals_vector, caps, rule, impact
                )
                if remaining.any() and self.settings.polish:
                    self._polish(counts, remaining, slack)
                if not remaining.any():
                    return AllocatorResult(
                        success=True,
                        counts=self._counts_mapping(counts),
                        constraint_relaxation=extra,
                        iterations=iterations,
                        unallocated={},
                    )
                quality = self._partial_quality(counts)
                if best_quality is None or quality < best_quality:
                    best, best_quality = (counts, remaining, extra), quality
            extra += self.settings.delta_percent
            if extra > self.settings.t_percent + _TOL:
                break

        assert best is not None
        counts, remaining, used_extra = best
        return AllocatorResult(
            success=False,
            counts=self._counts_mapping(counts),
            constraint_relaxation=used_extra,
            iterations=iterations,
            unallocated={
                name: int(count)
                for name, count in zip(self._names, remaining)
                if count > 0
            },
        )

    def _counts_mapping(self, counts: np.ndarray) -> dict[str, tuple[int, ...]]:
        return {
            name: tuple(int(value) for value in row)
            for name, row in zip(self._names, counts)
        }

    def _partial_quality(self, counts: np.ndarray) -> tuple[float, int]:
        """Ranking key for incomplete allocations (smaller is better).

        Primary: the initiation interval achievable with what was placed
        (infinite when a kernel received nothing); secondary: negated number
        of CUs placed.
        """
        placed = counts.sum(axis=1)
        if np.any(placed <= 0):
            ii = math.inf
        else:
            ii = float(np.max(self._wcet / placed))
        return (ii, -int(placed.sum()))

    # ------------------------------------------------------------------ #
    # One allocation pass at a fixed constraint relaxation
    # ------------------------------------------------------------------ #
    def _caps_for(self, extra_percent: float) -> np.ndarray:
        """Per-FPGA capacity matrix under a relaxed constraint, shape (F, D).

        Every FPGA's caps are relaxed by the same ``extra_percent`` points
        (clamped at the full device); on a homogeneous platform all rows are
        identical.
        """
        platform = self.problem.platform
        caps_vectors = platform.fpga_scaled_resource_limits(extra_percent)
        bandwidth_limits = platform.fpga_bandwidth_limits()
        caps = np.empty((self._num_fpgas, self._arrays.num_dimensions))
        for dimension, kind in enumerate(self._arrays.dimension_names):
            if dimension == self._bandwidth_row:
                for fpga in range(self._num_fpgas):
                    caps[fpga, dimension] = min(100.0, bandwidth_limits[fpga] + extra_percent)
            else:
                for fpga in range(self._num_fpgas):
                    caps[fpga, dimension] = caps_vectors[fpga][kind]
        return caps

    def _max_units(self, slack: np.ndarray, kernel: int) -> np.ndarray:
        """How many CUs of one kernel each FPGA can still host, shape (F,).

        Entries may be negative when the slack is already (numerically)
        exhausted; callers treat any non-positive value as "no room".
        """
        columns = self._positive_columns[kernel]
        if columns.size == 0:
            return np.full(slack.shape[0], 10**9, dtype=np.int64)
        with np.errstate(over="ignore"):
            ratios = slack[:, columns] / self._positive_values[kernel]
        limits = np.floor(ratios.min(axis=1) + _TOL)
        # Subnormal demands can overflow the division to inf; that means
        # "unlimited room", which must not wrap around the int64 cast.
        limits[~np.isfinite(limits)] = 10**9
        return np.minimum(limits, 10**9).astype(np.int64)

    def _allocate_once(
        self,
        totals: np.ndarray,
        caps: np.ndarray,
        criticality_rule: CriticalityRule | None,
        impact: list[float],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        rule: CriticalityRule = criticality_rule or self.settings.criticality
        num_fpgas = self._num_fpgas
        dims = self._dim_range
        caps_rows = caps.tolist()  # (F, D): per-FPGA capacity rows
        caps_slack_rows = [[value + _TOL for value in row] for row in caps_rows]

        slack = [list(row) for row in caps_rows]
        counts = [[0] * num_fpgas for _ in range(self._num_kernels)]
        remaining = [int(value) for value in totals]
        touched = [False] * num_fpgas
        inverse_caps = [
            [1.0 / value if value > 0 else 0.0 for value in row] for row in caps_rows
        ]

        def max_units_one(row: list[float], kernel: int) -> int:
            limit = 10**9
            for dimension, value in self._positive_dim_lists[kernel]:
                ratio = row[dimension] / value
                if ratio < limit:
                    limit = ratio
            return int(limit + _TOL) if limit < 10**9 else 10**9

        def place(row: list[float], unit_k: list[float], batch: int) -> None:
            for dimension in dims:
                row[dimension] -= unit_k[dimension] * batch

        # ------------------------------------------------------------------
        # Phase 1 (lines 11-21): split kernels too large for a single FPGA
        # over completely empty FPGAs first.  One batched check finds the
        # (usually empty) set of kernels whose whole demand fits on no FPGA.
        # ------------------------------------------------------------------
        caps_slack_matrix = np.asarray(caps_slack_rows)
        whole_demand = self._unit * totals[:, None]  # (K, D)
        fits_somewhere = (
            whole_demand[:, None, :] <= caps_slack_matrix[None, :, :]
        ).all(axis=2)  # (K, F)
        oversized = ~fits_somewhere.any(axis=1)
        if oversized.any():
            split_set = set(np.nonzero(oversized)[0].tolist())

            def fits_single(kernel: int, count: int) -> bool:
                unit_k = self._unit_lists[kernel]
                return any(
                    all(
                        unit_k[dimension] * count <= row[dimension] for dimension in dims
                    )
                    for row in caps_slack_rows
                )

            for kernel in self._sorted_kernels(impact, remaining, rule):
                if kernel not in split_set:
                    continue
                unit_k = self._unit_lists[kernel]
                while remaining[kernel] > 0 and not fits_single(kernel, remaining[kernel]):
                    # Of the still-empty FPGAs, open the one with the most
                    # room for this kernel (on identical FPGAs this is the
                    # first untouched one, the paper's index order).
                    target = None
                    target_units = 0
                    for fpga in range(num_fpgas):
                        if touched[fpga]:
                            continue
                        units = max_units_one(slack[fpga], kernel)
                        if units > target_units:
                            target, target_units = fpga, units
                    if target is None:
                        break
                    batch = min(remaining[kernel], target_units)
                    if batch <= 0:
                        break
                    place(slack[target], unit_k, batch)
                    touched[target] = True
                    counts[kernel][target] += batch
                    remaining[kernel] -= batch

        # ------------------------------------------------------------------
        # Phase 2 (lines 22-37): allocate every kernel, trying to fit it whole
        # on the most occupied FPGA first (consolidation); if no FPGA can take
        # it whole, spill "as many CUs as possible starting from the least
        # occupied FPGA" across the platform.  Occupancy is measured by the
        # *normalized* residual (slack over own caps), so FPGAs of different
        # classes compare by how full they are, not by absolute size; it is
        # maintained incrementally per placement.
        # ------------------------------------------------------------------
        fpga_range = range(num_fpgas)
        norm_slack = [
            sum(row[dimension] * inverse[dimension] for dimension in dims)
            for row, inverse in zip(slack, inverse_caps)
        ]
        unit_norms = [
            [
                sum(unit[dimension] * inverse[dimension] for dimension in dims)
                for inverse in inverse_caps
            ]
            for unit in self._unit_lists
        ]
        for kernel in self._sorted_kernels(impact, remaining, rule):
            count = remaining[kernel]
            if count == 0:
                continue
            unit_k = self._unit_lists[kernel]
            kernel_norms = unit_norms[kernel]
            order = sorted(fpga_range, key=norm_slack.__getitem__)
            demand = [value * count for value in unit_k]
            placed_whole = False
            for fpga in order:
                row = slack[fpga]
                fit = True
                for dimension in dims:
                    if demand[dimension] > row[dimension] + _TOL:
                        fit = False
                        break
                if fit:
                    place(row, unit_k, count)
                    norm_slack[fpga] -= kernel_norms[fpga] * count
                    touched[fpga] = True
                    counts[kernel][fpga] += count
                    remaining[kernel] = 0
                    placed_whole = True
                    break
            if not placed_whole:
                for fpga in reversed(order):  # least occupied first
                    count = remaining[kernel]
                    if count == 0:
                        break
                    batch = min(count, max_units_one(slack[fpga], kernel))
                    if batch > 0:
                        place(slack[fpga], unit_k, batch)
                        norm_slack[fpga] -= kernel_norms[fpga] * batch
                        touched[fpga] = True
                        counts[kernel][fpga] += batch
                        remaining[kernel] -= batch

        return (
            np.asarray(counts, dtype=np.int64),
            np.asarray(remaining, dtype=np.int64),
            np.asarray(slack),
        )

    # ------------------------------------------------------------------ #
    # Repair pass for partial allocations
    # ------------------------------------------------------------------ #
    def _polish(
        self,
        counts: np.ndarray,
        remaining: np.ndarray,
        slack: np.ndarray,
    ) -> None:
        """Rebalance a partial allocation so dropped CUs hurt the II least.

        When the greedy pass could not place every CU, the initiation interval
        is set by whichever kernel happened to run out of space.  This repair
        pass repeatedly takes the bottleneck kernel (largest ``WCET/placed``)
        and tries to host one more of its CUs, either directly in leftover
        slack or by evicting one CU of a less critical kernel, as long as the
        overall II strictly improves.  It never adds CUs beyond the requested
        totals and never violates the (possibly relaxed) per-FPGA caps.

        The swap search evaluates every (FPGA, victim) pair in one vectorized
        step per iteration instead of a Python double loop.
        """
        wcet = self._wcet
        unit = self._unit
        num_kernels = self._num_kernels

        for _ in range(64 * num_kernels):
            if not remaining.any():
                return
            placed = counts.sum(axis=1)
            exec_time = np.divide(
                wcet, placed, out=np.full(num_kernels, np.inf), where=placed > 0
            )
            bottleneck = int(np.argmax(exec_time))
            if remaining[bottleneck] <= 0:
                return
            current_ii = float(exec_time[bottleneck])
            unit_b = unit[bottleneck]

            # 1) Free slack somewhere?
            direct = np.nonzero(self._max_units(slack, bottleneck) >= 1)[0]
            if direct.size:
                fpga = int(direct[0])
                slack[fpga] -= unit_b
                counts[bottleneck, fpga] += 1
                remaining[bottleneck] -= 1
                continue

            # 2) Swap: evict one CU of another kernel if the net II improves.
            # The post-swap II depends only on the victim kernel, not on the
            # FPGA: max of the bottleneck's improved ET, the victim's degraded
            # ET, and the largest ET among the untouched kernels.
            new_bottleneck_et = wcet[bottleneck] / (placed[bottleneck] + 1)
            victim_et = np.divide(
                wcet, placed - 1, out=np.full(num_kernels, np.inf), where=placed > 1
            )
            # Largest current ET among kernels other than the bottleneck and
            # the victim: the bottleneck is the top entry, so it is the
            # second-largest ET -- unless the victim *is* that kernel, in
            # which case it is the third-largest.
            top_order = np.argsort(-exec_time, kind="stable")[:3]
            runners = [int(k) for k in top_order if k != bottleneck][:2]
            third = np.full(
                num_kernels, exec_time[runners[0]] if runners else 0.0
            )
            if runners:
                third[runners[0]] = exec_time[runners[1]] if len(runners) > 1 else 0.0
            new_ii = np.maximum(victim_et, max(new_bottleneck_et, 0.0))
            np.maximum(new_ii, third, out=new_ii)
            eligible = (placed >= 2) & (new_ii < current_ii - 1e-12)
            eligible[bottleneck] = False
            if not eligible.any():
                return
            # Feasibility per (FPGA, victim): the victim has a CU there and
            # evicting it frees enough room for one bottleneck CU.
            frees_enough = np.all(
                slack[:, None, :] + unit[None, :, :] + _TOL >= unit_b[None, None, :], axis=2
            )
            feasible = frees_enough & (counts.T >= 1) & eligible[None, :]
            if not feasible.any():
                return
            score = np.where(feasible, new_ii[None, :], np.inf)
            flat_best = int(np.argmin(score))  # first minimum in (FPGA, kernel) order
            fpga, victim = divmod(flat_best, num_kernels)
            if not np.isfinite(score[fpga, victim]):
                return
            slack[fpga] += unit[victim]
            counts[victim, fpga] -= 1
            remaining[victim] += 1
            slack[fpga] -= unit_b
            counts[bottleneck, fpga] += 1
            remaining[bottleneck] -= 1

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _sorted_kernels(
        self,
        impact: list[float],
        remaining: list[int] | np.ndarray,
        rule: CriticalityRule,
    ) -> list[int]:
        """Kernel indices in decreasing criticality order."""
        if rule == "footprint":
            # The classic FFD ordering: largest per-CU footprint first.
            keys = list(zip(self._per_cu_list, self._wcet_list))
        else:
            footprint = [
                per_cu * count for per_cu, count in zip(self._per_cu_list, remaining)
            ]
            if rule == "ii-impact":
                keys = list(zip(impact, footprint))
            elif rule == "resource":
                keys = list(zip(footprint, impact))
            elif rule == "wcet":
                keys = list(zip(self._wcet_list, footprint))
            else:  # pragma: no cover - guarded by the Literal type
                raise ValueError(f"unknown criticality rule {rule!r}")
        keyed = list(zip(keys, range(self._num_kernels)))
        keyed.sort(key=lambda item: item[0], reverse=True)
        return [kernel for _, kernel in keyed]


def allocate_cus(
    problem: AllocationProblem,
    totals: Mapping[str, int],
    settings: AllocatorSettings = AllocatorSettings(),
) -> AllocatorResult:
    """Convenience wrapper around :class:`GreedyAllocator`."""
    return GreedyAllocator(problem, settings).allocate(totals)


def first_fit_decreasing_allocate(
    problem: AllocationProblem, totals: Mapping[str, int]
) -> AllocatorResult:
    """Ablation baseline: plain first-fit-decreasing without criticality order.

    CUs are placed one at a time, largest per-CU footprint first, into the
    first FPGA with room (no consolidation bias, no constraint relaxation).
    Like Algorithm 1, the baseline honours the problem's ``N_k >= 1``
    constraint (eq. 16): it first seeds one CU of every kernel before packing
    the remainder, so a partial result never leaves a kernel without any CU
    while another kernel hoards the space -- without that, comparing the IIs
    of two partial allocations would be meaningless.
    """
    arrays = problem.arrays()
    num_fpgas = problem.num_fpgas
    num_kernels = arrays.num_kernels
    unit = np.ascontiguousarray(arrays.weights.T)
    # One slack row per FPGA; rows differ across device classes.
    slack = np.ascontiguousarray(arrays.fpga_capacity.T).copy()
    counts = np.zeros((num_kernels, num_fpgas), dtype=np.int64)
    remaining = np.asarray([int(totals[name]) for name in arrays.names], dtype=np.int64)

    resource_columns = [d for d in range(arrays.num_dimensions) if d != arrays.bandwidth_row]
    if resource_columns:
        footprint = unit[:, resource_columns].max(axis=1)
    else:
        footprint = np.zeros(num_kernels)
    order = sorted(range(num_kernels), key=lambda kernel: footprint[kernel], reverse=True)

    def place_one(kernel: int) -> bool:
        unit_k = unit[kernel]
        fits = np.all(unit_k <= slack + _TOL, axis=1)
        hosts = np.nonzero(fits)[0]
        if hosts.size == 0:
            return False
        fpga = int(hosts[0])
        slack[fpga] -= unit_k
        counts[kernel, fpga] += 1
        remaining[kernel] -= 1
        return True

    def place_batch(kernel: int) -> None:
        """Place all remaining CUs of one kernel, first fit, batched per FPGA.

        Equivalent to placing one CU at a time into the first FPGA with room
        (each FPGA fills up before the next is touched), but the per-FPGA
        batch sizes come from one vectorized slack division instead of a
        Python loop per CU.
        """
        unit_k = unit[kernel]
        demanding = unit_k > 0.0
        if not np.any(demanding):
            counts[kernel, 0] += remaining[kernel]
            remaining[kernel] = 0
            return
        per_dim = np.floor(
            (slack[:, demanding] + _TOL) / unit_k[demanding]
        )  # (F, demanded dims)
        room = np.maximum(per_dim.min(axis=1), 0.0).astype(np.int64)  # (F,)
        taken_before = np.concatenate(([0], np.cumsum(room)[:-1]))
        batches = np.clip(remaining[kernel] - taken_before, 0, room)
        counts[kernel] += batches
        remaining[kernel] -= int(batches.sum())
        slack[...] -= batches[:, None] * unit_k[None, :]

    # Coverage pass: one CU per kernel (eq. 16), largest footprint first.
    for kernel in order:
        if remaining[kernel] > 0:
            place_one(kernel)
    # Packing pass: the rest, first fit, one vectorized batch per kernel.
    for kernel in order:
        if remaining[kernel] > 0:
            place_batch(kernel)

    unallocated = {
        name: int(count) for name, count in zip(arrays.names, remaining) if count > 0
    }
    return AllocatorResult(
        success=not unallocated,
        counts={
            name: tuple(int(value) for value in row)
            for name, row in zip(arrays.names, counts)
        },
        constraint_relaxation=0.0,
        iterations=1,
        unallocated=unallocated,
    )
