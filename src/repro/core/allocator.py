"""Greedy CU-to-FPGA allocation heuristic (Algorithm 1 of the paper).

Given integer CU totals ``N_k`` (from the discretisation step), the allocator
assigns them to FPGAs while:

* allocating the most *critical* kernels first (those whose II suffers most
  if a CU were dropped),
* consolidating kernels onto already-occupied FPGAs (FPGAs are visited in
  increasing order of resource slack), which minimises spreading,
* splitting kernels that cannot fit on a single FPGA across empty FPGAs
  first, and
* retrying with a slightly relaxed per-FPGA constraint ``Rc = R + i * delta``
  while ``Rc <= R + T`` when a complete allocation cannot be found.

"Resource" means every active capacity dimension: on-chip resources *and*
DRAM bandwidth, as in the paper ("we use the general term resource constraint
to refer to both actual resource and bandwidth constraints").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal, Mapping

from ..platform.resources import ResourceVector
from .problem import AllocationProblem

CriticalityRule = Literal["ii-impact", "resource", "wcet"]


@dataclass(frozen=True)
class AllocatorSettings:
    """Tuning knobs of Algorithm 1.

    ``portfolio=True`` runs one greedy pass per criticality rule and keeps the
    best outcome; each pass is microseconds, and multi-dimensional packing is
    sensitive enough to the visit order that this materially improves
    robustness without leaving the paper's greedy framework.
    """

    t_percent: float = 0.0
    delta_percent: float = 1.0
    criticality: CriticalityRule = "ii-impact"
    portfolio: bool = True
    polish: bool = True

    def __post_init__(self) -> None:
        if self.t_percent < 0:
            raise ValueError("T must be non-negative")
        if self.delta_percent <= 0:
            raise ValueError("delta must be positive")

    def criticality_rules(self) -> tuple[CriticalityRule, ...]:
        """Orderings attempted at every constraint-relaxation step."""
        if not self.portfolio:
            return (self.criticality,)
        rules: list[CriticalityRule] = [self.criticality]
        for rule in ("resource", "wcet", "ii-impact"):
            if rule not in rules:
                rules.append(rule)  # type: ignore[arg-type]
        return tuple(rules)


@dataclass(frozen=True)
class AllocatorResult:
    """Outcome of the greedy allocation."""

    success: bool
    counts: Mapping[str, tuple[int, ...]]
    constraint_relaxation: float
    iterations: int
    unallocated: Mapping[str, int]


@dataclass
class _FPGAState:
    """Mutable per-FPGA bookkeeping used during one allocation pass."""

    index: int
    resource_slack: dict[str, float]
    bandwidth_slack: float
    touched: bool = False

    def normalized_slack(self, caps: dict[str, float], bandwidth_cap: float) -> float:
        total = 0.0
        for kind, cap in caps.items():
            if cap > 0:
                total += self.resource_slack[kind] / cap
        if bandwidth_cap > 0:
            total += self.bandwidth_slack / bandwidth_cap
        return total

    def fits(self, demand: dict[str, float], bandwidth_demand: float, tolerance: float = 1e-9) -> bool:
        if bandwidth_demand > self.bandwidth_slack + tolerance:
            return False
        return all(demand[kind] <= self.resource_slack[kind] + tolerance for kind in demand)

    def max_units(self, unit: dict[str, float], unit_bandwidth: float) -> int:
        limit = math.inf
        for kind, usage in unit.items():
            if usage > 0:
                limit = min(limit, self.resource_slack[kind] / usage)
        if unit_bandwidth > 0:
            limit = min(limit, self.bandwidth_slack / unit_bandwidth)
        if math.isinf(limit):
            return 10**9
        return max(0, int(math.floor(limit + 1e-9)))

    def place(self, unit: dict[str, float], unit_bandwidth: float, count: int) -> None:
        for kind in unit:
            self.resource_slack[kind] -= unit[kind] * count
        self.bandwidth_slack -= unit_bandwidth * count
        if count > 0:
            self.touched = True


class GreedyAllocator:
    """Algorithm 1: criticality-driven, consolidation-biased CU placement."""

    def __init__(self, problem: AllocationProblem, settings: AllocatorSettings = AllocatorSettings()):
        self.problem = problem
        self.settings = settings
        self._kinds = [
            dimension.name
            for dimension in problem.capacity_dimensions()
            if dimension.name != "bandwidth"
        ]

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def allocate(self, totals: Mapping[str, int]) -> AllocatorResult:
        """Allocate ``N_k`` CUs per kernel to the platform's FPGAs.

        Follows the retry loop of Algorithm 1: the per-FPGA constraint starts
        at the problem's resource limit and is relaxed by ``delta`` points per
        failed attempt, up to ``T`` extra points.
        """
        for name in self.problem.kernel_names:
            if name not in totals:
                raise KeyError(f"missing CU total for kernel {name!r}")
            if totals[name] < 1:
                raise ValueError(f"kernel {name!r} must have at least one CU")

        extra = 0.0
        iterations = 0
        best: tuple[dict[str, list[int]], dict[str, int], float] | None = None
        while True:
            for rule in self.settings.criticality_rules():
                iterations += 1
                counts, unallocated = self._allocate_once(totals, extra, rule)
                if not unallocated:
                    return AllocatorResult(
                        success=True,
                        counts={name: tuple(values) for name, values in counts.items()},
                        constraint_relaxation=extra,
                        iterations=iterations,
                        unallocated={},
                    )
                if best is None or self._partial_quality(counts) < self._partial_quality(best[0]):
                    best = (counts, unallocated, extra)
            extra += self.settings.delta_percent
            if extra > self.settings.t_percent + 1e-9:
                break

        assert best is not None
        counts, unallocated, used_extra = best
        return AllocatorResult(
            success=False,
            counts={name: tuple(values) for name, values in counts.items()},
            constraint_relaxation=used_extra,
            iterations=iterations,
            unallocated=dict(unallocated),
        )

    def _partial_quality(self, counts: Mapping[str, list[int]]) -> tuple[float, int]:
        """Ranking key for incomplete allocations (smaller is better).

        Primary: the initiation interval achievable with what was placed
        (infinite when a kernel received nothing); secondary: negated number
        of CUs placed.
        """
        ii = 0.0
        placed_total = 0
        for name in self.problem.kernel_names:
            placed = sum(counts[name])
            placed_total += placed
            if placed <= 0:
                ii = math.inf
            else:
                ii = max(ii, self.problem.wcet[name] / placed)
        return (ii, -placed_total)

    # ------------------------------------------------------------------ #
    # One allocation pass at a fixed constraint relaxation
    # ------------------------------------------------------------------ #
    def _allocate_once(
        self,
        totals: Mapping[str, int],
        extra_percent: float,
        criticality_rule: CriticalityRule | None = None,
    ) -> tuple[dict[str, list[int]], dict[str, int]]:
        rule: CriticalityRule = criticality_rule or self.settings.criticality
        problem = self.problem
        caps_vector: ResourceVector = problem.platform.scaled_resource_limit(extra_percent)
        caps = {kind: caps_vector[kind] for kind in self._kinds}
        bandwidth_cap = min(100.0, problem.platform.bandwidth_limit + extra_percent)

        fpgas = [
            _FPGAState(
                index=f,
                resource_slack=dict(caps),
                bandwidth_slack=bandwidth_cap,
            )
            for f in range(problem.num_fpgas)
        ]
        counts: dict[str, list[int]] = {
            name: [0] * problem.num_fpgas for name in problem.kernel_names
        }
        remaining: dict[str, int] = {name: int(totals[name]) for name in problem.kernel_names}

        # ------------------------------------------------------------------
        # Phase 1 (lines 11-21): split kernels too large for a single FPGA
        # over completely empty FPGAs first.
        # ------------------------------------------------------------------
        for name in self._sorted_kernels(totals, remaining, rule):
            unit = self._unit_demand(name)
            unit_bandwidth = problem.bandwidth_of(name)
            while remaining[name] > 0 and not self._fits_single_fpga(
                name, remaining[name], caps, bandwidth_cap
            ):
                empty = next((fpga for fpga in fpgas if not fpga.touched), None)
                if empty is None:
                    break
                batch = min(remaining[name], empty.max_units(unit, unit_bandwidth))
                if batch <= 0:
                    break
                empty.place(unit, unit_bandwidth, batch)
                counts[name][empty.index] += batch
                remaining[name] -= batch

        # ------------------------------------------------------------------
        # Phase 2 (lines 22-37): allocate every kernel, trying to fit it whole
        # on the most occupied FPGA first (consolidation); if no FPGA can take
        # it whole, spill "as many CUs as possible starting from the least
        # occupied FPGA" across the platform.
        # ------------------------------------------------------------------
        for name in self._sorted_kernels(totals, remaining, rule):
            if remaining[name] == 0:
                continue
            unit = self._unit_demand(name)
            unit_bandwidth = problem.bandwidth_of(name)
            ordered = sorted(
                fpgas, key=lambda fpga: fpga.normalized_slack(caps, bandwidth_cap)
            )
            demand = {kind: unit[kind] * remaining[name] for kind in unit}
            placed_whole = False
            for fpga in ordered:
                if fpga.fits(demand, unit_bandwidth * remaining[name]):
                    fpga.place(unit, unit_bandwidth, remaining[name])
                    counts[name][fpga.index] += remaining[name]
                    remaining[name] = 0
                    placed_whole = True
                    break
            if not placed_whole:
                for fpga in reversed(ordered):  # least occupied first
                    if remaining[name] == 0:
                        break
                    batch = min(remaining[name], fpga.max_units(unit, unit_bandwidth))
                    if batch > 0:
                        fpga.place(unit, unit_bandwidth, batch)
                        counts[name][fpga.index] += batch
                        remaining[name] -= batch

        if self.settings.polish and any(count > 0 for count in remaining.values()):
            self._polish(counts, remaining, fpgas)

        unallocated = {name: count for name, count in remaining.items() if count > 0}
        return counts, unallocated

    # ------------------------------------------------------------------ #
    # Repair pass for partial allocations
    # ------------------------------------------------------------------ #
    def _polish(
        self,
        counts: dict[str, list[int]],
        remaining: dict[str, int],
        fpgas: list[_FPGAState],
    ) -> None:
        """Rebalance a partial allocation so dropped CUs hurt the II least.

        When the greedy pass could not place every CU, the initiation interval
        is set by whichever kernel happened to run out of space.  This repair
        pass repeatedly takes the bottleneck kernel (largest ``WCET/placed``)
        and tries to host one more of its CUs, either directly in leftover
        slack or by evicting one CU of a less critical kernel, as long as the
        overall II strictly improves.  It never adds CUs beyond the requested
        totals and never violates the (possibly relaxed) per-FPGA caps.
        """
        problem = self.problem

        def execution_time(name: str, placed: int) -> float:
            return math.inf if placed <= 0 else problem.wcet[name] / placed

        def placed_count(name: str) -> int:
            return sum(counts[name])

        for _ in range(64 * len(problem.kernel_names)):
            pending = [name for name, count in remaining.items() if count > 0]
            if not pending:
                return
            bottleneck = max(
                problem.kernel_names, key=lambda name: execution_time(name, placed_count(name))
            )
            if remaining.get(bottleneck, 0) <= 0:
                return
            current_ii = execution_time(bottleneck, placed_count(bottleneck))
            unit = self._unit_demand(bottleneck)
            unit_bandwidth = problem.bandwidth_of(bottleneck)

            # 1) Free slack somewhere?
            direct = next((fpga for fpga in fpgas if fpga.max_units(unit, unit_bandwidth) >= 1), None)
            if direct is not None:
                direct.place(unit, unit_bandwidth, 1)
                counts[bottleneck][direct.index] += 1
                remaining[bottleneck] -= 1
                continue

            # 2) Swap: evict one CU of another kernel if the net II improves.
            best_swap: tuple[float, _FPGAState, str] | None = None
            for fpga in fpgas:
                for victim in problem.kernel_names:
                    if victim == bottleneck or counts[victim][fpga.index] < 1:
                        continue
                    if placed_count(victim) <= 1:
                        continue
                    victim_unit = self._unit_demand(victim)
                    freed_ok = all(
                        fpga.resource_slack[kind] + victim_unit[kind] + 1e-9 >= unit[kind]
                        for kind in unit
                    ) and (
                        fpga.bandwidth_slack + problem.bandwidth_of(victim) + 1e-9
                        >= unit_bandwidth
                    )
                    if not freed_ok:
                        continue
                    new_ii = max(
                        execution_time(bottleneck, placed_count(bottleneck) + 1),
                        execution_time(victim, placed_count(victim) - 1),
                        max(
                            (
                                execution_time(other, placed_count(other))
                                for other in problem.kernel_names
                                if other not in (bottleneck, victim)
                            ),
                            default=0.0,
                        ),
                    )
                    if new_ii < current_ii - 1e-12 and (
                        best_swap is None or new_ii < best_swap[0]
                    ):
                        best_swap = (new_ii, fpga, victim)
            if best_swap is None:
                return
            _, fpga, victim = best_swap
            victim_unit = self._unit_demand(victim)
            fpga.place(victim_unit, problem.bandwidth_of(victim), -1)
            counts[victim][fpga.index] -= 1
            remaining[victim] = remaining.get(victim, 0) + 1
            fpga.place(unit, unit_bandwidth, 1)
            counts[bottleneck][fpga.index] += 1
            remaining[bottleneck] -= 1

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _unit_demand(self, kernel_name: str) -> dict[str, float]:
        resources = self.problem.resource_of(kernel_name)
        return {kind: resources[kind] for kind in self._kinds}

    def _fits_single_fpga(
        self, kernel_name: str, count: int, caps: dict[str, float], bandwidth_cap: float
    ) -> bool:
        unit = self._unit_demand(kernel_name)
        if any(unit[kind] * count > caps[kind] + 1e-9 for kind in unit):
            return False
        return self.problem.bandwidth_of(kernel_name) * count <= bandwidth_cap + 1e-9

    def _sorted_kernels(
        self,
        totals: Mapping[str, int],
        remaining: Mapping[str, int],
        rule: CriticalityRule | None = None,
    ) -> list[str]:
        """Kernel names in decreasing criticality order."""
        rule = rule or self.settings.criticality
        problem = self.problem

        def ii_impact(name: str) -> float:
            total = max(1, int(totals[name]))
            wcet = problem.wcet[name]
            if total <= 1:
                return math.inf
            return wcet / (total - 1) - wcet / total

        def resource_footprint(name: str) -> float:
            unit = self._unit_demand(name)
            per_cu = max(unit.values()) if unit else 0.0
            return per_cu * remaining.get(name, totals[name])

        if rule == "ii-impact":
            key = lambda name: (ii_impact(name), resource_footprint(name))
        elif rule == "resource":
            key = lambda name: (resource_footprint(name), ii_impact(name))
        elif rule == "wcet":
            key = lambda name: (problem.wcet[name], resource_footprint(name))
        else:  # pragma: no cover - guarded by the Literal type
            raise ValueError(f"unknown criticality rule {rule!r}")
        return sorted(problem.kernel_names, key=key, reverse=True)


def allocate_cus(
    problem: AllocationProblem,
    totals: Mapping[str, int],
    settings: AllocatorSettings = AllocatorSettings(),
) -> AllocatorResult:
    """Convenience wrapper around :class:`GreedyAllocator`."""
    return GreedyAllocator(problem, settings).allocate(totals)


def first_fit_decreasing_allocate(
    problem: AllocationProblem, totals: Mapping[str, int]
) -> AllocatorResult:
    """Ablation baseline: plain first-fit-decreasing without criticality order.

    CUs are placed one at a time, largest per-CU footprint first, into the
    first FPGA with room (no consolidation bias, no constraint relaxation).
    """
    kinds = [
        dimension.name
        for dimension in problem.capacity_dimensions()
        if dimension.name != "bandwidth"
    ]
    caps = {kind: problem.platform.resource_limit[kind] for kind in kinds}
    bandwidth_cap = problem.platform.bandwidth_limit
    fpgas = [
        _FPGAState(index=f, resource_slack=dict(caps), bandwidth_slack=bandwidth_cap)
        for f in range(problem.num_fpgas)
    ]
    counts = {name: [0] * problem.num_fpgas for name in problem.kernel_names}
    remaining = {name: int(totals[name]) for name in problem.kernel_names}

    def footprint(name: str) -> float:
        resources = problem.resource_of(name)
        return max(resources[kind] for kind in kinds) if kinds else 0.0

    for name in sorted(problem.kernel_names, key=footprint, reverse=True):
        unit = {kind: problem.resource_of(name)[kind] for kind in kinds}
        unit_bandwidth = problem.bandwidth_of(name)
        for _ in range(remaining[name]):
            for fpga in fpgas:
                if fpga.fits(unit, unit_bandwidth):
                    fpga.place(unit, unit_bandwidth, 1)
                    counts[name][fpga.index] += 1
                    remaining[name] -= 1
                    break
            else:
                break

    unallocated = {name: count for name, count in remaining.items() if count > 0}
    return AllocatorResult(
        success=not unallocated,
        counts={name: tuple(values) for name, values in counts.items()},
        constraint_relaxation=0.0,
        iterations=1,
        unallocated=unallocated,
    )
