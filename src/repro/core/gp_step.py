"""First step of the heuristic: the relaxed Geometric Program (Sec. 3.2.1).

Setting ``beta = 0`` and letting ``n_kf`` take real values makes the problem
symmetric across the ``F`` identical FPGAs, so the CUs distribute equally and
only the totals ``N̂_k = F * n̂_k`` matter.  The resulting program
(eqs. 14-18) minimises the relaxed initiation interval subject to aggregated
(platform-wide) resource and bandwidth constraints.

Four interchangeable backends solve it:

* ``"bisection"`` (default): the vectorized exact min-max solver of
  :mod:`repro.gp.minmax`, operating on the kernel-indexed arrays memoized on
  the problem; fastest and used by the heuristic.
* ``"bisection-scalar"``: the original name-keyed bisection solver, kept as
  a cross-check reference for the vectorized kernel (the parity tests assert
  the two agree on every case study).
* ``"slsqp"`` and ``"interior-point"``: the general GP backends operating on
  the posynomial model, used to cross-validate the bisection optimum and as
  drop-in replacements for GPkit.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..gp import GPModel, Monomial, Variable, solve as solve_gp
from ..gp.errors import InfeasibleError
from ..gp.minmax import CapacityConstraint, MinMaxLatencyProblem, VectorizedMinMaxProblem
from ..obs.trace import span
from .problem import AllocationProblem

#: Name of the initiation-interval variable in the posynomial model.
II_VARIABLE = "II"


@dataclass(frozen=True)
class GPStepResult:
    """Outcome of the GP step: relaxed II and fractional total CU counts."""

    ii_hat: float
    counts_hat: Mapping[str, float]
    backend: str

    def per_fpga_counts(self, num_fpgas: int) -> dict[str, float]:
        """The symmetric per-FPGA counts ``n̂_k = N̂_k / F`` (eq. 11)."""
        return {name: value / num_fpgas for name, value in self.counts_hat.items()}


def build_minmax_problem(
    problem: AllocationProblem,
    min_counts: Mapping[str, float] | None = None,
    max_counts: Mapping[str, float] | None = None,
) -> MinMaxLatencyProblem:
    """Build the aggregated min-max-latency problem (eqs. 14-18).

    ``min_counts`` / ``max_counts`` override the default bounds
    (``N̂_k >= 1``, no upper bound); the discretisation branch-and-bound uses
    them to encode its box constraints.
    """
    wcet = problem.wcet
    capacities = [
        CapacityConstraint(
            name=dimension.name,
            weights=dimension.weights,
            capacity=dimension.aggregate(problem.num_fpgas),
        )
        for dimension in problem.capacity_dimensions()
    ]
    lower = {name: 1.0 for name in wcet}
    if min_counts:
        for name, value in min_counts.items():
            lower[name] = max(lower.get(name, 1.0), float(value))
    upper: dict[str, float] | None = None
    explicit_upper = {
        kernel.name: float(kernel.max_cus)
        for kernel in problem.pipeline
        if kernel.max_cus is not None
    }
    if max_counts or explicit_upper:
        upper = dict(explicit_upper)
        if max_counts:
            for name, value in max_counts.items():
                upper[name] = min(upper.get(name, float(value)), float(value))
    return MinMaxLatencyProblem(
        wcet=wcet, min_counts=lower, capacities=capacities, max_counts=upper
    )


def build_vectorized_minmax(problem: AllocationProblem) -> VectorizedMinMaxProblem:
    """Array form of the aggregated min-max problem (eqs. 14-18).

    Shares the kernel-indexed matrices memoized on the problem; capacities
    are the platform-wide aggregates (per-FPGA capacity times ``F``).  Box
    bounds are supplied per solve, so one instance serves every node of the
    discretisation branch-and-bound.
    """
    arrays = problem.arrays()
    return VectorizedMinMaxProblem(
        names=arrays.names,
        wcet=arrays.wcet,
        weights=arrays.weights,
        capacity=arrays.aggregate_capacity,
    )


def build_gp_model(problem: AllocationProblem) -> GPModel:
    """Build the posynomial form of the relaxed problem (eqs. 14-18)."""
    model = GPModel(name=f"gp-step[{problem.pipeline.name}]")
    ii = model.new_variable(II_VARIABLE)
    count_vars: dict[str, Variable] = {}
    for kernel in problem.pipeline:
        variable = model.new_variable(f"N[{kernel.name}]")
        count_vars[kernel.name] = variable
        # Eq. 15: WCET_k / N_k <= II  <=>  WCET_k * II^-1 * N_k^-1 <= 1.
        model.add_constraint(Monomial(kernel.wcet_ms) / (ii * variable) <= 1.0)
        # Eq. 16: N_k >= 1.
        model.add_lower_bound(variable, 1.0)
        if kernel.max_cus is not None:
            model.add_upper_bound(variable, float(kernel.max_cus))
    # Eqs. 17-18: aggregated capacity constraints, one per active dimension.
    for dimension in problem.capacity_dimensions():
        total_capacity = dimension.aggregate(problem.num_fpgas)
        terms = None
        for kernel_name, weight in dimension.weights.items():
            if weight <= 0:
                continue
            term = (weight / total_capacity) * count_vars[kernel_name]
            terms = term if terms is None else terms + term
        if terms is not None:
            model.add_constraint(terms <= 1.0)
    model.set_objective(ii)
    return model


# --------------------------------------------------------------------------- #
# Cross-call memo: the exact solvers bound and seed from the same relaxed GP
# the heuristic solves, so one table/sweep pass computes each optimum once.
# The relaxation is the beta = 0 symmetric program -- objective weights never
# enter it -- so every weight variant of a problem shares the entry.
# --------------------------------------------------------------------------- #
_MEMO_MAX_ENTRIES = 256
_memo: "OrderedDict[tuple, GPStepResult]" = OrderedDict()
_memo_lock = threading.Lock()
_memo_hits = 0
_memo_misses = 0


def gp_step_cache_info() -> dict[str, int]:
    """Hit/miss/size counters of the cross-call GP-step memo."""
    return {"hits": _memo_hits, "misses": _memo_misses, "entries": len(_memo)}


def gp_step_cache_clear() -> None:
    """Empty the cross-call memo (used by tests and benchmarks)."""
    global _memo_hits, _memo_misses
    with _memo_lock:
        _memo.clear()
        _memo_hits = 0
        _memo_misses = 0


def _memo_key(problem: AllocationProblem, backend: str) -> tuple | None:
    """Value-based memo key; ``None`` when the problem is unhashable."""
    try:
        key = (problem.pipeline, problem.platform, backend)
        hash(key)
    except TypeError:
        return None
    return key


def solve_gp_step(problem: AllocationProblem, backend: str = "bisection") -> GPStepResult:
    """Solve the relaxed GP and return ``(ÎI, N̂_k)``.

    Results are memoized by problem value across calls (infeasibility is not;
    the error path re-derives its message).

    Raises
    ------
    repro.gp.errors.InfeasibleError
        If even one CU per kernel exceeds the aggregated platform capacity.
    """
    global _memo_hits, _memo_misses
    with span("gp_step") as trace_span:
        key = _memo_key(problem, backend)
        if key is not None:
            with _memo_lock:
                cached = _memo.get(key)
                if cached is not None:
                    _memo.move_to_end(key)
                    _memo_hits += 1
                    if trace_span is not None:
                        trace_span.attributes["cached"] = True
                    return cached
                _memo_misses += 1
        result = _solve_gp_step_uncached(problem, backend)
        if key is not None:
            with _memo_lock:
                if len(_memo) >= _MEMO_MAX_ENTRIES:
                    _memo.popitem(last=False)
                _memo[key] = result
        if trace_span is not None:
            trace_span.attributes["backend"] = backend
        return result


def _solve_gp_step_uncached(problem: AllocationProblem, backend: str) -> GPStepResult:
    if backend == "bisection":
        arrays = problem.arrays()
        vectorized = build_vectorized_minmax(problem)
        max_counts = arrays.explicit_max if np.any(np.isfinite(arrays.explicit_max)) else None
        ii_hat, count_vector = vectorized.solve(max_counts=max_counts)
        return GPStepResult(
            ii_hat=ii_hat, counts_hat=arrays.mapping(count_vector), backend=backend
        )
    if backend == "bisection-scalar":
        minmax = build_minmax_problem(problem)
        ii_hat, counts = minmax.solve()
        return GPStepResult(ii_hat=ii_hat, counts_hat=counts, backend=backend)

    model = build_gp_model(problem)
    initial = _initial_point(problem)
    result = solve_gp(model, backend=backend, initial_values=initial)
    if not result.is_optimal:
        raise InfeasibleError(
            f"GP backend {backend!r} reported {result.status.value} for the relaxed problem"
        )
    counts = {
        kernel.name: result.values[f"N[{kernel.name}]"] for kernel in problem.pipeline
    }
    return GPStepResult(ii_hat=result.values[II_VARIABLE], counts_hat=counts, backend=backend)


def _initial_point(problem: AllocationProblem) -> dict[str, float]:
    """A feasible starting point: one CU per kernel, II at its single-CU value.

    Feasible whenever the aggregated capacity admits one CU per kernel, which
    is exactly the feasibility condition of the relaxed problem.
    """
    values = {f"N[{kernel.name}]": 1.0 for kernel in problem.pipeline}
    values[II_VARIABLE] = max(kernel.wcet_ms for kernel in problem.pipeline) * 1.001
    return values
