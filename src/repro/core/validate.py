"""Cross-validation helpers for allocation solutions and solver outcomes."""

from __future__ import annotations

from dataclasses import dataclass

from .problem import AllocationProblem
from .solution import AllocationSolution, SolveOutcome


@dataclass(frozen=True)
class ValidationReport:
    """Result of validating a solution against its problem."""

    feasible: bool
    violations: tuple[str, ...]
    initiation_interval: float
    spreading: float
    objective: float
    average_utilization: float

    def __bool__(self) -> bool:
        return self.feasible


def validate_solution(
    solution: AllocationSolution, tolerance: float = 1e-6
) -> ValidationReport:
    """Check every constraint of the paper's formulation on a solution."""
    violations = tuple(solution.violations(tolerance=tolerance))
    return ValidationReport(
        feasible=not violations,
        violations=violations,
        initiation_interval=solution.initiation_interval,
        spreading=solution.spreading,
        objective=solution.objective,
        average_utilization=solution.average_utilization,
    )


def check_outcome_consistency(outcome: SolveOutcome, tolerance: float = 1e-6) -> list[str]:
    """Sanity checks of a solver outcome (used by tests and the CLI).

    Returns a list of inconsistency descriptions (empty when everything is
    consistent): a successful outcome must carry a feasible solution whose
    objective is not below the reported lower bound.
    """
    issues: list[str] = []
    if outcome.succeeded:
        if outcome.solution is None:
            issues.append("outcome marked successful but carries no solution")
            return issues
        report = validate_solution(outcome.solution, tolerance=tolerance)
        if not report.feasible:
            issues.extend(f"infeasible solution: {violation}" for violation in report.violations)
        if (
            outcome.lower_bound == outcome.lower_bound  # not NaN
            and outcome.objective < outcome.lower_bound - 1e-6 * max(1.0, abs(outcome.lower_bound))
        ):
            issues.append(
                f"objective {outcome.objective:.6f} is below the reported lower bound "
                f"{outcome.lower_bound:.6f}"
            )
    return issues


def compare_methods(
    problem: AllocationProblem, outcomes: dict[str, SolveOutcome]
) -> list[str]:
    """Cross-method consistency checks (e.g. exact II <= heuristic II)."""
    issues: list[str] = []
    minlp = outcomes.get("minlp")
    heuristic = outcomes.get("gp+a")
    if minlp and heuristic and minlp.succeeded and heuristic.succeeded:
        if minlp.initiation_interval > heuristic.initiation_interval + 1e-6:
            issues.append(
                "exact minimum II exceeds the heuristic II: "
                f"{minlp.initiation_interval:.6f} > {heuristic.initiation_interval:.6f}"
            )
    return issues
