"""The GP+A heuristic: GP relaxation + discretisation + greedy allocation.

This is the paper's main contribution (Section 3.2): a two-step heuristic
whose results track the exact MINLP solutions at a small fraction of the
runtime.  The three stages are implemented in :mod:`repro.core.gp_step`,
:mod:`repro.core.discretize` and :mod:`repro.core.allocator`; this module
chains them and packages the result.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

from ..gp.errors import InfeasibleError
from ..obs.trace import span
from .allocator import AllocatorResult, AllocatorSettings, GreedyAllocator
from .discretize import DiscretizationError, discretize_counts, round_counts
from .gp_step import solve_gp_step
from .problem import AllocationProblem
from .solution import AllocationSolution, SolveOutcome, SolveStatus


@dataclass(frozen=True)
class HeuristicSettings:
    """Configuration of the GP+A heuristic."""

    gp_backend: str = "bisection"
    t_percent: float = 0.0
    delta_percent: float = 1.0
    criticality: str = "ii-impact"
    use_bb_discretization: bool = True
    discretization_max_nodes: int = 20_000
    discretization_time_limit: float = 30.0

    def allocator_settings(self) -> AllocatorSettings:
        return AllocatorSettings(
            t_percent=self.t_percent,
            delta_percent=self.delta_percent,
            criticality=self.criticality,  # type: ignore[arg-type]
        )


# --------------------------------------------------------------------------- #
# Cross-call memo of the allocation stage: the exact solvers seed from the
# same GP+A run the gp+a table row measures, and the placement is a pure
# function of (pipeline, platform, allocator settings, integer totals) --
# objective weights never enter Algorithm 1 -- so every weight variant of a
# problem shares the entry.  The GP and discretisation stages carry their own
# memos (:mod:`repro.core.gp_step`, :mod:`repro.core.discretize`).
# --------------------------------------------------------------------------- #
_MEMO_MAX_ENTRIES = 512
_memo: "OrderedDict[tuple, AllocatorResult]" = OrderedDict()
_memo_lock = threading.Lock()
_memo_hits = 0
_memo_misses = 0


def allocation_cache_info() -> dict[str, int]:
    """Hit/miss/size counters of the cross-call allocation memo."""
    return {"hits": _memo_hits, "misses": _memo_misses, "entries": len(_memo)}


def allocation_cache_clear() -> None:
    """Empty the cross-call memo (used by tests and benchmarks)."""
    global _memo_hits, _memo_misses
    with _memo_lock:
        _memo.clear()
        _memo_hits = 0
        _memo_misses = 0


def _allocate_memoized(
    problem: AllocationProblem,
    settings: AllocatorSettings,
    totals: "dict[str, int]",
) -> AllocatorResult:
    global _memo_hits, _memo_misses
    try:
        key = (problem.pipeline, problem.platform, settings, tuple(sorted(totals.items())))
        hash(key)
    except TypeError:
        key = None
    if key is not None:
        with _memo_lock:
            cached = _memo.get(key)
            if cached is not None:
                _memo.move_to_end(key)
                _memo_hits += 1
                return cached
            _memo_misses += 1
    result = GreedyAllocator(problem, settings).allocate(totals)
    if key is not None:
        with _memo_lock:
            if len(_memo) >= _MEMO_MAX_ENTRIES:
                _memo.popitem(last=False)
            _memo[key] = result
    return result


def solve_gp_a(
    problem: AllocationProblem, settings: HeuristicSettings = HeuristicSettings()
) -> SolveOutcome:
    """Run the full GP+A heuristic on an allocation problem.

    Returns a :class:`SolveOutcome`; ``status`` is ``INFEASIBLE`` when either
    the relaxed GP is infeasible (the platform cannot host one CU per kernel)
    or the allocator cannot place the discretised CUs within ``R + T``.
    """
    start = time.perf_counter()
    details: dict[str, object] = {"gp_backend": settings.gp_backend}

    try:
        gp_result = solve_gp_step(problem, backend=settings.gp_backend)
    except InfeasibleError as error:
        return SolveOutcome(
            method="gp+a",
            status=SolveStatus.INFEASIBLE,
            solution=None,
            runtime_seconds=time.perf_counter() - start,
            details={"reason": f"relaxed GP infeasible: {error}"},
        )
    details["ii_hat"] = gp_result.ii_hat
    details["counts_hat"] = dict(gp_result.counts_hat)

    try:
        with span("discretize"):
            if settings.use_bb_discretization:
                discretization = discretize_counts(
                    problem,
                    gp_result.counts_hat,
                    max_nodes=settings.discretization_max_nodes,
                    time_limit_seconds=settings.discretization_time_limit,
                )
            else:
                discretization = round_counts(problem, gp_result.counts_hat)
    except DiscretizationError as error:
        return SolveOutcome(
            method="gp+a",
            status=SolveStatus.INFEASIBLE,
            solution=None,
            runtime_seconds=time.perf_counter() - start,
            lower_bound=problem.weights.alpha * gp_result.ii_hat,
            details={"reason": f"discretisation failed: {error}", **details},
        )
    details["integer_counts"] = dict(discretization.counts)
    details["discretization_nodes"] = discretization.nodes_explored
    details["ii_after_discretization"] = discretization.ii

    with span("allocate"):
        allocation = _allocate_memoized(
            problem, settings.allocator_settings(), dict(discretization.counts)
        )
    details["allocator_iterations"] = allocation.iterations
    details["constraint_relaxation"] = allocation.constraint_relaxation

    if not allocation.success:
        # Not all CUs could be placed within R + T.  The heuristic keeps the
        # partial allocation (the dropped CUs simply degrade the II); this is
        # exactly the regime where GP+A trails MINLP in Figs. 3-5.  Only when
        # a kernel ends up with zero CUs is the problem reported infeasible.
        details["unallocated"] = dict(allocation.unallocated)
        placed_all_kernels = all(
            sum(allocation.counts[name]) >= 1 for name in problem.kernel_names
        )
        if not placed_all_kernels:
            return SolveOutcome(
                method="gp+a",
                status=SolveStatus.INFEASIBLE,
                solution=None,
                runtime_seconds=time.perf_counter() - start,
                lower_bound=problem.weights.alpha * gp_result.ii_hat,
                details={"reason": "a kernel could not receive any CU", **details},
            )

    with span("finalize"):
        solution = AllocationSolution(problem=problem, counts=dict(allocation.counts))
        runtime = time.perf_counter() - start
        outcome = SolveOutcome(
            method="gp+a",
            status=SolveStatus.FEASIBLE,
            solution=solution,
            runtime_seconds=runtime,
            lower_bound=problem.weights.alpha * gp_result.ii_hat,
            details=details,
        )
    return outcome
