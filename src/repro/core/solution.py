"""Allocation solutions and solve outcomes."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping, Sequence

import numpy as np

from ..platform.resources import RESOURCE_KINDS, ResourceVector, sum_resources
from .objective import global_spreading, kernel_spreading
from .problem import AllocationProblem

#: Tolerance (percentage points) applied to capacity checks on solutions.
CAPACITY_TOLERANCE = 1e-6


def json_safe(value: Any) -> Any:
    """Deep-coerce a value into plain JSON-serialisable Python types.

    The vectorized solve path (:mod:`repro.core.arrays`,
    :mod:`repro.gp.minmax`) computes with NumPy, and its scalars/arrays can
    leak into solver metadata: ``np.float64`` hides inside ``float`` checks
    (it subclasses ``float``) but ``np.int64``, ``np.bool_`` and ``ndarray``
    all break ``json.dumps``.  Every :class:`SolveOutcome` runs its payload
    through this coercion at construction so results always serialise.
    """
    if isinstance(value, bool):  # before int: bool is an int subclass
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)  # normalises np.float64 (a float subclass) too
    if value is None or isinstance(value, str):
        return value
    if isinstance(value, Mapping):
        return {str(key): json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [json_safe(item) for item in value]
    if isinstance(value, Enum):
        return json_safe(value.value)
    tolist = getattr(value, "tolist", None)
    if callable(tolist):  # numpy scalars and arrays, without importing numpy
        return json_safe(tolist())
    return value


def _wire_safe(value: Any) -> Any:
    """Replace non-finite floats with ``None`` for strict (RFC 8259) JSON.

    Python's ``json`` would happily emit ``NaN``/``Infinity`` tokens that
    every non-Python consumer of the HTTP API rejects, so the wire format
    encodes them as ``null`` (:meth:`SolveOutcome.from_dict` maps a missing
    or null ``lower_bound`` back to NaN).
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _wire_safe(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_wire_safe(item) for item in value]
    return value


@dataclass(frozen=True)
class _FeasibilityKit:
    """Array view of the per-kernel demands and per-FPGA limits of a problem.

    The exact solvers call :meth:`AllocationSolution.is_feasible` once per
    candidate in their inner loop; evaluating it through per-kernel
    :class:`ResourceVector` arithmetic costs hundreds of object constructions
    per call.  This kit flattens the same numbers into four arrays once per
    problem (memoized on the frozen instance, like
    :func:`repro.core.arrays.problem_arrays`) so the check is three matrix
    comparisons.  :meth:`AllocationSolution.violations` remains the scalar
    reference path -- it produces the human-readable messages and pins the
    semantics the vectorized check must agree with.
    """

    names: tuple[str, ...]
    resource_matrix: np.ndarray  # (K, 4) per-CU demand per resource kind
    bandwidth: np.ndarray  # (K,) per-CU DRAM bandwidth demand
    resource_limits: np.ndarray  # (F, 4) per-FPGA capacity per kind
    bandwidth_limits: np.ndarray  # (F,) per-FPGA bandwidth capacity


def _feasibility_kit(problem: AllocationProblem) -> _FeasibilityKit:
    kit = getattr(problem, "_cached_feasibility_kit", None)
    if kit is None:
        names = problem.kernel_names
        platform = problem.platform
        kit = _FeasibilityKit(
            names=names,
            resource_matrix=np.array(
                [[problem.resource_of(name)[kind] for kind in RESOURCE_KINDS] for name in names],
                dtype=np.float64,
            ).reshape(len(names), len(RESOURCE_KINDS)),
            bandwidth=np.array(
                [problem.bandwidth_of(name) for name in names], dtype=np.float64
            ),
            resource_limits=np.array(
                [
                    [limit[kind] for kind in RESOURCE_KINDS]
                    for limit in platform.fpga_resource_limits()
                ],
                dtype=np.float64,
            ),
            bandwidth_limits=np.array(platform.fpga_bandwidth_limits(), dtype=np.float64),
        )
        object.__setattr__(problem, "_cached_feasibility_kit", kit)
    return kit


@dataclass(frozen=True)
class AllocationSolution:
    """A concrete assignment of compute units to FPGAs.

    Attributes
    ----------
    problem:
        The problem this solution answers.
    counts:
        ``{kernel name: (n_k1, n_k2, ..., n_kF)}`` -- integer CU counts per
        FPGA, in platform FPGA order.
    """

    problem: AllocationProblem
    counts: Mapping[str, tuple[int, ...]]

    def __post_init__(self) -> None:
        num_fpgas = self.problem.num_fpgas
        for name in self.problem.kernel_names:
            if name not in self.counts:
                raise ValueError(f"solution is missing kernel {name!r}")
            per_fpga = self.counts[name]
            if len(per_fpga) != num_fpgas:
                raise ValueError(
                    f"kernel {name!r} has {len(per_fpga)} FPGA entries, expected {num_fpgas}"
                )
            if any(count < 0 for count in per_fpga):
                raise ValueError(f"kernel {name!r} has negative CU counts")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_totals_single_fpga(
        cls, problem: AllocationProblem, totals: Mapping[str, int]
    ) -> "AllocationSolution":
        """Place all CUs of every kernel on FPGA 0 (useful for F=1 problems)."""
        counts = {
            name: tuple([int(totals[name])] + [0] * (problem.num_fpgas - 1))
            for name in problem.kernel_names
        }
        return cls(problem=problem, counts=counts)

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    def total_cus(self, kernel_name: str) -> int:
        """Total CU count ``N_k`` of one kernel across all FPGAs (eq. 3)."""
        return int(sum(self.counts[kernel_name]))

    def totals(self) -> dict[str, int]:
        """``{kernel: N_k}`` for every kernel."""
        return {name: self.total_cus(name) for name in self.problem.kernel_names}

    def execution_time(self, kernel_name: str) -> float:
        """``ET_k = WCET_k / N_k`` (eq. 1)."""
        total = self.total_cus(kernel_name)
        if total <= 0:
            return math.inf
        return self.problem.pipeline[kernel_name].wcet_ms / total

    @property
    def initiation_interval(self) -> float:
        """``II = max_k ET_k`` (eq. 2), in milliseconds."""
        return max(self.execution_time(name) for name in self.problem.kernel_names)

    @property
    def throughput_per_second(self) -> float:
        """Items processed per second (1000 / II[ms])."""
        ii = self.initiation_interval
        return math.inf if ii <= 0 else 1000.0 / ii

    def spreading_of(self, kernel_name: str) -> float:
        """``phi_k`` of one kernel (eq. 4)."""
        return kernel_spreading(self.counts[kernel_name])

    @property
    def spreading(self) -> float:
        """Global spreading ``phi = max_k phi_k``."""
        return global_spreading(self.counts)

    @property
    def objective(self) -> float:
        """Goal function ``g = alpha * II + beta * phi`` (eq. 5)."""
        return self.problem.weights.goal(self.initiation_interval, self.spreading)

    # ------------------------------------------------------------------ #
    # Per-FPGA usage
    # ------------------------------------------------------------------ #
    def fpga_resource_usage(self, fpga_index: int) -> ResourceVector:
        """On-chip resources used on one FPGA."""
        return sum_resources(
            self.problem.resource_of(name) * self.counts[name][fpga_index]
            for name in self.problem.kernel_names
        )

    def fpga_bandwidth_usage(self, fpga_index: int) -> float:
        """DRAM bandwidth used on one FPGA (percent)."""
        return sum(
            self.problem.bandwidth_of(name) * self.counts[name][fpga_index]
            for name in self.problem.kernel_names
        )

    def fpga_kernel_usage(self, fpga_index: int) -> dict[str, ResourceVector]:
        """Per-kernel resource usage on one FPGA (the bars of Figure 6)."""
        usage: dict[str, ResourceVector] = {}
        for name in self.problem.kernel_names:
            count = self.counts[name][fpga_index]
            if count > 0:
                usage[name] = self.problem.resource_of(name) * count
        return usage

    def used_fpgas(self) -> list[int]:
        """Indices of FPGAs hosting at least one CU."""
        return [
            f
            for f in range(self.problem.num_fpgas)
            if any(self.counts[name][f] > 0 for name in self.problem.kernel_names)
        ]

    @property
    def average_utilization(self) -> float:
        """Average over all FPGAs of the binding (max-component) resource use.

        This is the quantity on the x-axis of Figures 3b-5b ("Average
        Resource (%)"): how much of the critical resource each FPGA uses, on
        average, including FPGAs left empty by consolidation.
        """
        per_fpga = [
            self.fpga_resource_usage(f).max_component() for f in range(self.problem.num_fpgas)
        ]
        return sum(per_fpga) / len(per_fpga)

    @property
    def max_utilization(self) -> float:
        """Largest per-FPGA binding resource usage (must be <= the constraint)."""
        return max(
            self.fpga_resource_usage(f).max_component() for f in range(self.problem.num_fpgas)
        )

    # ------------------------------------------------------------------ #
    # Feasibility
    # ------------------------------------------------------------------ #
    def violations(self, tolerance: float = CAPACITY_TOLERANCE) -> list[str]:
        """Human-readable list of violated constraints (empty if feasible)."""
        problems: list[str] = []
        platform = self.problem.platform
        resource_limits = platform.fpga_resource_limits()
        bandwidth_limits = platform.fpga_bandwidth_limits()
        for name in self.problem.kernel_names:
            if self.total_cus(name) < 1:
                problems.append(f"kernel {name!r} has no CUs (constraint 8)")
        for f in range(self.problem.num_fpgas):
            usage = self.fpga_resource_usage(f)
            if usage.exceeds(resource_limits[f], tolerance=tolerance):
                problems.append(
                    f"FPGA {f + 1} resource usage {usage.max_component():.2f}% exceeds "
                    f"limit {resource_limits[f].max_component():.2f}% (constraint 9)"
                )
            bandwidth = self.fpga_bandwidth_usage(f)
            if bandwidth > bandwidth_limits[f] + tolerance:
                problems.append(
                    f"FPGA {f + 1} bandwidth {bandwidth:.2f}% exceeds "
                    f"limit {bandwidth_limits[f]:.2f}% (constraint 10)"
                )
        return problems

    def is_feasible(self, tolerance: float = CAPACITY_TOLERANCE) -> bool:
        """True if the allocation respects every constraint of the problem.

        Vectorized equivalent of ``not self.violations(tolerance=...)`` (the
        scalar loop stays authoritative for the messages); this is the form
        the exact solvers call once per candidate.
        """
        kit = _feasibility_kit(self.problem)
        counts = self.counts_matrix()
        if counts.size == 0:
            return True
        if counts.sum(axis=1).min() < 1.0:
            return False  # some kernel has no CUs (constraint 8)
        usage = counts.T @ kit.resource_matrix  # (F, kinds)
        if np.any(usage > kit.resource_limits + tolerance):
            return False  # constraint 9
        bandwidth = counts.T @ kit.bandwidth  # (F,)
        return not np.any(bandwidth > kit.bandwidth_limits + tolerance)  # constraint 10

    def counts_matrix(self) -> np.ndarray:
        """The CU counts as a dense ``(kernels, FPGAs)`` float matrix."""
        return np.array(
            [self.counts[name] for name in self.problem.kernel_names], dtype=np.float64
        ).reshape(len(self.problem.kernel_names), self.problem.num_fpgas)

    def max_usage_per_fpga(self) -> np.ndarray:
        """Binding (max-component) resource usage of every FPGA, shape (F,)."""
        kit = _feasibility_kit(self.problem)
        counts = self.counts_matrix()
        if counts.size == 0:
            return np.zeros(self.problem.num_fpgas)
        return (counts.T @ kit.resource_matrix).max(axis=1)

    # ------------------------------------------------------------------ #
    # Presentation
    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        lines = [
            f"Allocation of {self.problem.pipeline.name!r} on {self.problem.platform.describe()}",
            f"  II = {self.initiation_interval:.4f} ms, phi = {self.spreading:.3f}, "
            f"objective = {self.objective:.4f}",
        ]
        for f in range(self.problem.num_fpgas):
            hosted = {
                name: self.counts[name][f]
                for name in self.problem.kernel_names
                if self.counts[name][f] > 0
            }
            usage = self.fpga_resource_usage(f)
            lines.append(
                f"  FPGA {f + 1}: {hosted if hosted else 'empty'} "
                f"(max resource {usage.max_component():.1f}%, "
                f"BW {self.fpga_bandwidth_usage(f):.1f}%)"
            )
        return "\n".join(lines)


class SolveStatus(Enum):
    """Outcome classification of an allocation solve."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    ERROR = "error"


@dataclass(frozen=True)
class SolveOutcome:
    """Result of running one allocation method on one problem.

    Construction coerces every field to plain JSON-serialisable Python types
    (see :func:`json_safe`), so an outcome can always be dumped with
    ``json.dumps`` -- a requirement of the result cache of
    :mod:`repro.service`, which persists outcomes by content fingerprint.
    """

    method: str
    status: SolveStatus
    solution: AllocationSolution | None
    runtime_seconds: float
    lower_bound: float = math.nan
    nodes_explored: int = 0
    details: Mapping[str, object] = field(default_factory=dict)
    #: Work counters of the solve (LP solves, probes, packer search nodes,
    #: memo hits, ...) -- additive across solves, so services can aggregate
    #: them and performance tests can assert per-solve work budgets.
    counters: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "runtime_seconds", float(self.runtime_seconds))
        object.__setattr__(self, "lower_bound", float(self.lower_bound))
        object.__setattr__(self, "nodes_explored", int(self.nodes_explored))
        object.__setattr__(self, "details", json_safe(self.details))
        object.__setattr__(self, "counters", json_safe(self.counters))

    # ------------------------------------------------------------------ #
    # JSON round trip
    # ------------------------------------------------------------------ #
    def to_dict(self, include_problem: bool = False) -> dict[str, Any]:
        """JSON-compatible dictionary, invertible by :meth:`from_dict`.

        The problem itself is omitted unless ``include_problem`` is set: the
        service cache keys payloads by a fingerprint of the request, so the
        caller always holds an equivalent problem to re-bind the solution to.
        Non-finite floats (the default ``lower_bound`` is NaN) are encoded as
        ``null`` so the document is strict RFC 8259 JSON -- parseable by any
        client, not just Python's ``NaN``-tolerant ``json`` module.
        """
        payload: dict[str, Any] = {
            "method": self.method,
            "status": self.status.value,
            "runtime_seconds": self.runtime_seconds,
            "lower_bound": _wire_safe(self.lower_bound),
            "nodes_explored": self.nodes_explored,
            "details": _wire_safe(self.details),  # already json_safe from __post_init__
            "counters": _wire_safe(self.counters),
            "solution": (
                {"counts": {name: list(counts) for name, counts in self.solution.counts.items()}}
                if self.solution is not None
                else None
            ),
        }
        if include_problem:
            if self.solution is None:
                raise ValueError(
                    "cannot embed the problem: this outcome has no solution; "
                    "serialise the problem separately with problem_to_dict"
                )
            from ..workloads.serialization import problem_to_dict

            payload["problem"] = problem_to_dict(self.solution.problem)
        return payload

    @classmethod
    def from_dict(
        cls, payload: Mapping[str, Any], problem: AllocationProblem | None = None
    ) -> "SolveOutcome":
        """Rebuild an outcome from :meth:`to_dict` output.

        ``problem`` supplies the problem to bind the solution to; when absent
        the payload must embed one (``to_dict(include_problem=True)``).
        """
        if problem is None and "problem" in payload:
            from ..workloads.serialization import problem_from_dict

            problem = problem_from_dict(payload["problem"])
        solution_payload = payload.get("solution")
        solution: AllocationSolution | None = None
        if solution_payload is not None:
            if problem is None:
                raise ValueError(
                    "payload carries a solution but no problem to bind it to; "
                    "pass problem= or serialise with include_problem=True"
                )
            solution = solution_from_assignment(problem, solution_payload["counts"])
        try:
            status = SolveStatus(payload["status"])
        except (KeyError, ValueError) as error:
            raise ValueError(f"invalid outcome status: {error}") from error
        lower_bound = payload.get("lower_bound")
        return cls(
            method=str(payload["method"]),
            status=status,
            solution=solution,
            runtime_seconds=float(payload["runtime_seconds"]),
            lower_bound=math.nan if lower_bound is None else float(lower_bound),
            nodes_explored=int(payload.get("nodes_explored", 0)),
            details=dict(payload.get("details", {})),
            counters=dict(payload.get("counters", {})),
        )

    @property
    def succeeded(self) -> bool:
        return self.solution is not None and self.status in (
            SolveStatus.OPTIMAL,
            SolveStatus.FEASIBLE,
        )

    @property
    def initiation_interval(self) -> float:
        return self.solution.initiation_interval if self.solution else math.inf

    @property
    def objective(self) -> float:
        return self.solution.objective if self.solution else math.inf

    def summary(self) -> str:
        if not self.succeeded:
            return f"{self.method}: {self.status.value} ({self.runtime_seconds:.3f} s)"
        assert self.solution is not None
        return (
            f"{self.method}: II={self.solution.initiation_interval:.3f} ms, "
            f"phi={self.solution.spreading:.3f}, avg util="
            f"{self.solution.average_utilization:.1f}%, "
            f"{self.runtime_seconds:.3f} s"
        )


def solution_from_assignment(
    problem: AllocationProblem, assignment: Mapping[str, Sequence[int]]
) -> AllocationSolution:
    """Build a solution from any mapping of per-FPGA CU count sequences."""
    counts = {name: tuple(int(c) for c in assignment[name]) for name in problem.kernel_names}
    return AllocationSolution(problem=problem, counts=counts)
