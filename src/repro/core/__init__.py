"""Core allocation flow: the paper's problem formulation, heuristic and exact solvers."""

from .arrays import ProblemArrays, build_problem_arrays, problem_arrays
from .allocator import (
    AllocatorResult,
    AllocatorSettings,
    GreedyAllocator,
    allocate_cus,
    first_fit_decreasing_allocate,
)
from .discretize import (
    DiscretizationError,
    DiscretizationResult,
    discretization_cache_clear,
    discretization_cache_info,
    discretize_counts,
    round_counts,
)
from .exact import (
    ExactSettings,
    candidate_ii_values,
    solve_exact_min_ii,
    solve_exact_weighted,
)
from .gp_step import (
    GPStepResult,
    build_gp_model,
    build_minmax_problem,
    build_vectorized_minmax,
    solve_gp_step,
)
from .heuristic import HeuristicSettings, solve_gp_a
from .objective import (
    ObjectiveWeights,
    PAPER_WEIGHTS,
    balanced_weights,
    default_weights,
    global_spreading,
    initiation_interval,
    kernel_spreading,
)
from .problem import AllocationProblem, CapacityDimension
from .relaxations import AllocationRelaxation, variable_name
from .solution import (
    AllocationSolution,
    SolveOutcome,
    SolveStatus,
    solution_from_assignment,
)
from .solvers import METHODS, solve, solver_for
from .validate import ValidationReport, check_outcome_consistency, compare_methods, validate_solution

__all__ = [
    "AllocationProblem",
    "AllocationRelaxation",
    "AllocationSolution",
    "AllocatorResult",
    "AllocatorSettings",
    "CapacityDimension",
    "DiscretizationError",
    "DiscretizationResult",
    "ExactSettings",
    "GPStepResult",
    "GreedyAllocator",
    "ProblemArrays",
    "HeuristicSettings",
    "METHODS",
    "ObjectiveWeights",
    "PAPER_WEIGHTS",
    "SolveOutcome",
    "SolveStatus",
    "ValidationReport",
    "allocate_cus",
    "balanced_weights",
    "build_gp_model",
    "build_minmax_problem",
    "build_problem_arrays",
    "build_vectorized_minmax",
    "candidate_ii_values",
    "check_outcome_consistency",
    "compare_methods",
    "default_weights",
    "discretization_cache_clear",
    "discretization_cache_info",
    "discretize_counts",
    "first_fit_decreasing_allocate",
    "global_spreading",
    "initiation_interval",
    "kernel_spreading",
    "round_counts",
    "problem_arrays",
    "solution_from_assignment",
    "solve",
    "solve_exact_min_ii",
    "solve_exact_weighted",
    "solve_gp_a",
    "solve_gp_step",
    "solver_for",
    "validate_solution",
    "variable_name",
]
