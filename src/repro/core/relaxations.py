"""Convex node relaxations for the exact (MINLP) allocation solver.

At every branch-and-bound node the integer variables ``n_kf`` have box bounds
``l <= n <= u``.  The continuous relaxation of the paper's problem
(eqs. 5-10) restricted to that box is convex once the concave spreading terms
``n/(1+n)`` are replaced by their secants over ``[l, u]`` (see
:mod:`repro.minlp.secant`):

* for a *fixed* initiation interval ``II`` the remaining problem is a linear
  program (minimise the relaxed spreading ``phi``),
* the optimal value ``g(II) = alpha * II + beta * phi*(II)`` is convex in
  ``II`` (LP value convex in its right-hand side composed with the convex,
  coordinate-wise decreasing coverage requirement ``max(1, WCET_k / II)``),

so the node bound is obtained by a scalar convex search over ``II`` with one
LP solve (scipy ``linprog``/HiGHS) per probe.

The hot path is engineered to keep both the per-LP cost and the LP count per
node low:

* **Incremental assembly** -- the constraint matrix is built once per
  relaxation instance; per node only the secant rows (bound-box-dependent)
  and the variable bounds are patched, and per probe only the coverage
  right-hand side (II-dependent).  Nothing is re-allocated in the loop.
* **One-LP feasibility** -- the smallest feasible II of a box is the optimum
  of a single auxiliary LP (maximise ``t`` subject to
  ``sum_f n_kf >= WCET_k * t``), replacing the former 60-step feasibility
  bisection; the result is memoized per bound box so sibling nodes sharing a
  box never recompute it.
* **Derivative-bracketed probing** -- the convex goal is minimised by
  bracketing the sign change of its derivative, read off the coverage-row
  duals of each probe LP, with a guarded regula-falsi step; this replaces the
  fixed ~80-iteration golden-section search and typically needs an order of
  magnitude fewer probes.  When a parent node's relaxation is available its
  optimal II warm-starts the bracket.

Every LP solve, probe and memo hit is counted (:meth:`counters`), so callers
can assert LP-solves-per-node budgets end to end.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Mapping

import numpy as np
from scipy import optimize

from ..minlp.bounds import VariableBounds
from ..minlp.branch_and_bound import RelaxationResult
from ..obs.trace import span
from .objective import ObjectiveWeights
from .problem import AllocationProblem

class _HighsBindings:
    """Uniform facade over the HiGHS python bindings.

    The persistent backend runs on whichever bindings the host offers: the
    ``highspy`` wheel when installed, otherwise scipy's vendored
    ``scipy.optimize._highspy`` core (the same pybind11 module scipy's
    ``linprog(method="highs")`` is built on).  Only the API surface common to
    both is used -- notably the per-row/index-set bound setters rather than
    the ``...ByRange`` conveniences the vendored build omits.
    """

    def __init__(self, module, solver_factory):
        self.new_solver = solver_factory
        self.inf = module.kHighsInf
        self.HighsLp = module.HighsLp
        self.MatrixFormat = module.MatrixFormat
        self.HighsStatus = module.HighsStatus
        self.HighsModelStatus = module.HighsModelStatus


def _load_highs_bindings() -> "_HighsBindings | None":
    try:  # pragma: no cover - exercised only where highspy is installed
        import highspy

        return _HighsBindings(highspy, highspy.Highs)
    except ImportError:
        pass
    try:  # scipy >= 1.15 vendors the pybind11 HiGHS core
        from scipy.optimize._highspy import _core as vendored

        return _HighsBindings(vendored, vendored._Highs)
    except Exception:  # pragma: no cover - ancient scipy without the module
        return None


_HIGHS_BINDINGS = _load_highs_bindings()

#: Safety margin subtracted from node bounds so that the inexactness of the
#: scalar search can never prune the true optimum.
BOUND_SAFETY = 1e-7

#: Entries kept in the per-bound-box minimum-feasible-II memo.
_II_CACHE_LIMIT = 4096


def highspy_available() -> bool:
    """Whether the persistent HiGHS LP backend can be used in this process."""
    return _HIGHS_BINDINGS is not None


class _HighsBackendError(RuntimeError):
    """Raised when the persistent HiGHS backend fails; callers fall back."""


class _PersistentHighsLP:
    """One HiGHS model kept hot across solves (rows are ``A x <= b``).

    ``scipy.optimize.linprog`` re-parses the constraint system on every call,
    which is ~40 % of the per-LP time of the incremental relaxation.  This
    wrapper passes the model to HiGHS once and afterwards only hot-swaps the
    row right-hand sides, the variable bounds and (for the goal LP) the
    secant coefficients, so repeated solves skip the assembly entirely.
    """

    def __init__(self, cost: np.ndarray, matrix: np.ndarray, rhs: np.ndarray, bounds: np.ndarray):
        binding = _HIGHS_BINDINGS
        if binding is None:  # pragma: no cover - guarded by the caller
            raise _HighsBackendError("no HiGHS bindings are available")
        num_rows, num_cols = matrix.shape
        self._num_rows = num_rows
        self._num_cols = num_cols
        self._binding = binding
        self._col_index = np.arange(num_cols, dtype=np.int32)
        self._last_rhs: "np.ndarray | None" = None
        self._last_bounds: "np.ndarray | None" = None
        try:
            solver = binding.new_solver()
            solver.setOptionValue("output_flag", False)
            # These LPs are tiny (tens of rows); presolve costs more than it
            # saves and discards the basis that makes re-solves after an RHS
            # hot-swap nearly free.
            solver.setOptionValue("presolve", "off")
            inf = binding.inf
            lp = binding.HighsLp()
            lp.num_col_ = num_cols
            lp.num_row_ = num_rows
            lp.col_cost_ = np.asarray(cost, dtype=np.float64)
            lp.col_lower_ = np.asarray(bounds[:, 0], dtype=np.float64)
            lp.col_upper_ = np.asarray(bounds[:, 1], dtype=np.float64)
            lp.row_lower_ = np.full(num_rows, -inf)
            lp.row_upper_ = np.asarray(rhs, dtype=np.float64)
            lp.a_matrix_.format_ = binding.MatrixFormat.kColwise
            # Column-wise sparse assembly, vectorized: Fortran-order nonzero
            # enumerates the entries column by column, rows ascending.
            col_ids, row_ids = np.nonzero(matrix.T)
            lp.a_matrix_.start_ = np.concatenate(
                ([0], np.cumsum(np.bincount(col_ids, minlength=num_cols)))
            ).astype(np.int32)
            lp.a_matrix_.index_ = row_ids.astype(np.int32)
            lp.a_matrix_.value_ = matrix[row_ids, col_ids]
            status = solver.passModel(lp)
            if status == binding.HighsStatus.kError:
                raise _HighsBackendError("HiGHS rejected the LP model")
            self._solver = solver
            self._inf = inf
            self._last_rhs = np.asarray(rhs, dtype=np.float64).copy()
            self._last_bounds = np.asarray(bounds, dtype=np.float64).copy()
        except _HighsBackendError:
            raise
        except Exception as error:  # pragma: no cover - API drift guard
            raise _HighsBackendError(f"failed to build the HiGHS model: {error}") from error

    def sync(self, rhs: np.ndarray, bounds: np.ndarray) -> None:
        """Push the current right-hand sides and variable bounds.

        Uses the API surface common to the highspy wheel and scipy's vendored
        core: the set-based column-bound setter exists in both, but row bounds
        are only settable one row at a time, so changed rows are detected
        against the last pushed right-hand side and patched individually.
        """
        try:
            rhs = np.asarray(rhs, dtype=np.float64)
            if self._last_rhs is None:
                changed = range(self._num_rows)
            else:
                changed = np.nonzero(rhs != self._last_rhs)[0]
            for row in changed:
                self._solver.changeRowBounds(int(row), -self._inf, float(rhs[row]))
            self._last_rhs = rhs.copy()
            bounds = np.asarray(bounds, dtype=np.float64)
            if self._last_bounds is None or not np.array_equal(bounds, self._last_bounds):
                self._solver.changeColsBounds(
                    self._num_cols,
                    self._col_index,
                    np.ascontiguousarray(bounds[:, 0]),
                    np.ascontiguousarray(bounds[:, 1]),
                )
                self._last_bounds = bounds.copy()
        except Exception as error:  # pragma: no cover - API drift guard
            raise _HighsBackendError(f"failed to update the HiGHS model: {error}") from error

    def set_coefficients(self, rows: np.ndarray, cols: np.ndarray, values: np.ndarray) -> None:
        """Hot-swap individual matrix coefficients (the secant rows)."""
        try:
            for row, col, value in zip(rows, cols, values):
                self._solver.changeCoeff(int(row), int(col), float(value))
        except Exception as error:  # pragma: no cover - API drift guard
            raise _HighsBackendError(f"failed to patch HiGHS coefficients: {error}") from error

    def solve(self) -> "tuple[np.ndarray, np.ndarray] | None":
        """Solve; returns ``(x, row_duals)`` or ``None`` when not optimal."""
        try:
            self._solver.run()
            if self._solver.getModelStatus() != self._binding.HighsModelStatus.kOptimal:
                return None
            solution = self._solver.getSolution()
            return (
                np.asarray(solution.col_value, dtype=np.float64),
                np.asarray(solution.row_dual, dtype=np.float64),
            )
        except Exception as error:  # pragma: no cover - API drift guard
            raise _HighsBackendError(f"HiGHS solve failed: {error}") from error


def variable_name(kernel: str, fpga: int) -> str:
    """Canonical name of the integer variable ``n_{k,f}`` (0-based FPGA)."""
    return f"{kernel}|f{fpga}"


def split_variable_name(name: str) -> tuple[str, int]:
    """Inverse of :func:`variable_name`."""
    kernel, _, fpga = name.rpartition("|f")
    return kernel, int(fpga)


class _RelaxationModel:
    """Preassembled LP data shared by every node of one relaxation.

    Holds two constraint systems over the flat variable vector
    ``[n_11, ..., n_KF, extra]``:

    * the *goal LP* (``extra`` = phi): coverage rows (RHS patched per II
      probe), capacity rows (static), secant rows (coefficients patched per
      bound box) and symmetry rows (static);
    * the *feasibility LP* (``extra`` = t): fully static rows, only variable
      bounds are patched per box.
    """

    def __init__(self, relaxation: "AllocationRelaxation"):
        problem = relaxation.problem
        self.names = problem.kernel_names
        self.num_fpgas = problem.num_fpgas
        num_k = len(self.names)
        num_f = self.num_fpgas
        num_n = num_k * num_f
        self.num_k, self.num_n = num_k, num_n
        self.var_names = tuple(
            variable_name(kernel, fpga) for kernel in self.names for fpga in range(num_f)
        )
        self.wcet = np.array([problem.wcet[name] for name in self.names])
        self.ii_high = float(self.wcet.max())

        dimensions = problem.capacity_dimensions()
        weights = np.array(
            [[dim.weights.get(name, 0.0) for name in self.names] for dim in dimensions]
        ).reshape(len(dimensions), num_k)
        # Per-FPGA capacity rows: one row per (dimension, FPGA).  On a
        # heterogeneous platform the right-hand side varies per class; the
        # one-class case degenerates to the uniform cap repeated F times.
        fpga_capacities = np.array(
            [dim.fpga_capacities(num_f) for dim in dimensions]
        ).reshape(len(dimensions), num_f)

        symmetry_dim = relaxation._symmetry_dimension() if (
            relaxation.symmetry_breaking and num_f > 1
        ) else None
        sym_weights = (
            np.array([symmetry_dim.weights.get(name, 0.0) for name in self.names])
            if symmetry_dim is not None
            else None
        )
        # FPGAs are interchangeable only when identically sized, so the
        # symmetry-breaking ordering applies to adjacent pairs with equal
        # capacity columns (platform FPGA order is class-major, so every
        # class -- and every run of equal-capacity classes -- is contiguous;
        # capacity equality also covers distinct classes with equal caps,
        # e.g. the zero-skew endpoint of the skew sweep).
        sym_pairs = (
            [
                f
                for f in range(num_f - 1)
                if np.array_equal(fpga_capacities[:, f], fpga_capacities[:, f + 1])
            ]
            if sym_weights is not None
            else []
        )
        num_sym = len(sym_pairs)

        def static_rows(matrix: np.ndarray, offset: int) -> int:
            """Fill capacity + symmetry rows into ``matrix`` starting at ``offset``."""
            for dim_index in range(len(dimensions)):
                for fpga in range(num_f):
                    matrix[offset, fpga:num_n:num_f] = weights[dim_index]
                    offset += 1
            if sym_weights is not None:
                for fpga in sym_pairs:
                    matrix[offset, fpga:num_n:num_f] -= sym_weights
                    matrix[offset, fpga + 1 : num_n : num_f] += sym_weights
                    offset += 1
            return offset

        num_cap = len(dimensions) * num_f
        self.num_cap = num_cap
        self.sym_pairs = tuple(sym_pairs)
        self.fpga_capacities = fpga_capacities

        # --- goal LP: [n..., phi], rows: coverage | capacity | symmetry | secant
        goal_rows = num_k + num_cap + num_sym + num_k
        self.goal_a = np.zeros((goal_rows, num_n + 1))
        self.goal_b = np.zeros(goal_rows)
        for k in range(num_k):
            self.goal_a[k, k * num_f : (k + 1) * num_f] = -1.0
        end = static_rows(self.goal_a, num_k)
        self.goal_b[num_k : num_k + num_cap] = fpga_capacities.reshape(-1)
        self.secant_offset = end
        secant_rows = np.repeat(np.arange(num_k), num_f) + end
        self.secant_index = (secant_rows, np.arange(num_n))
        self.goal_a[end : end + num_k, -1] = -1.0
        self.goal_cost = np.zeros(num_n + 1)
        self.goal_cost[-1] = 1.0
        self.goal_bounds = np.zeros((num_n + 1, 2))
        self.goal_bounds[-1] = (0.0, float(num_f * num_k))

        # --- feasibility LP: [n..., t], rows: coverage-t | min-one | capacity | symmetry
        feas_rows = 2 * num_k + num_cap + num_sym
        self.feas_a = np.zeros((feas_rows, num_n + 1))
        self.feas_b = np.zeros(feas_rows)
        for k in range(num_k):
            self.feas_a[k, k * num_f : (k + 1) * num_f] = -1.0
            self.feas_a[k, -1] = self.wcet[k]
            self.feas_a[num_k + k, k * num_f : (k + 1) * num_f] = -1.0
            self.feas_b[num_k + k] = -1.0
        static_rows(self.feas_a, 2 * num_k)
        self.feas_b[2 * num_k : 2 * num_k + num_cap] = fpga_capacities.reshape(-1)
        self.feas_cost = np.zeros(num_n + 1)
        self.feas_cost[-1] = -1.0  # maximise t
        self.feas_bounds = np.zeros((num_n + 1, 2))
        self.feas_bounds[-1] = (0.0, np.inf)


@dataclass(frozen=True)
class AllocationRelaxation:
    """LP-based convex relaxation of the allocation MINLP over a bound box.

    ``lp_backend`` selects how the patched-in-place LPs are solved:
    ``"auto"`` uses one persistent HiGHS model per LP (built once, RHS /
    bounds / secant coefficients hot-swapped) when HiGHS bindings are
    available -- the ``highspy`` wheel or scipy's vendored core -- and falls
    back to ``scipy.optimize.linprog`` otherwise; ``"scipy"`` and
    ``"highs"`` force a specific backend.  Both backends solve the same
    arrays, so relaxation values are identical; the persistent model skips
    scipy's per-call model parse (~40 % of per-LP time).
    """

    problem: AllocationProblem
    weights: ObjectiveWeights
    symmetry_breaking: bool = True
    ii_search_tolerance: float = 1e-6
    lp_backend: str = "auto"

    # ------------------------------------------------------------------ #
    # Cached state on the frozen instance
    # ------------------------------------------------------------------ #
    @property
    def _model(self) -> _RelaxationModel:
        model = self.__dict__.get("_cached_model")
        if model is None:
            model = _RelaxationModel(self)
            object.__setattr__(self, "_cached_model", model)
        return model

    @property
    def _counters(self) -> dict[str, int]:
        counters = self.__dict__.get("_cached_counters")
        if counters is None:
            counters = {
                "lp_solves": 0,
                "feasibility_lps": 0,
                "probe_lps": 0,
                "node_solves": 0,
                "ii_cache_hits": 0,
                "ii_cache_misses": 0,
                "lp_batched_solves": 0,
            }
            object.__setattr__(self, "_cached_counters", counters)
        return counters

    @property
    def _ii_cache(self) -> dict[tuple, tuple]:
        cache = self.__dict__.get("_cached_ii_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_cached_ii_cache", cache)
        return cache

    def counters(self) -> dict[str, int]:
        """Snapshot of the instrumentation counters."""
        return dict(self._counters)

    # ------------------------------------------------------------------ #
    # LP backend (persistent HiGHS when available, scipy otherwise)
    # ------------------------------------------------------------------ #
    @property
    def active_lp_backend(self) -> str:
        """The backend actually in use: ``"highs"`` or ``"scipy"``.

        ``lp_backend="auto"`` honours the ``REPRO_LP_BACKEND`` environment
        variable (``"scipy"`` or ``"highs"``) before probing for ``highspy``
        -- the lever for pinning byte-reproducible scipy vertex choices (the
        recorded homogeneous baseline) on hosts that have highspy installed.
        """
        backend = self.lp_backend
        if backend == "auto":
            backend = os.environ.get("REPRO_LP_BACKEND") or "auto"
        if backend == "scipy":
            return "scipy"
        if backend in ("auto", "highs"):
            if self.__dict__.get("_cached_highs_failed"):
                return "scipy"
            if highspy_available():
                return "highs"
            if backend == "highs":
                raise RuntimeError(
                    "lp_backend='highs' requested but no HiGHS bindings are available"
                )
            return "scipy"
        raise ValueError(f"unknown lp_backend {backend!r}")

    def _highs_lp(self, which: str) -> "_PersistentHighsLP | None":
        """The persistent goal/feasibility model, or ``None`` on fallback."""
        if self.active_lp_backend != "highs":
            return None
        attribute = f"_cached_highs_{which}"
        lp = self.__dict__.get(attribute)
        if lp is None:
            model = self._model
            try:
                if which == "goal":
                    lp = _PersistentHighsLP(
                        model.goal_cost, model.goal_a, model.goal_b, model.goal_bounds
                    )
                else:
                    lp = _PersistentHighsLP(
                        model.feas_cost, model.feas_a, model.feas_b, model.feas_bounds
                    )
            except _HighsBackendError:
                object.__setattr__(self, "_cached_highs_failed", True)
                return None
            object.__setattr__(self, attribute, lp)
        return lp

    def _drop_highs(self) -> None:
        """Forget the persistent models and fall back to scipy permanently."""
        object.__setattr__(self, "_cached_highs_failed", True)
        for which in ("goal", "feas"):
            self.__dict__.pop(f"_cached_highs_{which}", None)

    # ------------------------------------------------------------------ #
    # Public entry point (plugs into the branch-and-bound engine)
    # ------------------------------------------------------------------ #
    def solve(
        self, bounds: VariableBounds, parent: RelaxationResult | None = None
    ) -> RelaxationResult:
        """Lower bound + fractional solution for a node's box bounds.

        ``parent`` (the enclosing node's relaxation, passed by the
        branch-and-bound engine) warm-starts the scalar II search.
        """
        with span("relaxation"):
            model = self._model
            counters = self._counters
            counters["node_solves"] += 1
            lower = np.array([bounds.lower(name) for name in model.var_names], dtype=float)
            upper = np.array([bounds.upper(name) for name in model.var_names], dtype=float)

            ii_min, feasible_point = self._min_feasible_ii(lower, upper)
            if ii_min is None:
                return RelaxationResult.infeasible()
            ii_high = model.ii_high

            if not self.weights.spreading_enabled:
                # Pure II objective: phi is irrelevant and the feasibility
                # LP's point already satisfies coverage at ii_min -- zero
                # further LPs.
                return RelaxationResult(
                    feasible=True,
                    objective=self.weights.alpha * ii_min - BOUND_SAFETY,
                    solution=self._to_mapping(feasible_point),
                    metadata={"best_ii": ii_min},
                )

            self._patch_box(lower, upper)
            evaluations: dict[float, tuple[np.ndarray, float, float]] = {}

            def probe(ii: float) -> "tuple[float, float] | None":
                solved = self._solve_goal_lp(ii)
                if solved is None:
                    return None
                values, phi, derivative = solved
                evaluations[ii] = (values, phi, derivative)
                return self.weights.goal(ii, phi), derivative

            self._bracket_minimum(probe, ii_min, ii_high, parent)
            if not evaluations:
                return RelaxationResult.infeasible()
            best_ii = min(
                evaluations, key=lambda ii: self.weights.goal(ii, evaluations[ii][1])
            )
            values, phi, _ = evaluations[best_ii]
            return RelaxationResult(
                feasible=True,
                objective=self.weights.goal(best_ii, phi) - BOUND_SAFETY,
                solution=self._to_mapping(values),
                metadata={"best_ii": best_ii},
            )

    # ------------------------------------------------------------------ #
    # Minimum feasible II (one LP, memoized per bound box)
    # ------------------------------------------------------------------ #
    def _min_feasible_ii(
        self, lower: np.ndarray, upper: np.ndarray
    ) -> "tuple[float, np.ndarray] | tuple[None, None]":
        """Smallest II for which the box admits a feasible point, plus one
        such point; ``(None, None)`` if the box is infeasible outright."""
        model = self._model
        counters = self._counters
        cache = self._ii_cache
        key = (lower.tobytes(), upper.tobytes())
        cached = cache.get(key)
        if cached is not None:
            counters["ii_cache_hits"] += 1
            return cached
        counters["ii_cache_misses"] += 1

        result: "tuple[float, np.ndarray] | tuple[None, None]"
        # Cheap screen: every kernel must be able to reach one CU in total.
        totals_upper = upper.reshape(model.num_k, model.num_fpgas).sum(axis=1)
        if np.any(totals_upper < 1.0 - 1e-9):
            result = (None, None)
        else:
            ii_floor = float(np.max(model.wcet / np.maximum(totals_upper, 1e-12)))
            ii_floor = max(ii_floor, 1e-9)
            model.feas_bounds[: model.num_n, 0] = lower
            model.feas_bounds[: model.num_n, 1] = upper
            counters["lp_solves"] += 1
            counters["feasibility_lps"] += 1
            solved = self._solve_lp("feas", model.feas_cost, model.feas_a, model.feas_b, model.feas_bounds)
            if solved is None:
                result = (None, None)
            else:
                values, _ = solved
                t_value = float(values[-1])
                if t_value <= 0.0:
                    result = (None, None)
                else:
                    ii_min = max(ii_floor, 1.0 / t_value)
                    result = (min(ii_min, model.ii_high), values[: model.num_n])

        if len(cache) >= _II_CACHE_LIMIT:
            cache.pop(next(iter(cache)))
        cache[key] = result
        return result

    # ------------------------------------------------------------------ #
    # Scalar search: derivative-sign bracketing of the convex goal
    # ------------------------------------------------------------------ #
    def _bracket_minimum(
        self,
        probe,
        ii_low: float,
        ii_high: float,
        parent: RelaxationResult | None,
    ) -> float | None:
        """Minimise the convex goal over ``[ii_low, ii_high]``.

        Each probe returns ``(goal, derivative)``; the derivative comes from
        the LP duals, so bracketing its sign change costs one LP per step
        (versus two-probes-per-step golden sectioning without derivatives).
        The parent node's optimal II, when inside the interval, tightens the
        initial bracket.
        """
        alpha, beta = self.weights.alpha, self.weights.beta
        tolerance = self.ii_search_tolerance

        def model_minimizer(ii: float, derivative: float) -> float:
            """Stationary point of the local model of the goal around a probe.

            The LP value ``phi*`` is piecewise linear in ``s = 1/II``; the
            probe's dual derivative identifies the local slope ``c`` of that
            piece (``g' = alpha - beta * c / II^2``), whose piece-wide model
            ``alpha * II + beta * (const + c / II)`` is minimised at
            ``sqrt(beta * c / alpha)``.  Once the bracket reaches the optimal
            piece this lands on the exact minimiser, so the search converges
            in a handful of probes instead of a fixed golden-section budget.
            """
            c = (alpha - derivative) * ii * ii / beta
            if c <= 0.0 or alpha <= 0.0:
                return math.nan
            return math.sqrt(beta * c / alpha)

        probed_low = probe(ii_low)
        if probed_low is None:
            # The feasibility LP and the goal LP disagree within solver
            # tolerance; nudge upward once before declaring infeasibility.
            ii_low = min(ii_low * (1.0 + 1e-9) + 1e-12, ii_high)
            probed_low = probe(ii_low)
            if probed_low is None:
                return None
        goal_low, derivative_low = probed_low
        if derivative_low >= 0.0 or ii_high <= ii_low * (1 + 1e-12):
            return ii_low  # convex goal: nondecreasing derivative

        lo, d_lo = ii_low, derivative_low
        # At ii_high every coverage requirement is the constant 1, so the
        # goal's derivative is exactly alpha > 0 -- no LP needed.
        hi = ii_high
        candidate = model_minimizer(lo, d_lo)

        warm = parent.metadata.get("best_ii") if parent is not None else None
        if warm is not None and lo < warm < hi:
            candidate = float(warm)

        best = lo
        for _ in range(80):
            if (hi - lo) <= tolerance * max(1.0, hi):
                break
            width = hi - lo
            margin = 1e-2 * width
            if not math.isfinite(candidate) or not (lo + margin <= candidate <= hi - margin):
                candidate = 0.5 * (lo + hi)
            probed = probe(candidate)
            if probed is None:  # pragma: no cover - should stay feasible
                break
            goal_value, derivative = probed
            if derivative >= 0.0:
                hi = candidate
            else:
                lo, d_lo = candidate, derivative
            best = candidate
            # Certified-enough minimum: for a convex goal the error of the
            # best probe is at most |g'| times the bracket width.
            if abs(derivative) * (hi - lo) <= tolerance * max(1.0, abs(goal_value)):
                break
            candidate = model_minimizer(best, derivative)
        return best

    # ------------------------------------------------------------------ #
    # The fixed-II linear program (patched, never rebuilt)
    # ------------------------------------------------------------------ #
    def _patch_box(self, lower: np.ndarray, upper: np.ndarray) -> None:
        """Write a node's secant rows and variable bounds into the goal LP."""
        model = self._model
        # Vectorized chords of the concave spreading term n/(1+n) on [l, u].
        h_lower = lower / (1.0 + lower)
        h_upper = upper / (1.0 + upper)
        widths = upper - lower
        with np.errstate(divide="ignore", invalid="ignore"):
            slopes = np.where(widths > 0.0, (h_upper - h_lower) / widths, 0.0)
        intercepts = h_lower - slopes * lower
        model.goal_a[model.secant_index] = slopes
        offset = model.secant_offset
        model.goal_b[offset : offset + model.num_k] = -intercepts.reshape(
            model.num_k, model.num_fpgas
        ).sum(axis=1)
        model.goal_bounds[: model.num_n, 0] = lower
        model.goal_bounds[: model.num_n, 1] = upper
        goal_lp = self._highs_lp("goal")
        if goal_lp is not None:
            try:
                goal_lp.set_coefficients(model.secant_index[0], model.secant_index[1], slopes)
            except _HighsBackendError:
                self._drop_highs()

    def _solve_lp(
        self,
        which: str,
        cost: np.ndarray,
        matrix: np.ndarray,
        rhs: np.ndarray,
        bounds: np.ndarray,
    ) -> "tuple[np.ndarray, np.ndarray] | None":
        """Solve one patched LP; returns ``(x, row_duals)`` or ``None``.

        Routes through the persistent HiGHS model when active (RHS and
        variable bounds are re-synced; the matrix was already patched via
        :meth:`_patch_box`) and through ``scipy.optimize.linprog`` otherwise.
        Any HiGHS API failure permanently drops to the scipy path.
        """
        lp = self._highs_lp(which)
        if lp is not None:
            try:
                lp.sync(rhs, bounds)
                solved = lp.solve()
            except _HighsBackendError:
                self._drop_highs()
            else:
                return solved
        result = optimize.linprog(
            c=cost, A_ub=matrix, b_ub=rhs, bounds=bounds, method="highs"
        )
        if not result.success:
            return None
        return result.x, np.asarray(result.ineqlin.marginals, dtype=np.float64)

    def _solve_goal_lp(self, ii: float) -> "tuple[np.ndarray, float, float] | None":
        """Minimise relaxed spreading at fixed II; ``None`` if infeasible.

        Returns the variable values, phi and the goal's derivative in II at
        this probe (from the coverage-row duals).
        """
        model = self._model
        counters = self._counters
        requirements = np.maximum(1.0, model.wcet / ii)
        model.goal_b[: model.num_k] = -requirements
        counters["lp_solves"] += 1
        counters["probe_lps"] += 1
        solved = self._solve_lp("goal", model.goal_cost, model.goal_a, model.goal_b, model.goal_bounds)
        if solved is None:
            return None
        full_values, duals = solved
        values = full_values[: model.num_n]
        phi = float(full_values[-1])
        # d(goal)/d(II) = alpha + beta * sum_k marginal_k * WCET_k / II^2 over
        # the kernels whose coverage requirement is still WCET_k / II > 1
        # (marginals of A_ub x <= b_ub are nonpositive, so the sum is <= 0;
        # HiGHS row duals follow the same convention, being what scipy's
        # "highs" method reports as the marginals).
        marginals = duals[: model.num_k]
        active = model.wcet > ii
        derivative = self.weights.alpha + self.weights.beta * float(
            np.sum(marginals[active] * model.wcet[active])
        ) / (ii * ii)
        return values, phi, derivative

    def _symmetry_dimension(self):
        """Dimension used for the symmetry-breaking ordering (largest demand)."""
        dimensions = self.problem.capacity_dimensions()
        if not dimensions:
            return None
        return max(dimensions, key=lambda d: sum(d.weights.values()) / max(d.capacity, 1e-9))

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _to_mapping(self, values: np.ndarray) -> dict[str, float]:
        names = self._model.names
        num_fpgas = self._model.num_fpgas
        mapping: dict[str, float] = {}
        for index, name in enumerate(names):
            for fpga in range(num_fpgas):
                mapping[variable_name(name, fpga)] = float(values[index * num_fpgas + fpga])
        return mapping


def _capacity_matrix(problem: AllocationProblem) -> np.ndarray:
    """Per-FPGA capacities of every active dimension, shape (D, F)."""
    dimensions = problem.capacity_dimensions()
    num_f = problem.num_fpgas
    return np.array([dim.fpga_capacities(num_f) for dim in dimensions]).reshape(
        len(dimensions), num_f
    )


class SweepRelaxationBatch:
    """One relaxation model shared by every point of a sweep.

    A resource-limit or T sweep solves the same pipeline on the same platform
    shape over and over; only the capacity right-hand sides differ between
    points.  Building an :class:`AllocationRelaxation` per point re-assembles
    the constraint matrices and re-passes the model to HiGHS every time.
    This batch builds the model (and its persistent HiGHS LPs) **once** and,
    per point, hot-swaps the capacity RHS segments of the goal and
    feasibility LPs -- the same patched-in-place discipline the relaxation
    already uses for coverage rows and secants, extended across sweep points.

    Every LP solved through the batch is additionally counted as
    ``lp_batched_solves``, which callers thread into the per-point outcome
    counters (and from there into ``/stats`` and the reporting tables).

    Points whose skeleton differs (kernel set, WCETs, demand weights,
    symmetry structure, objective weights) are rejected by
    :meth:`compatible`; callers fall back to the per-point path for those.
    """

    def __init__(self, problem: AllocationProblem, symmetry_breaking: bool = True):
        self.base_problem = problem
        self.relaxation = AllocationRelaxation(
            problem=problem, weights=problem.weights, symmetry_breaking=symmetry_breaking
        )
        self.relaxation._model  # build the shared skeleton eagerly

    def compatible(self, problem: AllocationProblem) -> bool:
        """Whether a sweep point shares this batch's model skeleton."""
        model = self.relaxation._model
        if tuple(problem.kernel_names) != tuple(model.names):
            return False
        if problem.num_fpgas != model.num_fpgas:
            return False
        if problem.weights != self.base_problem.weights:
            return False
        wcet = np.array([problem.wcet[name] for name in model.names])
        if not np.array_equal(wcet, model.wcet):
            return False
        dimensions = problem.capacity_dimensions()
        base_dimensions = self.base_problem.capacity_dimensions()
        if len(dimensions) != len(base_dimensions):
            return False
        for dimension, base in zip(dimensions, base_dimensions):
            if dimension.name != base.name or dimension.weights != base.weights:
                return False
        capacities = _capacity_matrix(problem)
        pairs = tuple(
            f
            for f in range(model.num_fpgas - 1)
            if np.array_equal(capacities[:, f], capacities[:, f + 1])
        )
        if self.relaxation.symmetry_breaking and model.num_fpgas > 1:
            if pairs != model.sym_pairs:
                return False
            # The symmetry rows are built from the most contended dimension,
            # which depends on the capacities and may flip along a sweep.
            point_view = AllocationRelaxation(
                problem=problem,
                weights=problem.weights,
                symmetry_breaking=self.relaxation.symmetry_breaking,
            )
            ours = self.relaxation._symmetry_dimension()
            theirs = point_view._symmetry_dimension()
            if (ours is None) != (theirs is None):
                return False
            if ours is not None and (
                ours.name != theirs.name or ours.weights != theirs.weights
            ):
                return False
        return True

    def solve_point(
        self, problem: AllocationProblem, bounds: VariableBounds
    ) -> tuple[RelaxationResult, int]:
        """Solve one point's root relaxation on the shared model.

        Returns the relaxation result and the number of LPs it took (also
        accumulated into the shared ``lp_batched_solves`` counter).  The
        caller is responsible for having checked :meth:`compatible`.
        """
        with span("sweep_root_lp"):
            model = self.relaxation._model
            capacities = _capacity_matrix(problem).reshape(-1)
            model.goal_b[model.num_k : model.num_k + model.num_cap] = capacities
            model.feas_b[2 * model.num_k : 2 * model.num_k + model.num_cap] = capacities
            # The minimum-feasible-II memo is keyed on bound boxes only; two
            # points with identical boxes but different capacities must not
            # share entries.
            self.relaxation._ii_cache.clear()
            counters = self.relaxation._counters
            before = counters["lp_solves"]
            result = self.relaxation.solve(bounds)
            used = counters["lp_solves"] - before
            counters["lp_batched_solves"] += used
            return result, used
